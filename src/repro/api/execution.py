"""Cell execution: one spec cell in, one run record out.

Everything here is module-level and picklable so the process-pool backend
can ship cells to workers.  Each process keeps one
:class:`SecureProcessorSim` per distinct simulation configuration, so
cells sharing a (benchmark, seed, budget) reuse the in-memory functional
pass exactly like the legacy shared-simulator pattern; the optional
persistent trace cache extends that sharing across processes and
sessions.

Determinism: a cell's result is a pure function of its fields.  Workload
generation draws from ``make_rng(seed, name)`` streams, the timing replay
is event-driven, and no global RNG state is consulted, so the serial and
pool backends produce identical records for identical cells.

Kernels: engine cells run on the vectorized fast paths (the default
``SimConfig(kernel_mode="fast")``).  Because the fast kernels are
byte-identical to the scalar reference (see DESIGN.md "Performance"),
the kernel choice is *not* part of a cell's content hash — cached
records and persisted traces stay valid across kernels.  Sweep cells
default to aggregates-only (``record_requests=False`` on the spec):
per-request arrays are recorded only when a cell asks for them or needs
windowed series.
"""

from __future__ import annotations

from repro.api.cache import TraceCache
from repro.api.records import RunRecord
from repro.api.shm import attach_miss_trace
from repro.api.spec import Cell
from repro.core.scheme import scheme_from_spec
from repro.cpu.trace import MissTrace
from repro.faults.plan import fault_point
from repro.sim.simulator import SecureProcessorSim, SimConfig
from repro.sim.windows import (
    epoch_transition_instructions,
    instructions_per_access_windows,
    ipc_windows,
)

#: Per-process simulator pool: sim-config key -> simulator.
_SIMS: dict[tuple, SecureProcessorSim] = {}

#: Per-process persistent trace store (set by the pool initializer).
_WORKER_TRACE_CACHE: TraceCache | None = None

#: Shared-memory trace descriptors published by the pool's parent,
#: keyed by ``str(functional_pass_key(cell))``.
_WORKER_SHM_TRACES: dict[str, dict] = {}


class _DictTraceStore:
    """Process-local TraceStore: shares functional passes across sims.

    Store keys fold in ``SimConfig.substrate_digest`` — which excludes
    timing-only knobs like ``write_buffer_entries`` — so two sims that
    differ only in timing parameters share one functional pass here even
    without a persistent cache.
    """

    def __init__(self) -> None:
        self.entries: dict[str, object] = {}

    def get(self, key: str):
        return self.entries.get(key)

    def put(self, key: str, trace) -> None:
        self.entries[key] = trace

    def has(self, key: str) -> bool:
        return key in self.entries


_PROCESS_TRACE_STORE = _DictTraceStore()


def _sim_key(cell: Cell) -> tuple:
    """The sim-config identity a cell runs under."""
    return (cell.n_instructions, cell.seed, cell.warmup_fraction,
            cell.write_buffer_entries)


def sim_for_cell(cell: Cell, trace_store: TraceCache | None = None) -> SecureProcessorSim:
    """The process-local simulator for a cell's configuration (cached).

    The caller's ``trace_store`` always wins: engine-owned sims are
    re-pointed at the current engine's cache on every call, so two
    engines with different cache directories in one process never leak
    entries into each other's cache.  Without a persistent store, a
    process-local store still shares functional passes across sims that
    differ only in timing knobs.
    """
    key = _sim_key(cell)
    sim = _SIMS.get(key)
    if sim is None:
        sim = SecureProcessorSim(
            SimConfig(
                n_instructions=cell.n_instructions,
                seed=cell.seed,
                write_buffer_entries=cell.write_buffer_entries,
                warmup_fraction=cell.warmup_fraction,
            ),
        )
        _SIMS[key] = sim
    sim.trace_store = trace_store if trace_store is not None else _PROCESS_TRACE_STORE
    return sim


def execute_cell(
    cell: Cell,
    sim: SecureProcessorSim | None = None,
    trace_store: TraceCache | None = None,
) -> RunRecord:
    """Run one cell and flatten the outcome into a :class:`RunRecord`.

    When the cell asks for windows, the run records per-request arrays,
    reduces them to fixed-size window series, and drops the arrays — so
    records stay small and JSON-native regardless of run length.
    """
    if sim is None:
        sim = sim_for_cell(cell, trace_store)
    scheme = scheme_from_spec(cell.scheme_spec)
    want_windows = cell.n_windows is not None
    result = sim.run(
        cell.benchmark,
        scheme,
        input_name=cell.input_name,
        record_requests=cell.record_requests or want_windows,
    )
    return _record_from_result(cell, sim, scheme, result)


def execute_cells_batch(
    cells,
    sim: SecureProcessorSim | None = None,
    trace_store: TraceCache | None = None,
) -> list[RunRecord]:
    """Run a group of cells, batching their timing replays per trace.

    Cells sharing a simulator configuration and benchmark dispatch one
    :meth:`~repro.sim.simulator.SecureProcessorSim.run_batch` call —
    the config-batched slotted kernel replays the shared miss trace
    under every scheme in lockstep — instead of one replay per cell.
    Cells that need per-request arrays (windows, ``record_requests``)
    still replay individually.  Records are bit-identical to
    :func:`execute_cell` per cell and returned in input order, so both
    backends can route their groups through here without changing any
    result byte.

    ``sim`` pins every cell to one injected simulator (the serial
    backend's legacy-shim bridge); otherwise each subgroup resolves its
    own process-local simulator against ``trace_store``.
    """
    cells = list(cells)
    records: list[RunRecord | None] = [None] * len(cells)
    groups: dict[tuple, list[int]] = {}
    for index, cell in enumerate(cells):
        key = _sim_key(cell) + (cell.benchmark, cell.input_name)
        groups.setdefault(key, []).append(index)
    for indices in groups.values():
        plain = [
            i for i in indices
            if cells[i].n_windows is None and not cells[i].record_requests
        ]
        batched: set[int] = set()
        if len(plain) >= 2:
            first = cells[plain[0]]
            group_sim = sim if sim is not None else sim_for_cell(first, trace_store)
            schemes = [scheme_from_spec(cells[i].scheme_spec) for i in plain]
            results = group_sim.run_batch(
                first.benchmark,
                schemes,
                input_name=first.input_name,
                record_requests=False,
            )
            for i, scheme, result in zip(plain, schemes, results):
                records[i] = _record_from_result(cells[i], group_sim, scheme, result)
            batched = set(plain)
        for i in indices:
            if i not in batched:
                records[i] = execute_cell(cells[i], sim=sim, trace_store=trace_store)
    return records


def _record_from_result(cell: Cell, sim: SecureProcessorSim, scheme, result) -> RunRecord:
    """Flatten one timing result into the cell's :class:`RunRecord`."""
    want_windows = cell.n_windows is not None
    leakage = scheme.leakage()

    ipc_series: tuple[float, ...] = ()
    access_series: tuple[float, ...] = ()
    transitions: tuple[int, ...] = ()
    if want_windows:
        ipc_series = tuple(
            float(v) for v in ipc_windows(result, cell.n_windows).values
        )
        miss_trace = sim.miss_trace(cell.benchmark, cell.input_name)
        access_series = tuple(
            float(v)
            for v in instructions_per_access_windows(
                miss_trace.instruction_index,
                miss_trace.n_instructions,
                cell.n_windows,
            ).values
        )
        transitions = tuple(int(v) for v in epoch_transition_instructions(result))

    epochs_expended = len(result.epochs)
    return RunRecord(
        benchmark=cell.benchmark,
        input_name=cell.input_name,
        label=result.benchmark,
        scheme_spec=cell.scheme_spec,
        scheme_name=scheme.name,
        seed=cell.seed,
        n_instructions=result.n_instructions,
        cycles=float(result.cycles),
        ipc=float(result.ipc),
        power_watts=float(result.power_watts),
        memory_power_watts=float(result.memory_power_watts),
        real_accesses=int(result.controller.real_accesses),
        dummy_accesses=int(result.controller.dummy_accesses),
        dummy_fraction=float(result.dummy_fraction),
        oram_timing_leakage_bits=float(leakage.oram_timing_bits),
        termination_leakage_bits=float(leakage.termination_bits),
        epochs_expended=epochs_expended,
        expended_leakage_bits=float(scheme.expended_leakage_bits(epochs_expended)),
        epoch_rates=tuple(int(record.rate) for record in result.epochs),
        epoch_transitions=transitions,
        ipc_windows=ipc_series,
        access_windows=access_series,
    )


def reset_local_sims() -> None:
    """Drop the per-process simulator pool (test isolation, memory)."""
    _SIMS.clear()
    _PROCESS_TRACE_STORE.entries.clear()


def _init_worker(
    cache_root: str | None, shm_traces: dict[str, dict] | None = None
) -> None:
    """Pool initializer: attach the persistent trace cache and the
    parent's shared-memory trace descriptors in each worker."""
    global _WORKER_TRACE_CACHE, _WORKER_SHM_TRACES
    _WORKER_TRACE_CACHE = TraceCache(cache_root) if cache_root else None
    _WORKER_SHM_TRACES = dict(shm_traces or {})


def functional_pass_key(cell: Cell) -> tuple:
    """Identity of the functional cache pass a cell depends on.

    Cells sharing this key replay the same miss trace; the pool backend
    shards by it so each expensive pass is computed by exactly one
    worker instead of once per worker.
    """
    return (cell.benchmark, cell.input_name, cell.n_instructions,
            cell.seed, cell.warmup_fraction)


def trace_store_key(cell: Cell) -> str:
    """Persistent-store key of the functional pass a cell depends on.

    Lets services check ``cache.traces.has(trace_store_key(cell))``
    without loading the (large) trace — the per-key accounting behind
    the sweep daemon's zero-redundant-pass metric, which a global
    entry-count delta cannot provide once groups run concurrently.
    """
    sim = sim_for_cell(cell)
    return sim._store_key(
        "workload", cell.benchmark, cell.input_name, cell.n_instructions, cell.seed
    )


def lookup_cached_trace(
    cell: Cell, cache: "ExperimentCache | None" = None
) -> MissTrace | None:
    """A cell's miss trace if this process already holds it, else None.

    Consults warm in-process simulators first, then the persistent
    trace cache — never computing a functional pass.  The pool backend
    uses this to decide which groups' traces it can publish to shared
    memory before dispatch.
    """
    memory_key = (cell.benchmark, cell.input_name, cell.n_instructions, cell.seed)
    sim = _SIMS.get(_sim_key(cell))
    if sim is not None:
        trace = sim._miss_traces.get(memory_key)
        if trace is not None:
            return trace
    if cache is not None:
        sim = sim_for_cell(cell, cache.traces)
        return cache.traces.get(sim._store_key("workload", *memory_key))
    return None


def _seed_shared_traces(cells: list[Cell]) -> None:
    """Pre-load worker sims with traces the parent published via shm."""
    if not _WORKER_SHM_TRACES:
        return
    seen: set[str] = set()
    for cell in cells:
        shm_key = str(functional_pass_key(cell))
        if shm_key in seen or shm_key not in _WORKER_SHM_TRACES:
            continue
        seen.add(shm_key)
        sim = sim_for_cell(cell, _WORKER_TRACE_CACHE)
        memory_key = (cell.benchmark, cell.input_name, cell.n_instructions, cell.seed)
        if memory_key not in sim._miss_traces:
            trace = attach_miss_trace(_WORKER_SHM_TRACES[shm_key])
            if trace is not None:
                sim._miss_traces[memory_key] = trace


def _execute_batch_in_worker(cells: list[Cell]) -> list[RunRecord]:
    """Pool entry point: one batch of cells sharing a functional pass.

    The group replays through the config-batched kernel — one
    functional pass and one batched timing replay per (benchmark,
    seed), not one replay task per scheme — and skips the pass
    entirely when the parent shipped its trace through shared memory.

    Each cell arms the ``worker-cell`` fault site before the batch
    executes, so a chaos plan can kill this worker deterministically
    "at cell K" (a no-op dict lookup without an active plan).
    """
    for _ in cells:
        fault_point("worker-cell")
    _seed_shared_traces(cells)
    return execute_cells_batch(cells, trace_store=_WORKER_TRACE_CACHE)
