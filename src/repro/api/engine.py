"""The experiment engine: spec in, ResultSet out.

``Engine.run`` expands an :class:`~repro.api.spec.ExperimentSpec` into
cells, satisfies as many as possible from the persistent result cache,
hands the rest to the configured backend, persists fresh results, and
returns a canonically ordered :class:`~repro.api.records.ResultSet`.

The contract the rest of the repository builds on: for a given spec, the
returned records are identical regardless of backend, cache temperature,
or cell execution order.
"""

from __future__ import annotations

from pathlib import Path

from repro.api.backends import ExecutionBackend, SerialBackend
from repro.api.cache import ExperimentCache
from repro.api.records import ResultSet, RunRecord
from repro.api.spec import ExperimentSpec


class Engine:
    """Executes experiment specs on a pluggable backend with caching.

    Args:
        backend: Execution backend (default: :class:`SerialBackend`).
        cache: ``None`` (no persistence), an :class:`ExperimentCache`, or
            a directory path to root one at.
    """

    def __init__(
        self,
        backend: ExecutionBackend | None = None,
        cache: ExperimentCache | str | Path | None = None,
    ) -> None:
        self.backend = backend or SerialBackend()
        if isinstance(cache, (str, Path)):
            cache = ExperimentCache(cache)
        self.cache = cache

    def run(self, spec: ExperimentSpec, use_cache: bool = True) -> ResultSet:
        """Run every cell of ``spec`` and collect a ResultSet.

        ``use_cache=False`` bypasses result-cache *reads* (everything
        recomputes) but still persists fresh results and reuses cached
        functional traces — the knob for "re-measure, same substrate".
        """
        cells = list(spec.cells())
        cached: list[RunRecord] = []
        pending = []
        if self.cache is not None and use_cache:
            for cell in cells:
                record = self.cache.results.get(cell.content_hash())
                if record is None:
                    pending.append(cell)
                else:
                    cached.append(record)
        else:
            pending = cells

        fresh = self.backend.run_cells(pending, self.cache) if pending else []
        # A backend may return None for cells it quarantined as poison
        # after repeated worker crashes; the sweep completes without
        # them rather than aborting (meta reports the loss).
        survived = [record for record in fresh if record is not None]
        poisoned = len(fresh) - len(survived)
        if self.cache is not None:
            for cell, record in zip(pending, fresh):
                if record is not None:
                    self.cache.results.put(cell.content_hash(), record)

        meta = {
            "backend": getattr(self.backend, "name", type(self.backend).__name__),
            "cells": len(cells),
            "cache_hits": len(cached),
            "cells_run": len(pending) - poisoned,
        }
        if poisoned:
            meta["cells_poisoned"] = poisoned
        return ResultSet(
            records=tuple(cached) + tuple(survived),
            spec=spec,
            meta=meta,
        )


def run_spec(
    spec: ExperimentSpec,
    parallel: bool = False,
    cache_dir: str | Path | None = None,
    max_workers: int | None = None,
) -> ResultSet:
    """One-call convenience wrapper around :class:`Engine`.

    ``parallel=True`` selects the process pool;``cache_dir`` roots a
    persistent cache there.
    """
    from repro.api.backends import ProcessPoolBackend

    backend = ProcessPoolBackend(max_workers=max_workers) if parallel else SerialBackend()
    cache = ExperimentCache(cache_dir) if cache_dir is not None else None
    return Engine(backend=backend, cache=cache).run(spec)
