"""Uniform result containers for the declarative experiment API.

A :class:`RunRecord` is the flattened outcome of one spec cell — every
scalar the evaluation reports (cycles, IPC, power, dummy fraction,
leakage bound) plus optional windowed series when the spec asked for
them.  A :class:`ResultSet` is an ordered collection of records with the
query, tabulation, and (de)serialization helpers that used to be
re-implemented by every per-figure result class.

Records hold only JSON-native types (no numpy arrays), so a ResultSet
round-trips losslessly through :meth:`ResultSet.save` /
:meth:`ResultSet.load` and two runs of the same spec — on any backend —
serialize to identical bytes once rows are sorted.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import asdict, dataclass, field, fields
from pathlib import Path
from statistics import mean
from typing import Iterator

from repro.api.spec import ExperimentSpec

#: Sentinel distinguishing "no filter" from "filter on None".
_ANY = object()

_SAVE_FORMAT_VERSION = 1


@dataclass(frozen=True)
class RunRecord:
    """Flattened outcome of one (benchmark, scheme, seed) cell.

    ``label`` is the simulator's ``"name/input"`` tag; ``input_name`` is
    the spec's requested input (``None`` means the workload default).
    Two leakage views are carried (docs/tradeoffs.md defines both):
    ``oram_timing_leakage_bits`` / ``termination_leakage_bits`` are the
    scheme's provable *bound* (program-independent; ``inf`` for the
    unprotected baselines), while ``expended_leakage_bits`` is the part
    of that budget this bounded run actually spent — ``lg |R|`` bits per
    epoch entered (``epochs_expended`` of them).
    """

    benchmark: str
    input_name: str | None
    label: str
    scheme_spec: str
    scheme_name: str
    seed: int
    n_instructions: int
    cycles: float
    ipc: float
    power_watts: float
    memory_power_watts: float
    real_accesses: int
    dummy_accesses: int
    dummy_fraction: float
    oram_timing_leakage_bits: float
    termination_leakage_bits: float
    epochs_expended: int = 0
    expended_leakage_bits: float = 0.0
    epoch_rates: tuple[int, ...] = ()
    epoch_transitions: tuple[int, ...] = ()
    ipc_windows: tuple[float, ...] = ()
    access_windows: tuple[float, ...] = ()

    @property
    def total_accesses(self) -> int:
        """Real + dummy ORAM/DRAM accesses."""
        return self.real_accesses + self.dummy_accesses

    @property
    def total_leakage_bits(self) -> float:
        """Bound across both channels: ORAM timing + termination."""
        return self.oram_timing_leakage_bits + self.termination_leakage_bits

    @property
    def final_rate(self) -> int | None:
        """Rate of the last epoch (None for non-epoch schemes)."""
        return self.epoch_rates[-1] if self.epoch_rates else None

    def sort_key(self) -> tuple:
        """Canonical ordering: benchmark, input, scheme, seed."""
        return (self.benchmark, self.input_name or "", self.scheme_spec, self.seed)

    def to_dict(self) -> dict:
        """JSON-ready representation (tuples become lists).

        Unbounded leakage (``inf``) is encoded as the *string* ``"inf"``
        so the output stays strict RFC-8259 JSON (bare ``Infinity``
        tokens are a Python-only extension that jq, browsers, and pandas
        all reject).
        """
        payload = asdict(self)
        for key in (
            "oram_timing_leakage_bits",
            "termination_leakage_bits",
            "expended_leakage_bits",
        ):
            if not math.isfinite(payload[key]):
                payload[key] = repr(payload[key])
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "RunRecord":
        """Rebuild a record saved by :meth:`to_dict`."""
        known = {f.name for f in fields(cls)}
        data = {k: v for k, v in payload.items() if k in known}
        for key in ("oram_timing_leakage_bits", "termination_leakage_bits"):
            data[key] = float(data[key])
        data["expended_leakage_bits"] = float(data.get("expended_leakage_bits", 0.0))
        data["epochs_expended"] = int(data.get("epochs_expended", 0))
        for key in ("epoch_rates", "epoch_transitions"):
            data[key] = tuple(int(v) for v in data.get(key, ()))
        for key in ("ipc_windows", "access_windows"):
            data[key] = tuple(float(v) for v in data.get(key, ()))
        return cls(**data)


@dataclass
class ResultSet:
    """An ordered, queryable collection of :class:`RunRecord` rows.

    ``meta`` carries session diagnostics (backend name, cache hit counts)
    and is deliberately excluded from :meth:`save` so that repeated runs
    of the same spec serialize byte-identically.
    """

    records: tuple[RunRecord, ...]
    spec: ExperimentSpec | None = None
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.records = tuple(sorted(self.records, key=RunRecord.sort_key))

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[RunRecord]:
        return iter(self.records)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def select(
        self,
        benchmark: str | None = None,
        scheme: str | None = None,
        seed: int | None = None,
        input_name=_ANY,
    ) -> list[RunRecord]:
        """Filter records; ``scheme`` matches the spec string or the name.

        ``benchmark`` accepts either a bare name or ``"name/input"``.
        """
        if benchmark is not None and "/" in benchmark and input_name is _ANY:
            benchmark, input_name = benchmark.split("/", 1)
        out = []
        for record in self.records:
            if benchmark is not None and record.benchmark != benchmark:
                continue
            if scheme is not None and scheme not in (
                record.scheme_spec, record.scheme_name
            ):
                continue
            if seed is not None and record.seed != seed:
                continue
            if input_name is not _ANY and record.input_name != input_name:
                continue
            out.append(record)
        return out

    def get(
        self,
        benchmark: str,
        scheme: str,
        seed: int | None = None,
        input_name=_ANY,
    ) -> RunRecord:
        """The unique record matching the filters (KeyError otherwise)."""
        matches = self.select(benchmark, scheme, seed, input_name)
        if len(matches) != 1:
            raise KeyError(
                f"expected exactly one record for ({benchmark!r}, {scheme!r}, "
                f"seed={seed}), found {len(matches)}"
            )
        return matches[0]

    def schemes(self) -> list[str]:
        """Distinct scheme names, in first-seen order."""
        seen: dict[str, None] = {}
        for record in self.records:
            seen.setdefault(record.scheme_name)
        return list(seen)

    def overhead(
        self,
        benchmark: str,
        scheme: str,
        seed: int | None = None,
        baseline: str = "base_dram",
        input_name=_ANY,
    ) -> float:
        """Runtime multiplier of ``scheme`` vs ``baseline`` on one benchmark."""
        result = self.get(benchmark, scheme, seed, input_name)
        base = self.get(benchmark, baseline, seed if seed is not None else result.seed,
                        input_name if input_name is not _ANY else result.input_name)
        return result.cycles / base.cycles

    def mean_overhead(self, scheme: str, baseline: str = "base_dram") -> float:
        """Suite-average runtime multiplier vs ``baseline`` (Fig 6 "Avg")."""
        ratios = [
            record.cycles
            / self.get(record.benchmark, baseline, record.seed, record.input_name).cycles
            for record in self.select(scheme=scheme)
        ]
        if not ratios:
            raise KeyError(f"no records for scheme {scheme!r}")
        return mean(ratios)

    def mean_power(self, scheme: str) -> float:
        """Suite-average absolute power (W) for one scheme."""
        rows = self.select(scheme=scheme)
        if not rows:
            raise KeyError(f"no records for scheme {scheme!r}")
        return mean(record.power_watts for record in rows)

    # ------------------------------------------------------------------
    # Tabulation and persistence
    # ------------------------------------------------------------------

    def to_rows(self) -> list[dict]:
        """Scalar columns of every record, one dict per row.

        The flat-table view (windowed series excluded) for CSV export or
        DataFrame construction.
        """
        rows = []
        for record in self.records:
            row = record.to_dict()
            for series in ("epoch_rates", "epoch_transitions",
                           "ipc_windows", "access_windows"):
                row.pop(series)
            row["total_accesses"] = record.total_accesses
            row["final_rate"] = record.final_rate
            total = record.total_leakage_bits
            row["total_leakage_bits"] = total if math.isfinite(total) else repr(total)
            rows.append(row)
        return rows

    def render(self, title: str | None = None) -> str:
        """Aligned text table of the scalar columns.

        When a ``base_dram`` run exists for a row's (benchmark, seed), a
        normalized ``perf x`` column is included, matching the paper's
        reporting convention.
        """
        # Imported lazily: repro.analysis pulls in repro.api (the figure
        # shims), so a module-level import here would be circular.
        from repro.analysis.tables import Table, format_value

        have_baseline = any(r.scheme_name == "base_dram" for r in self.records)
        rows = []
        for record in self.records:
            perf = "-"
            if have_baseline and record.scheme_name != "base_dram":
                try:
                    perf = format_value(
                        self.overhead(record.benchmark, record.scheme_spec,
                                      record.seed, input_name=record.input_name)
                    )
                except KeyError:
                    pass
            leak = record.oram_timing_leakage_bits
            rows.append([
                record.label,
                record.scheme_name,
                str(record.seed),
                format_value(record.ipc, 4),
                perf,
                format_value(record.power_watts, 3),
                f"{record.dummy_fraction:.0%}",
                "inf" if leak == float("inf") else format_value(leak, 0),
            ])
        if title is None:
            title = (self.spec.name if self.spec and self.spec.name else "Experiment results")
        return Table(
            title,
            ["bench", "scheme", "seed", "IPC", "perf x", "power W", "dummy", "leak bits"],
            rows,
        ).render()

    def digest(self) -> str:
        """Content digest over the canonically ordered records.

        Volatile ``meta`` is excluded, records are already sorted, and
        serialization is strict JSON — so two runs of the same spec
        digest identically regardless of backend, cache temperature, or
        recovery retries.  The chaos suite pins fault-injected sweeps
        against fault-free digests with exactly this.
        """
        payload = json.dumps(
            [record.to_dict() for record in self.records],
            sort_keys=True, allow_nan=False,
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def save(self, path: str | Path) -> None:
        """Write spec + records as JSON (volatile ``meta`` excluded)."""
        payload = {
            "format_version": _SAVE_FORMAT_VERSION,
            "spec": self.spec.to_dict() if self.spec else None,
            "records": [record.to_dict() for record in self.records],
        }
        Path(path).write_text(
            json.dumps(payload, indent=1, sort_keys=True, allow_nan=False)
        )

    @classmethod
    def load(cls, path: str | Path) -> "ResultSet":
        """Rebuild a ResultSet saved by :meth:`save`."""
        payload = json.loads(Path(path).read_text())
        spec = payload.get("spec")
        return cls(
            records=tuple(RunRecord.from_dict(r) for r in payload["records"]),
            spec=ExperimentSpec.from_dict(spec) if spec else None,
        )
