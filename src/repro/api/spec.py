"""Declarative experiment specifications.

An :class:`ExperimentSpec` names *what* to measure — the cross product of
benchmarks, schemes, and seeds, plus the shared simulation parameters —
without saying *how* to run it.  The :class:`~repro.api.engine.Engine`
expands the spec into independent :class:`Cell` work units, executes them
on a pluggable backend (in-process or a process pool), and deduplicates
work through a persistent cache keyed by each cell's content hash.

Benchmarks are named ``"mcf"`` or ``"astar/rivers"`` (name/input);
schemes use the :func:`repro.core.scheme.scheme_from_spec` grammar
(``"base_dram"``, ``"static:300"``, ``"dynamic:4x4"``, ...).  Both stay
strings so specs are hashable, JSON-serializable, and CLI-friendly.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, fields
from typing import Iterator

from repro.core.scheme import expand_scheme_grid, is_grid_spec, scheme_from_spec
from repro.util.validation import check_in_range, check_positive
from repro.workloads.registry import get_workload

#: Bump to invalidate persisted *result* entries after a semantics change.
#: v2: RunRecord gained epochs_expended / expended_leakage_bits.
CACHE_SCHEMA_VERSION = 2

#: Bump to invalidate persisted *trace* entries.  Kept separate from the
#: result schema: traces are the expensive artifact, and a result-shape
#: change (like v2's new RunRecord fields) leaves them byte-identical.
TRACE_SCHEMA_VERSION = 1


def split_benchmark(entry: str) -> tuple[str, str | None]:
    """Split a ``"name"`` or ``"name/input"`` benchmark entry."""
    if not isinstance(entry, str) or not entry:
        raise ValueError(f"benchmark entry must be a non-empty string, got {entry!r}")
    name, _, input_name = entry.partition("/")
    return name, (input_name or None)


@dataclass(frozen=True)
class Cell:
    """One independent (benchmark, scheme, seed) unit of work.

    Carries every parameter that influences its result, so its
    :meth:`content_hash` is a complete cache key: two cells with equal
    hashes are guaranteed (up to :data:`CACHE_SCHEMA_VERSION`) to produce
    identical :class:`~repro.api.records.RunRecord` rows.
    """

    benchmark: str
    input_name: str | None
    scheme_spec: str
    seed: int
    n_instructions: int
    warmup_fraction: float
    write_buffer_entries: int
    n_windows: int | None
    record_requests: bool

    @property
    def label(self) -> str:
        """Human-readable cell id, e.g. ``astar/rivers+static:300@0``."""
        bench = self.benchmark if self.input_name is None else (
            f"{self.benchmark}/{self.input_name}"
        )
        return f"{bench}+{self.scheme_spec}@{self.seed}"

    def content_hash(self) -> str:
        """Stable hex digest of every result-determining parameter."""
        payload = json.dumps(
            {"version": CACHE_SCHEMA_VERSION, **asdict(self)},
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()


@dataclass(frozen=True)
class ExperimentSpec:
    """A declarative sweep: benchmarks x schemes x seeds at fixed sim params.

    Attributes:
        benchmarks: Entries ``"name"`` or ``"name/input"``; validated
            against the workload registry at construction.
        schemes: Scheme spec strings (``scheme_from_spec`` grammar).
            ``grid:`` entries expand in place to their concrete schemes
            (``expand_scheme_grid``); entries are canonicalized through
            ``.spec`` and duplicates (including alias spellings) are
            dropped.
        seeds: Workload-generation seeds; one full sweep runs per seed.
        n_instructions: Post-warmup instruction budget per run.
        warmup_fraction: Extra cache-warming prefix (excluded from timing).
        write_buffer_entries: Non-blocking write buffer depth.
        n_windows: When set, each record also carries windowed IPC /
            access-rate series and epoch-transition marks at this
            resolution (Figures 2 and 7).
        record_requests: Keep per-request arrays during timing replay even
            when ``n_windows`` is unset.
        name: Optional label for reports; never part of cache keys.
    """

    benchmarks: tuple[str, ...]
    schemes: tuple[str, ...]
    seeds: tuple[int, ...] = (0,)
    n_instructions: int = 1_000_000
    warmup_fraction: float = 0.30
    write_buffer_entries: int = 8
    n_windows: int | None = None
    record_requests: bool = False
    name: str = ""

    def __post_init__(self) -> None:
        # Accept any iterable for the axes; normalize to tuples so the
        # spec stays hashable.  Grid specs (``"grid:dynamic:..."``) are
        # macro entries: each expands in place to its concrete scheme
        # strings, so cells — and therefore cache keys — only ever see
        # single-scheme specs.  Scheme entries are canonicalized through
        # ``scheme_from_spec(...).spec`` before dedup, so alias
        # spellings ("dynamic:4x4:avg") cannot produce duplicate cells
        # or cache entries; parsing here also raises early for bad specs.
        object.__setattr__(self, "benchmarks", tuple(self.benchmarks))
        schemes: list[str] = []
        for entry in self.schemes:
            expanded = expand_scheme_grid(entry) if is_grid_spec(entry) else (entry,)
            for scheme in expanded:
                canonical = scheme_from_spec(scheme).spec
                if canonical not in schemes:
                    schemes.append(canonical)
        object.__setattr__(self, "schemes", tuple(schemes))
        object.__setattr__(self, "seeds", tuple(int(s) for s in self.seeds))
        if not self.benchmarks:
            raise ValueError("ExperimentSpec needs at least one benchmark")
        if not self.schemes:
            raise ValueError("ExperimentSpec needs at least one scheme")
        if not self.seeds:
            raise ValueError("ExperimentSpec needs at least one seed")
        if len(set(self.seeds)) != len(self.seeds):
            raise ValueError(f"seeds must be distinct, got {self.seeds}")
        check_positive(self.n_instructions, "n_instructions")
        check_in_range(self.warmup_fraction, 0.0, 1.0, "warmup_fraction")
        check_positive(self.write_buffer_entries, "write_buffer_entries")
        if self.n_windows is not None:
            check_positive(self.n_windows, "n_windows")
        for entry in self.benchmarks:
            bench, input_name = split_benchmark(entry)
            workload = get_workload(bench)  # raises for unknown names
            if input_name is not None and input_name not in workload.inputs:
                raise ValueError(
                    f"{bench} has inputs {workload.inputs}, not {input_name!r}"
                )

    @property
    def n_cells(self) -> int:
        """Number of independent work units the spec expands to."""
        return len(self.benchmarks) * len(self.schemes) * len(self.seeds)

    def cells(self) -> Iterator[Cell]:
        """Expand to independent cells, benchmark-major.

        Benchmark-major order keeps cells that share a functional cache
        pass adjacent, which maximizes in-process trace reuse on the
        serial backend and cache locality on the pool.
        """
        for entry in self.benchmarks:
            bench, input_name = split_benchmark(entry)
            for seed in self.seeds:
                for scheme in self.schemes:
                    yield Cell(
                        benchmark=bench,
                        input_name=input_name,
                        scheme_spec=scheme,
                        seed=seed,
                        n_instructions=self.n_instructions,
                        warmup_fraction=self.warmup_fraction,
                        write_buffer_entries=self.write_buffer_entries,
                        n_windows=self.n_windows,
                        record_requests=self.record_requests,
                    )

    def to_dict(self) -> dict:
        """JSON-ready representation (inverse of :meth:`from_dict`)."""
        payload = asdict(self)
        payload["benchmarks"] = list(self.benchmarks)
        payload["schemes"] = list(self.schemes)
        payload["seeds"] = list(self.seeds)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ExperimentSpec":
        """Rebuild a spec saved by :meth:`to_dict`."""
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in known})

    def single(self, benchmark: str, scheme: str, seed: int | None = None) -> "ExperimentSpec":
        """A one-cell sub-spec with the same simulation parameters."""
        return ExperimentSpec(
            benchmarks=(benchmark,),
            schemes=(scheme,),
            seeds=(self.seeds[0] if seed is None else seed,),
            n_instructions=self.n_instructions,
            warmup_fraction=self.warmup_fraction,
            write_buffer_entries=self.write_buffer_entries,
            n_windows=self.n_windows,
            record_requests=self.record_requests,
            name=self.name,
        )
