"""Persistent on-disk caches for the experiment engine.

Two content-addressed stores under one root directory:

- ``traces/`` — pickled :class:`~repro.cpu.trace.MissTrace` objects, keyed
  by a digest of everything that determines the functional cache pass
  (workload, seed, instruction budget, hierarchy, core).  This generalizes
  ``SecureProcessorSim._miss_traces`` across processes and sessions: pool
  workers and repeated sweeps reuse each benchmark's expensive functional
  pass instead of recomputing it.
- ``results/`` — JSON :class:`~repro.api.records.RunRecord` rows keyed by
  the spec cell's content hash, so a warm repeated sweep runs nothing at
  all.

Writes are atomic (temp file + ``os.replace``), so concurrent pool
workers may race on the same key without corrupting entries; unreadable
entries are treated as misses and recomputed.
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile
from pathlib import Path

from repro.api.records import RunRecord
from repro.api.spec import TRACE_SCHEMA_VERSION
from repro.cpu.trace import MissTrace

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro"


def _atomic_write_bytes(path: Path, payload: bytes) -> None:
    """Write via a sibling temp file so readers never see partial entries."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=path.name + ".")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


class TraceCache:
    """Content-addressed store of pickled miss traces.

    Satisfies the :class:`repro.sim.simulator.TraceStore` protocol, so it
    plugs straight into ``SecureProcessorSim(config, trace_store=...)``.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def _path(self, key: str) -> Path:
        # The simulator computes keys without knowledge of the api-layer
        # schema, so the trace schema version is folded in here.  Traces
        # version independently of results (TRACE_SCHEMA_VERSION vs
        # CACHE_SCHEMA_VERSION): a result-shape change must not orphan
        # the expensive functional passes.
        return self.root / f"v{TRACE_SCHEMA_VERSION}-{key}.pkl"

    def get(self, key: str) -> MissTrace | None:
        """Load a trace, or None on miss/corruption."""
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                trace = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            return None
        return trace if isinstance(trace, MissTrace) else None

    def put(self, key: str, trace: MissTrace) -> None:
        """Persist a trace under its digest."""
        _atomic_write_bytes(self._path(key), pickle.dumps(trace, protocol=4))

    def has(self, key: str) -> bool:
        """Cheap existence check (no deserialization)."""
        return self._path(key).is_file()

    def entry_count(self) -> int:
        """Number of persisted traces (= functional passes ever computed).

        The frontier sweep reads this before/after a run to *prove* the
        one-functional-pass-per-(benchmark, seed) invariant: the delta is
        exactly how many passes the sweep paid for.
        """
        return len(list(self.root.glob("*.pkl"))) if self.root.is_dir() else 0


class ResultCache:
    """Content-addressed store of finished run records (JSON, one per cell)."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def _path(self, cell_hash: str) -> Path:
        return self.root / f"{cell_hash}.json"

    def get(self, cell_hash: str) -> RunRecord | None:
        """Load a record, or None on miss/corruption."""
        try:
            payload = json.loads(self._path(cell_hash).read_text())
            return RunRecord.from_dict(payload)
        except (OSError, ValueError, TypeError, KeyError):
            return None

    def put(self, cell_hash: str, record: RunRecord) -> None:
        """Persist a record under its cell hash (strict RFC-8259 JSON)."""
        payload = json.dumps(record.to_dict(), sort_keys=True, allow_nan=False)
        _atomic_write_bytes(self._path(cell_hash), payload.encode())


class ExperimentCache:
    """The engine's two-level persistent cache rooted at one directory."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.traces = TraceCache(self.root / "traces")
        self.results = ResultCache(self.root / "results")

    def describe(self) -> str:
        """One-line summary of location and entry counts."""
        n_traces = len(list(self.traces.root.glob("*.pkl"))) if self.traces.root.is_dir() else 0
        n_results = len(list(self.results.root.glob("*.json"))) if self.results.root.is_dir() else 0
        return f"cache at {self.root}: {n_traces} traces, {n_results} results"
