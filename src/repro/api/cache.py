"""Persistent on-disk caches for the experiment engine.

Two content-addressed stores under one root directory:

- ``traces/`` — pickled :class:`~repro.cpu.trace.MissTrace` objects, keyed
  by a digest of everything that determines the functional cache pass
  (workload, seed, instruction budget, hierarchy, core).  This generalizes
  ``SecureProcessorSim._miss_traces`` across processes and sessions: pool
  workers and repeated sweeps reuse each benchmark's expensive functional
  pass instead of recomputing it.
- ``results/`` — JSON :class:`~repro.api.records.RunRecord` rows keyed by
  the spec cell's content hash, so a warm repeated sweep runs nothing at
  all.

Writes are atomic **and durable** (temp file + ``fsync`` +
``os.replace``), so concurrent pool workers may race on the same key
without corrupting entries and a host crash cannot persist a torn
artifact.  Corrupt entries — truncated pickles, bad JSON, wrong shapes —
are never silently discarded: they move to a ``quarantine/`` sibling
directory (evidence for triage), count into
``repro.faults.counters.artifacts_quarantined``, and the key reads as a
miss so the artifact is recomputed.
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile
from pathlib import Path

from repro.api.records import RunRecord
from repro.api.spec import TRACE_SCHEMA_VERSION
from repro.cpu.trace import MissTrace
from repro.faults import counters
from repro.faults.plan import corrupt_bytes

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Subdirectory (per store) where corrupt artifacts are preserved.
QUARANTINE_DIR = "quarantine"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro"


def _atomic_write_bytes(path: Path, payload: bytes) -> None:
    """Write via a sibling temp file so readers never see partial entries.

    The temp file is fsync'd *before* ``os.replace`` — without it a host
    crash can replace the entry with zero-length or torn bytes that the
    digest check would then silently discard forever.  The directory
    entry is fsync'd best-effort afterwards (rename durability).
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=path.name + ".")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
        try:
            dir_fd = os.open(path.parent, os.O_RDONLY)
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
        except OSError:
            pass  # platform without directory fsync; file bytes are safe
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def quarantine_artifact(path: Path) -> Path | None:
    """Move a corrupt artifact into its store's ``quarantine/`` subdir.

    Keeps every generation (suffixing duplicates) so repeated corruption
    of one key never destroys evidence.  Returns the quarantine path, or
    None when the file vanished or could not be moved (a concurrent
    reader may have quarantined it first — that reader counted it).
    """
    if not path.is_file():
        return None
    target_dir = path.parent / QUARANTINE_DIR
    try:
        target_dir.mkdir(parents=True, exist_ok=True)
    except OSError:
        return None
    target = target_dir / path.name
    generation = 0
    while target.exists():
        generation += 1
        target = target_dir / f"{path.name}.{generation}"
    try:
        os.replace(path, target)
    except OSError:
        return None
    counters.bump("artifacts_quarantined")
    return target


class TraceCache:
    """Content-addressed store of pickled miss traces.

    Satisfies the :class:`repro.sim.simulator.TraceStore` protocol, so it
    plugs straight into ``SecureProcessorSim(config, trace_store=...)``.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def _path(self, key: str) -> Path:
        # The simulator computes keys without knowledge of the api-layer
        # schema, so the trace schema version is folded in here.  Traces
        # version independently of results (TRACE_SCHEMA_VERSION vs
        # CACHE_SCHEMA_VERSION): a result-shape change must not orphan
        # the expensive functional passes.
        return self.root / f"v{TRACE_SCHEMA_VERSION}-{key}.pkl"

    def get(self, key: str) -> MissTrace | None:
        """Load a trace; None on miss, quarantine-then-None on corruption."""
        path = self._path(key)
        try:
            payload = path.read_bytes()
        except OSError:
            return None  # plain miss — nothing on disk for this key
        try:
            trace = pickle.loads(payload)
        except Exception:
            # Truncated/zero-length pickle, torn write, unpicklable
            # garbage: preserve the evidence and recompute.
            quarantine_artifact(path)
            return None
        if not isinstance(trace, MissTrace):
            quarantine_artifact(path)
            return None
        return trace

    def put(self, key: str, trace: MissTrace) -> None:
        """Persist a trace under its digest."""
        payload = corrupt_bytes("cache-write-trace", pickle.dumps(trace, protocol=4))
        _atomic_write_bytes(self._path(key), payload)

    def has(self, key: str) -> bool:
        """Cheap existence check (no deserialization)."""
        return self._path(key).is_file()

    def entry_count(self) -> int:
        """Number of persisted traces (= functional passes ever computed).

        The frontier sweep reads this before/after a run to *prove* the
        one-functional-pass-per-(benchmark, seed) invariant: the delta is
        exactly how many passes the sweep paid for.
        """
        return len(list(self.root.glob("*.pkl"))) if self.root.is_dir() else 0


class ResultCache:
    """Content-addressed store of finished run records (JSON, one per cell)."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def _path(self, cell_hash: str) -> Path:
        return self.root / f"{cell_hash}.json"

    def get(self, cell_hash: str) -> RunRecord | None:
        """Load a record; None on miss, quarantine-then-None on corruption."""
        path = self._path(cell_hash)
        try:
            text = path.read_text()
        except OSError:
            return None  # plain miss
        try:
            return RunRecord.from_dict(json.loads(text))
        except (ValueError, TypeError, KeyError):
            # Bad JSON, wrong schema/shape, zero-length file: quarantine
            # and let the engine recompute the cell.
            quarantine_artifact(path)
            return None

    def put(self, cell_hash: str, record: RunRecord) -> None:
        """Persist a record under its cell hash (strict RFC-8259 JSON)."""
        payload = json.dumps(record.to_dict(), sort_keys=True, allow_nan=False)
        _atomic_write_bytes(
            self._path(cell_hash), corrupt_bytes("cache-write-result", payload.encode())
        )


class ExperimentCache:
    """The engine's two-level persistent cache rooted at one directory."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.traces = TraceCache(self.root / "traces")
        self.results = ResultCache(self.root / "results")

    def describe(self) -> str:
        """One-line summary of location and entry counts."""
        n_traces = len(list(self.traces.root.glob("*.pkl"))) if self.traces.root.is_dir() else 0
        n_results = len(list(self.results.root.glob("*.json"))) if self.results.root.is_dir() else 0
        return f"cache at {self.root}: {n_traces} traces, {n_results} results"
