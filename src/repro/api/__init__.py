"""Declarative experiment API: specs, engine, backends, persistent cache.

The unified run surface for the whole evaluation::

    from repro.api import Engine, ExperimentSpec, ProcessPoolBackend

    spec = ExperimentSpec(
        benchmarks=("mcf", "h264ref", "astar/rivers"),
        schemes=("base_dram", "base_oram", "dynamic:4x4", "static:300"),
        seeds=(0, 1),
        n_instructions=500_000,
    )
    results = Engine(ProcessPoolBackend(), cache="~/.cache/repro").run(spec)
    print(results.render())
    results.save("sweep.json")

Guarantees: identical specs produce identical ResultSets on every
backend; the persistent cache makes repeated sweeps free; every figure in
the paper is one spec (:mod:`repro.api.figures`) away.
"""

from repro.api.backends import (
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    default_start_method,
    warm_local_sims,
)
from repro.api.cache import (
    ExperimentCache,
    ResultCache,
    TraceCache,
    default_cache_dir,
)
from repro.api.engine import Engine, run_spec
from repro.api.execution import execute_cell
from repro.api.figures import (
    FIG5_RATES,
    FIG6_BENCHMARKS,
    FIG6_SCHEMES,
    figure2_spec,
    figure5_spec,
    figure6_spec,
    figure7_spec,
    figure8a_spec,
    figure8b_spec,
    frontier_spec,
)
from repro.api.records import ResultSet, RunRecord
from repro.api.spec import CACHE_SCHEMA_VERSION, Cell, ExperimentSpec, split_benchmark

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "Cell",
    "Engine",
    "ExecutionBackend",
    "ExperimentCache",
    "ExperimentSpec",
    "FIG5_RATES",
    "FIG6_BENCHMARKS",
    "FIG6_SCHEMES",
    "ProcessPoolBackend",
    "ResultCache",
    "ResultSet",
    "RunRecord",
    "SerialBackend",
    "default_start_method",
    "TraceCache",
    "default_cache_dir",
    "execute_cell",
    "figure2_spec",
    "figure5_spec",
    "figure6_spec",
    "figure7_spec",
    "figure8a_spec",
    "figure8b_spec",
    "frontier_spec",
    "run_spec",
    "split_benchmark",
    "warm_local_sims",
]
