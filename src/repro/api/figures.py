"""Declarative specs for every figure in the paper's evaluation.

Each builder returns the :class:`~repro.api.spec.ExperimentSpec` whose
cells regenerate one paper artifact; the matching
``figure*_from_resultset`` converters live in
:mod:`repro.analysis.experiments` next to the result classes they fill.
Keyword arguments (``n_instructions``, ``seed``, ``warmup_fraction``,
``write_buffer_entries``) pass through to the spec so callers can scale
runs up or down without touching the benchmark/scheme axes.
"""

from __future__ import annotations

from repro.api.spec import ExperimentSpec

#: Figure 6 benchmark order (Section 9.1.1's SPEC-int suite).
FIG6_BENCHMARKS: list[tuple[str, str | None]] = [
    ("mcf", None),
    ("omnetpp", None),
    ("libquantum", None),
    ("bzip2", None),
    ("hmmer", None),
    ("astar", "rivers"),
    ("gcc", None),
    ("gobmk", None),
    ("sjeng", None),
    ("h264ref", None),
    ("perlbench", "diffmail"),
]

#: Default instruction budget matching the legacy ``default_sim``.
DEFAULT_N_INSTRUCTIONS = 2_000_000

#: Figure 5's swept static rates.
FIG5_RATES: tuple[int, ...] = (
    64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072,
)

#: Figure 6's comparison schemes (Section 9.1.6), base_dram first.
FIG6_SCHEMES: tuple[str, ...] = (
    "base_dram",
    "base_oram",
    "dynamic:4x4",
    "static:300",
    "static:500",
    "static:1300",
)


def _suite() -> tuple[str, ...]:
    """FIG6 benchmarks as spec entries."""
    return tuple(
        bench if input_name is None else f"{bench}/{input_name}"
        for bench, input_name in FIG6_BENCHMARKS
    )


def figure2_spec(n_windows: int = 50, **sim_params) -> ExperimentSpec:
    """ORAM access rate over time for the multi-input pairs (Figure 2).

    Only the functional pass matters here, so the single cheapest scheme
    (``base_dram``) is run and the windowed access series is read off
    each record.
    """
    sim_params.setdefault("n_instructions", DEFAULT_N_INSTRUCTIONS)
    return ExperimentSpec(
        name="Figure 2: ORAM access rate across inputs",
        benchmarks=(
            "perlbench/diffmail",
            "perlbench/splitmail",
            "astar/rivers",
            "astar/biglakes",
        ),
        schemes=("base_dram",),
        n_windows=n_windows,
        **sim_params,
    )


def figure5_spec(rates: tuple[int, ...] | None = None, **sim_params) -> ExperimentSpec:
    """Static rate sweep on mcf and h264ref (Figure 5)."""
    sim_params.setdefault("n_instructions", DEFAULT_N_INSTRUCTIONS)
    rates = FIG5_RATES if rates is None else tuple(rates)
    return ExperimentSpec(
        name="Figure 5: overhead vs static ORAM rate",
        benchmarks=("mcf", "h264ref"),
        schemes=("base_dram",) + tuple(f"static:{rate}" for rate in rates),
        **sim_params,
    )


def figure6_spec(**sim_params) -> ExperimentSpec:
    """The main comparison: all benchmarks x all schemes (Figure 6)."""
    sim_params.setdefault("n_instructions", DEFAULT_N_INSTRUCTIONS)
    return ExperimentSpec(
        name="Figure 6: performance overhead and power across schemes",
        benchmarks=_suite(),
        schemes=FIG6_SCHEMES,
        **sim_params,
    )


def figure7_spec(n_windows: int = 100, **sim_params) -> ExperimentSpec:
    """IPC stability over time for the paper's trio (Figure 7)."""
    sim_params.setdefault("n_instructions", DEFAULT_N_INSTRUCTIONS)
    return ExperimentSpec(
        name="Figure 7: windowed IPC (dynamic_R4_E2 vs baselines)",
        benchmarks=("libquantum", "gobmk", "h264ref"),
        schemes=("base_oram", "dynamic:4x2", "static:1300"),
        n_windows=n_windows,
        **sim_params,
    )


def figure8a_spec(**sim_params) -> ExperimentSpec:
    """Vary |R| in {16, 8, 4, 2} with epoch doubling (Figure 8a)."""
    sim_params.setdefault("n_instructions", DEFAULT_N_INSTRUCTIONS)
    return ExperimentSpec(
        name="Figure 8a: leakage reduction study (vary |R|)",
        benchmarks=_suite(),
        schemes=("base_dram",) + tuple(
            f"dynamic:{n_rates}x2" for n_rates in (16, 8, 4, 2)
        ),
        **sim_params,
    )


def figure8b_spec(**sim_params) -> ExperimentSpec:
    """Vary epoch growth in {2, 4, 8, 16} with |R| = 4 (Figure 8b)."""
    sim_params.setdefault("n_instructions", DEFAULT_N_INSTRUCTIONS)
    return ExperimentSpec(
        name="Figure 8b: leakage reduction study (vary epochs)",
        benchmarks=_suite(),
        schemes=("base_dram",) + tuple(
            f"dynamic:4x{growth}" for growth in (2, 4, 8, 16)
        ),
        **sim_params,
    )


def frontier_spec(
    grid: str | None = None,
    static_anchors: tuple[int, ...] = (300, 500, 1300),
    **sim_params,
) -> ExperimentSpec:
    """The design-space sweep behind Figures 8a/8b, generalized.

    Figures 8a and 8b sample two axes of the (|R|, growth, learner)
    lattice; this spec sweeps the full default grid (or any ``grid:``
    string) so :mod:`repro.analysis.frontier` can compute the Pareto
    frontier those samples sit on.  Runs the Figure 6 suite by default;
    the lighter-weight entry point with its own benchmark selection and
    functional-pass verification lives in :mod:`repro.frontier`.
    """
    from repro.core.scheme import DEFAULT_DYNAMIC_GRID

    sim_params.setdefault("n_instructions", DEFAULT_N_INSTRUCTIONS)
    anchors = tuple(f"static:{rate}" for rate in static_anchors)
    return ExperimentSpec(
        name="Frontier: leakage vs slowdown across the dynamic design space",
        benchmarks=_suite(),
        schemes=("base_dram",) + anchors + (grid or DEFAULT_DYNAMIC_GRID,),
        **sim_params,
    )
