"""Pluggable execution backends for the experiment engine.

A backend turns a list of independent spec cells into run records.  Both
built-ins produce identical records for identical cells (see
:mod:`repro.api.execution` on determinism); they differ only in where the
work happens:

- :class:`SerialBackend` — in this process, sharing functional passes
  through per-config simulators (and optionally an injected legacy
  simulator, which is how the deprecated ``run_figure*`` shims reuse a
  caller's warm cache).
- :class:`ProcessPoolBackend` — shards cells across worker processes.
  Cells are deterministic and independent, so sharding needs no
  coordination; the persistent trace cache (when the engine has one)
  lets workers share functional passes through the filesystem.
"""

from __future__ import annotations

import os
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from multiprocessing import get_all_start_methods, get_context
from typing import Protocol, Sequence

from repro.api.cache import ExperimentCache
from repro.api.execution import (
    _execute_batch_in_worker,
    _init_worker,
    execute_cells_batch,
    functional_pass_key,
    lookup_cached_trace,
    sim_for_cell,
)
from repro.api.shm import SharedTraceArena
from repro.api.records import RunRecord
from repro.api.spec import Cell
from repro.faults import counters
from repro.sim.simulator import SecureProcessorSim
from repro.util.backoff import full_jitter

#: Attempts a batch gets before its cells are quarantined as poison.
DEFAULT_MAX_BATCH_ATTEMPTS = 3

#: First retry backoff; doubles per retry round, capped below.
DEFAULT_RETRY_BACKOFF_S = 0.05
RETRY_BACKOFF_CAP_S = 2.0


def default_start_method() -> str:
    """Preferred multiprocessing start method on this platform.

    ``fork`` where available (cheap on Linux — workers inherit warm
    module state), else ``spawn``.  Shared by every pool consumer
    (:class:`ProcessPoolBackend`, the tenancy sweep) so platform
    fallback logic lives in one place.
    """
    return "fork" if "fork" in get_all_start_methods() else "spawn"


class ExecutionBackend(Protocol):
    """Anything that can run a batch of cells.

    Returned records align with ``cells`` by index.  An entry may be
    ``None`` when the backend quarantined that cell as poison after
    repeated worker crashes — the engine drops those from the ResultSet
    and reports them in ``meta["cells_poisoned"]``.
    """

    def run_cells(
        self, cells: Sequence[Cell], cache: ExperimentCache | None = None
    ) -> list[RunRecord | None]: ...


class SerialBackend:
    """In-process execution, one cell at a time.

    Args:
        sim: Optional pre-warmed simulator to reuse for cells whose
            configuration matches it (the bridge from legacy shared-sim
            call sites).  Cells whose scalar parameters don't match get
            their own per-config simulator.  A custom hierarchy/core on
            the injected sim is honored for *uncached* runs — that is
            the legacy behavior the shims rely on — but bypassed (with
            a RuntimeWarning) when a persistent cache is configured,
            because cell hashes assume the default substrate.
    """

    name = "serial"

    def __init__(self, sim: SecureProcessorSim | None = None) -> None:
        self._injected = sim

    def _has_default_substrate(self) -> bool:
        from repro.cache.hierarchy import PAPER_HIERARCHY
        from repro.cpu.core import DEFAULT_CORE

        config = self._injected.config
        return config.hierarchy == PAPER_HIERARCHY and config.core == DEFAULT_CORE

    def _matches_injected(self, cell: Cell, persistent_cache: bool) -> bool:
        if self._injected is None:
            return False
        config = self._injected.config
        if not (
            cell.n_instructions == config.n_instructions
            and cell.seed == config.seed
            and cell.warmup_fraction == config.warmup_fraction
            and cell.write_buffer_entries == config.write_buffer_entries
        ):
            return False
        if self._has_default_substrate():
            return True
        # A custom hierarchy/core is honored for uncached runs (the
        # legacy shim behavior: the caller's substrate is the point).
        # With a persistent cache it must be bypassed — cell hashes
        # assume the default substrate, so its results would poison the
        # cache for every future default run.
        if not persistent_cache:
            return True
        warnings.warn(
            "SerialBackend: injected simulator has a non-default "
            "hierarchy/core and a persistent cache is configured; "
            "running cells under the default substrate instead",
            RuntimeWarning,
            stacklevel=3,
        )
        return False

    def run_cells(
        self, cells: Sequence[Cell], cache: ExperimentCache | None = None
    ) -> list[RunRecord]:
        """Execute every cell, batching replays per (benchmark, seed).

        Cells are partitioned by whether they run on the injected
        simulator, and each partition routes through
        :func:`~repro.api.execution.execute_cells_batch`, which replays
        every scheme of one benchmark-seed group with a single
        config-batched kernel call — records stay bit-identical to
        cell-at-a-time execution, in input order.
        """
        trace_store = cache.traces if cache else None
        cells = list(cells)
        injected: list[int] = []
        local: list[int] = []
        for index, cell in enumerate(cells):
            if self._matches_injected(cell, persistent_cache=cache is not None):
                injected.append(index)
            else:
                local.append(index)
        records: list[RunRecord | None] = [None] * len(cells)
        if injected:
            # Point the injected sim at this engine's store so a
            # cached serial run warms later pool runs (but never
            # clobber a caller-provided store with None).
            if trace_store is not None:
                self._injected.trace_store = trace_store
            for index, record in zip(
                injected,
                execute_cells_batch([cells[i] for i in injected], sim=self._injected),
            ):
                records[index] = record
        if local:
            for index, record in zip(
                local,
                execute_cells_batch([cells[i] for i in local], trace_store=trace_store),
            ):
                records[index] = record
        return records


@dataclass
class _BatchState:
    """One cell group's dispatch state across pool-crash retries."""

    indices: list[int]
    batch: list[Cell]
    attempts: int = 0
    records: list[RunRecord] | None = None
    poisoned: bool = field(default=False)


class ProcessPoolBackend:
    """Shard cells across worker processes, surviving worker crashes.

    Cells are grouped by functional-pass identity (benchmark, input,
    seed, budget) and each group runs in one worker, so the expensive
    functional pass is computed exactly once per benchmark — the same
    B-passes + B*S-replays invariant the serial path has.  Parallelism
    is therefore across benchmarks/seeds, which is where the work is.

    Deterministic per-cell seeding makes the shards order-independent:
    the engine sorts records canonically, so a pool run's ResultSet is
    identical to a serial run's for the same spec.

    **Crash recovery.**  A worker death (segfault, OOM kill, fault
    injection) surfaces as :class:`BrokenProcessPool`; the backend
    re-creates the pool and retries every lost group with capped
    exponential backoff.  Retry rounds run one fresh single-group pool
    per batch so failure attribution is exact — a pool break condemns
    only the group that crashed it, not innocent batches that shared the
    first pool.  After ``max_batch_attempts`` crashes a group's cells
    are quarantined as *poison*: their records come back ``None``, the
    rest of the sweep completes, and ``cells_poisoned`` counts the loss.
    Completed groups are never re-run, so recovery adds zero redundant
    work beyond the crashed cells themselves.

    Args:
        max_workers: Pool size (default: ``os.cpu_count()``, capped at
            the number of cell groups).
        start_method: ``"fork"`` where available (cheap on Linux), else
            ``"spawn"``; override for debugging.
        chunksize: Retained for API compatibility; groups are submitted
            individually so crashed ones can be retried.
        max_batch_attempts: Worker crashes a group survives before its
            cells are poisoned (>= 1).
        retry_backoff_s: Retry-delay scale: each retry round sleeps a
            full-jitter delay drawn from ``[0, min(retry_backoff_s *
            2^round, RETRY_BACKOFF_CAP_S)]``.
    """

    name = "process_pool"

    def __init__(
        self,
        max_workers: int | None = None,
        start_method: str | None = None,
        chunksize: int = 1,
        max_batch_attempts: int = DEFAULT_MAX_BATCH_ATTEMPTS,
        retry_backoff_s: float = DEFAULT_RETRY_BACKOFF_S,
    ) -> None:
        if start_method is None:
            start_method = default_start_method()
        if max_batch_attempts < 1:
            raise ValueError(f"max_batch_attempts must be >= 1, got {max_batch_attempts}")
        if retry_backoff_s < 0:
            raise ValueError(f"retry_backoff_s cannot be negative, got {retry_backoff_s}")
        self.max_workers = max_workers
        self.start_method = start_method
        self.chunksize = chunksize
        self.max_batch_attempts = max_batch_attempts
        self.retry_backoff_s = retry_backoff_s

    def _make_pool(self, workers: int, cache_root: str | None,
                   shm_traces: dict[str, dict]) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=workers,
            mp_context=get_context(self.start_method),
            initializer=_init_worker,
            initargs=(cache_root, shm_traces),
        )

    def _dispatch_round(
        self,
        states: list[_BatchState],
        workers: int,
        cache_root: str | None,
        shm_traces: dict[str, dict],
    ) -> list[_BatchState]:
        """Run one pool over ``states``; returns the groups that crashed."""
        with self._make_pool(workers, cache_root, shm_traces) as pool:
            futures = [
                (state, pool.submit(_execute_batch_in_worker, state.batch))
                for state in states
            ]
            crashed: list[_BatchState] = []
            for state, future in futures:
                state.attempts += 1
                try:
                    state.records = future.result()
                except BrokenProcessPool:
                    crashed.append(state)
        return crashed

    def run_cells(
        self, cells: Sequence[Cell], cache: ExperimentCache | None = None
    ) -> list[RunRecord | None]:
        """Execute cells on the pool, preserving submission order."""
        cells = list(cells)
        if not cells:
            return []
        groups: dict[tuple, list[int]] = {}
        for index, cell in enumerate(cells):
            groups.setdefault(functional_pass_key(cell), []).append(index)
        workers = min(self.max_workers or os.cpu_count() or 1, len(groups))
        if workers <= 1:
            # A one-worker pool is pure overhead; run inline instead.
            return SerialBackend().run_cells(cells, cache)
        cache_root = str(cache.traces.root) if cache else None
        states = [
            _BatchState(indices=indices, batch=[cells[i] for i in indices])
            for indices in groups.values()
        ]
        # Groups whose miss trace the parent already holds (warm sims or
        # a persistent-cache hit) ship it through shared memory instead
        # of making the worker recompute or re-unpickle it; cold groups
        # compute their own pass in parallel, exactly as before.
        arena = SharedTraceArena()
        shm_traces: dict[str, dict] = {}
        try:
            for state in states:
                head = state.batch[0]
                trace = lookup_cached_trace(head, cache)
                if trace is not None:
                    descriptor = arena.publish(
                        str(functional_pass_key(head)), trace
                    )
                    if descriptor is not None:
                        shm_traces[str(functional_pass_key(head))] = descriptor

            pending = self._dispatch_round(states, workers, cache_root, shm_traces)
            retry_round = 0
            while pending:
                counters.bump("pool_rebuilds")
                survivors: list[_BatchState] = []
                for state in pending:
                    if state.attempts >= self.max_batch_attempts:
                        # Deterministic crasher: quarantine the group as
                        # poison instead of aborting the whole sweep.
                        state.poisoned = True
                        counters.bump("cells_poisoned", len(state.batch))
                        warnings.warn(
                            f"ProcessPoolBackend: poisoned {len(state.batch)} cell(s) "
                            f"of group {functional_pass_key(state.batch[0])} after "
                            f"{state.attempts} worker crashes",
                            RuntimeWarning,
                            stacklevel=2,
                        )
                    else:
                        counters.bump("worker_retries")
                        survivors.append(state)
                if not survivors:
                    break
                if self.retry_backoff_s:
                    # Full jitter: concurrent sweeps whose pools broke on
                    # the same event (OOM killer, host pressure) would
                    # otherwise retry in lockstep (repro.util.backoff).
                    time.sleep(full_jitter(
                        self.retry_backoff_s, retry_round, RETRY_BACKOFF_CAP_S
                    ))
                retry_round += 1
                # One single-group pool per crashed batch: exact failure
                # attribution (a shared pool's break condemns every
                # in-flight future, innocent or not).
                pending = []
                for state in survivors:
                    pending.extend(
                        self._dispatch_round([state], 1, cache_root, shm_traces)
                    )
        finally:
            arena.close()
        records: list[RunRecord | None] = [None] * len(cells)
        for state in states:
            if state.records is None:
                continue
            for index, record in zip(state.indices, state.records):
                records[index] = record
        return records


def warm_local_sims(cells: Sequence[Cell]) -> None:
    """Precompute functional passes in-process for a batch of cells.

    Useful before a serial sweep over many schemes of one benchmark; the
    pool backend warms through the persistent cache instead.
    """
    seen = set()
    for cell in cells:
        key = functional_pass_key(cell)
        if key in seen:
            continue
        seen.add(key)
        sim_for_cell(cell).miss_trace(cell.benchmark, cell.input_name)
