"""Scheme configurations: the baselines, the dynamic proposal, and the grid grammar.

Section 9.1.6 defines the comparison points: ``base_dram`` (insecure
DRAM), ``base_oram`` (Path ORAM, no timing protection), ``static_300/500/
1300`` (single periodic rate, the Ascend-style zero-timing-leakage
strawman), and the paper's ``dynamic_R<n>_E<g>`` configurations.  Each
scheme knows how to build the controller the timing simulator drives,
how to report its leakage bound, and how to print itself back as the
spec string that rebuilds it (:func:`scheme_from_spec` / ``.spec``).

Two grammar layers live here:

* **Scheme specs** (:func:`scheme_from_spec`) name one configuration:
  ``"dynamic:4x4"``, ``"static:300"``, ``"dynamic:6x2:threshold"``, ...
* **Grid specs** (:func:`expand_scheme_grid`) name a whole *design
  space* — the cross product of rate-set sizes, epoch growths, and
  learner variants the frontier sweep explores (Sections 9.5 and 9.6),
  optionally pruned by a leakage budget:
  ``"grid:dynamic:{rates=2..6}x{epochs=3..6}:{learner=avg,threshold}"``.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field

from repro.core.controller import (
    FlatDramController,
    TimingProtectedController,
    UnprotectedController,
)
from repro.core.epochs import EpochSchedule, sim_schedule
from repro.core.leakage import LeakageReport, report_for_dynamic, report_for_static
from repro.core.learner import AveragingLearner, ThresholdLearner
from repro.core.rates import INITIAL_RATE, PAPER_RATES, RateSet, lg_spaced_rates
from repro.oram.timing import PAPER_ORAM_TIMING


@dataclass(frozen=True)
class BaseDramScheme:
    """Insecure flat-latency DRAM baseline (performance reference)."""

    latency: int = 40

    @property
    def name(self) -> str:
        """Scheme label used in reports."""
        return "base_dram"

    @property
    def spec(self) -> str:
        """Canonical spec string (inverse of :func:`scheme_from_spec`)."""
        return "base_dram"

    @property
    def is_oram(self) -> bool:
        """Whether memory requests cost ORAM energy/latency."""
        return False

    def build_controller(self):
        """Construct the memory controller for a run."""
        return FlatDramController(latency=self.latency)

    def expended_leakage_bits(self, n_epochs: int) -> float:
        """Leakage realized by a bounded run: unbounded (no protection)."""
        return float("inf")

    def leakage(self) -> LeakageReport:
        """No protection at all: unbounded timing leakage.

        Reported as infinite ORAM-timing bits; the exact count for a
        bounded run comes from ``unprotected_leakage_bits``.
        """
        report = report_for_static()
        return LeakageReport(
            scheme=self.name,
            oram_timing_bits=float("inf"),
            termination_bits=report.termination_bits,
        )


@dataclass(frozen=True)
class BaseOramScheme:
    """Path ORAM without timing protection (power/perf oracle, insecure)."""

    oram_latency: int = PAPER_ORAM_TIMING.latency_cycles

    @property
    def name(self) -> str:
        """Scheme label used in reports."""
        return "base_oram"

    @property
    def spec(self) -> str:
        """Canonical spec string (inverse of :func:`scheme_from_spec`)."""
        return "base_oram"

    @property
    def is_oram(self) -> bool:
        """ORAM-backed."""
        return True

    def build_controller(self):
        """Construct the memory controller for a run."""
        return UnprotectedController(oram_latency=self.oram_latency)

    def expended_leakage_bits(self, n_epochs: int) -> float:
        """Leakage realized by a bounded run: unbounded (timing unprotected)."""
        return float("inf")

    def leakage(self) -> LeakageReport:
        """Timing unprotected: unbounded ORAM-timing leakage."""
        report = report_for_static()
        return LeakageReport(
            scheme=self.name,
            oram_timing_bits=float("inf"),
            termination_bits=report.termination_bits,
        )


@dataclass(frozen=True)
class StaticScheme:
    """Single offline-chosen periodic rate (Ascend-style, zero timing leak)."""

    rate: int
    oram_latency: int = PAPER_ORAM_TIMING.latency_cycles

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")

    @property
    def name(self) -> str:
        """Scheme label, e.g. ``static_300``."""
        return f"static_{self.rate}"

    @property
    def spec(self) -> str:
        """Canonical spec string (inverse of :func:`scheme_from_spec`)."""
        return f"static:{self.rate}"

    @property
    def is_oram(self) -> bool:
        """ORAM-backed."""
        return True

    def build_controller(self):
        """Construct the slot controller with a fixed rate forever."""
        return TimingProtectedController(
            oram_latency=self.oram_latency,
            initial_rate=self.rate,
        )

    def leakage(self) -> LeakageReport:
        """One trace over the ORAM channel: 0 bits (+ termination)."""
        return report_for_static()

    def expended_leakage_bits(self, n_epochs: int) -> float:
        """A static rate generates exactly one trace: 0 bits, always."""
        return 0.0


@dataclass(frozen=True)
class DynamicScheme:
    """The paper's proposal: |R| rates, geometric epochs, a rate learner.

    ``learner_kind`` selects 'averaging' (Equation 1 + Algorithm 1, the
    deployed design) or 'threshold' (the Section 7.3 sophisticated
    predictor reconstruction).  ``exact_divide``/``log_discretize`` are
    knobs on the averaging learner.

    Default discretization is log-space nearest: the candidates are spaced
    evenly on a lg scale (Section 9.2), so "whichever element in R is
    closest" (Section 7.1.3) is interpreted on that scale.  This matters:
    linear nearest puts the 256/1290 boundary at 773 cycles, which —
    combined with Algorithm 1's deliberate underset bias — would pin the
    paper's mid-tier benchmarks (gobmk, astar) to 256 instead of the 1290
    the paper reports them settling on.  Linear nearest remains available
    (``log_discretize=False``) and is quantified in the ablation bench.
    """

    rates: RateSet = PAPER_RATES
    schedule: EpochSchedule = field(default_factory=lambda: sim_schedule(growth=4))
    initial_rate: int = INITIAL_RATE
    oram_latency: int = PAPER_ORAM_TIMING.latency_cycles
    learner_kind: str = "averaging"
    exact_divide: bool = False
    log_discretize: bool = True
    threshold_sharpness: float = 0.30

    @property
    def name(self) -> str:
        """Scheme label: ``dynamic_R4_E4``, ``dynamic_R4_E4_threshold``."""
        base = f"dynamic_R{len(self.rates)}_E{self.schedule.growth}"
        return base if self.learner_kind == "averaging" else f"{base}_{self.learner_kind}"

    @property
    def spec(self) -> str:
        """Canonical spec string (inverse of :func:`scheme_from_spec`).

        Canonical for grammar-built schemes: the averaging learner is the
        default and stays implicit (``"dynamic:4x4"``), other learners
        are appended (``"dynamic:4x4:threshold"``).
        """
        base = f"dynamic:{len(self.rates)}x{self.schedule.growth}"
        return base if self.learner_kind == "averaging" else f"{base}:{self.learner_kind}"

    @property
    def is_oram(self) -> bool:
        """ORAM-backed."""
        return True

    def build_learner(self):
        """Construct the configured rate learner."""
        if self.learner_kind == "averaging":
            return AveragingLearner(
                self.rates,
                exact_divide=self.exact_divide,
                log_discretize=self.log_discretize,
            )
        if self.learner_kind == "threshold":
            return ThresholdLearner(
                self.rates,
                oram_latency_cycles=self.oram_latency,
                sharpness=self.threshold_sharpness,
            )
        raise ValueError(f"unknown learner_kind {self.learner_kind!r}")

    def build_controller(self):
        """Construct the epoch-driven slot controller."""
        return TimingProtectedController(
            oram_latency=self.oram_latency,
            initial_rate=self.initial_rate,
            schedule=self.schedule,
            learner=self.build_learner(),
        )

    def leakage(self) -> LeakageReport:
        """``|E| * lg |R|`` ORAM-timing bits plus termination bits."""
        return report_for_dynamic(self.schedule, len(self.rates))

    def expended_leakage_bits(self, n_epochs: int) -> float:
        """Leakage realized by a run that entered ``n_epochs`` epochs.

        The bound charges ``lg |R|`` bits per epoch *entered* (Section
        6): a run shorter than Tmax expends only part of its
        ``|E| * lg |R|`` budget.  Which rates the learner picked never
        appears — only the counts (Section 2.2.2).
        """
        if n_epochs < 0:
            raise ValueError(f"n_epochs must be >= 0, got {n_epochs}")
        return n_epochs * math.log2(len(self.rates))


@dataclass(frozen=True)
class ObliviousDramScheme:
    """Section 10 extension: the dynamic scheme on commodity DRAM, no ORAM.

    The paper observes the scheme works without ORAM *if* dummy memory
    operations are indistinguishable from real ones — which on commodity
    DRAM requires disabling/normalizing row buffers (so bank state leaks
    nothing) and physically partitioning DRAM (so the Section 3.2 scan is
    impossible).  Under those assumptions the slot machinery is identical;
    only the per-access latency/energy drop from ORAM path costs to a
    single cache-line transfer.  Address-pattern leakage is of course NOT
    protected — this is a timing-channel-only design point.

    Rates are scaled to DRAM-appropriate values: ORAM-tuned candidates
    would leave the 40-cycle memory idle virtually always.
    """

    rates: RateSet = RateSet((32, 101, 323, 1024))
    schedule: EpochSchedule = field(default_factory=lambda: sim_schedule(growth=4))
    initial_rate: int = 256
    dram_latency: int = 40

    @property
    def name(self) -> str:
        """Scheme label."""
        return f"oblivious_dram_R{len(self.rates)}_E{self.schedule.growth}"

    @property
    def spec(self) -> str:
        """Canonical spec string (inverse of :func:`scheme_from_spec`).

        The bare default prints as ``"oblivious_dram"`` — its hand-pinned
        rate set (323) differs from the lg-spaced reconstruction (322)
        that the parameterized form would rebuild.
        """
        if self == ObliviousDramScheme():
            return "oblivious_dram"
        return f"oblivious_dram:{len(self.rates)}x{self.schedule.growth}"

    @property
    def is_oram(self) -> bool:
        """Accesses cost DRAM (not ORAM) energy and latency."""
        return False

    def build_controller(self):
        """Slot controller with DRAM latency; dummies are DRAM accesses."""
        return TimingProtectedController(
            oram_latency=self.dram_latency,
            initial_rate=self.initial_rate,
            schedule=self.schedule,
            learner=AveragingLearner(self.rates, log_discretize=True),
        )

    def leakage(self) -> LeakageReport:
        """Same |E| * lg |R| arithmetic — the bound is substrate-agnostic."""
        return report_for_dynamic(self.schedule, len(self.rates))

    def expended_leakage_bits(self, n_epochs: int) -> float:
        """``lg |R|`` bits per epoch entered, as for the ORAM-backed scheme."""
        if n_epochs < 0:
            raise ValueError(f"n_epochs must be >= 0, got {n_epochs}")
        return n_epochs * math.log2(len(self.rates))


def dynamic(n_rates: int = 4, growth: int = 4, **kwargs) -> DynamicScheme:
    """Convenience builder: ``dynamic(4, 4)`` is the paper's headline config.

    >>> dynamic(4, 4).name
    'dynamic_R4_E4'
    >>> dynamic(4, 4).leakage().oram_timing_bits
    32.0
    """
    return DynamicScheme(
        rates=lg_spaced_rates(n_rates),
        schedule=sim_schedule(growth=growth),
        **kwargs,
    )


#: Grammar accepted by :func:`scheme_from_spec`, for error messages.
SCHEME_SPEC_FORMS = (
    "base_dram",
    "base_oram",
    "static:<rate>",
    "dynamic:<|R|>x<growth>[:<learner>]",
    "oblivious_dram[:<|R|>x<growth>]",
    "grid:dynamic:{rates=..}x{epochs=..}[:{learner=..}][:{budget=..}]  (expand_scheme_grid)",
)

#: Learner-segment aliases accepted by the ``dynamic:`` spec grammar.
LEARNER_ALIASES = {
    "avg": "averaging",
    "averaging": "averaging",
    "threshold": "threshold",
}


def _parse_rates_x_growth(arg: str, spec: str) -> tuple[int, int]:
    """Parse the ``<n_rates>x<growth>`` argument of dynamic-family specs."""
    parts = arg.split("x")
    if len(parts) != 2:
        raise ValueError(
            f"scheme spec {spec!r} needs an <|R|>x<growth> argument, e.g. 'dynamic:4x4'"
        )
    try:
        n_rates, growth = int(parts[0]), int(parts[1])
    except ValueError:
        raise ValueError(f"scheme spec {spec!r}: |R| and growth must be integers")
    if n_rates < 1:
        raise ValueError(f"scheme spec {spec!r}: |R| must be >= 1")
    if growth < 2:
        raise ValueError(f"scheme spec {spec!r}: growth must be >= 2")
    return n_rates, growth


def _parse_learner(arg: str, spec: str) -> str:
    """Resolve a learner-segment alias (``avg``/``averaging``/``threshold``)."""
    try:
        return LEARNER_ALIASES[arg]
    except KeyError:
        raise ValueError(
            f"scheme spec {spec!r}: unknown learner {arg!r}; "
            f"accepted: {', '.join(sorted(LEARNER_ALIASES))}"
        )


def scheme_from_spec(spec: str):
    """Build a scheme from a compact spec string.

    The declarative experiment API (:mod:`repro.api`) names schemes with
    strings so specs stay hashable, serializable, and CLI-friendly:

    - ``"base_dram"`` — insecure DRAM baseline
    - ``"base_oram"`` — Path ORAM without timing protection
    - ``"static:300"`` — static rate of 300 cycles
    - ``"dynamic:4x4"`` — the paper's dynamic scheme, |R|=4, epoch growth 4
    - ``"dynamic:4x4:threshold"`` — same lattice point, the Section 7.3
      threshold learner instead of the default averaging learner
    - ``"oblivious_dram"`` / ``"oblivious_dram:4x4"`` — Section 10 extension

    Every scheme prints itself back via ``.spec``, and
    ``scheme_from_spec(s).spec == s`` for canonical strings (averaging
    learner implicit, ``avg`` normalized away):

    >>> scheme_from_spec("dynamic:4x4").name
    'dynamic_R4_E4'
    >>> scheme_from_spec("dynamic:4x4:avg").spec
    'dynamic:4x4'
    >>> scheme_from_spec("dynamic:6x2:threshold").name
    'dynamic_R6_E2_threshold'
    >>> scheme_from_spec("static:300").leakage().oram_timing_bits
    0.0

    Raises ValueError with the accepted grammar for anything else.
    """
    if not isinstance(spec, str) or not spec:
        raise ValueError(f"scheme spec must be a non-empty string, got {spec!r}")
    head, _, arg = spec.partition(":")
    if head == "base_dram" and not arg:
        return BaseDramScheme()
    if head == "base_oram" and not arg:
        return BaseOramScheme()
    if head == "static":
        try:
            rate = int(arg)
        except ValueError:
            raise ValueError(f"scheme spec {spec!r}: static rate must be an integer")
        return StaticScheme(rate)
    if head == "dynamic":
        lattice, _, learner_arg = arg.partition(":")
        n_rates, growth = _parse_rates_x_growth(lattice, spec)
        learner = _parse_learner(learner_arg, spec) if learner_arg else "averaging"
        return dynamic(n_rates, growth, learner_kind=learner)
    if head == "oblivious_dram":
        if not arg:
            return ObliviousDramScheme()
        n_rates, growth = _parse_rates_x_growth(arg, spec)
        default = ObliviousDramScheme()
        return ObliviousDramScheme(
            rates=lg_spaced_rates(
                n_rates, fastest=default.rates.fastest, slowest=default.rates.slowest
            ),
            schedule=sim_schedule(growth=growth),
        )
    if head == "grid":
        raise ValueError(
            f"{spec!r} is a grid spec naming many schemes; expand it with "
            "expand_scheme_grid() before asking for a single scheme"
        )
    raise ValueError(
        f"unknown scheme spec {spec!r}; accepted forms: {', '.join(SCHEME_SPEC_FORMS)}"
    )


# ----------------------------------------------------------------------
# Grid specs: the frontier's scheme-space generator
# ----------------------------------------------------------------------

#: The default dynamic design space swept by ``repro frontier``:
#: |R| in 2..8, epoch growth in 2..9, both learners — 112 configurations.
DEFAULT_DYNAMIC_GRID = "grid:dynamic:{rates=2..8}x{epochs=2..9}:{learner=avg,threshold}"

_GRID_TERM = re.compile(r"^\{(\w+)=([^{}]+)\}$")


def _parse_int_values(text: str, term: str, spec: str) -> tuple[int, ...]:
    """Parse a brace value list: ``2..6`` (inclusive range) or ``2,4,8``."""
    text = text.strip()
    if ".." in text:
        lo_text, _, hi_text = text.partition("..")
        try:
            lo, hi = int(lo_text), int(hi_text)
        except ValueError:
            raise ValueError(f"grid spec {spec!r}: {term} range {text!r} must be <int>..<int>")
        if hi < lo:
            raise ValueError(f"grid spec {spec!r}: empty {term} range {text!r}")
        return tuple(range(lo, hi + 1))
    try:
        values = tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise ValueError(f"grid spec {spec!r}: {term} values {text!r} must be integers")
    if not values:
        raise ValueError(f"grid spec {spec!r}: {term} needs at least one value")
    if len(set(values)) != len(values):
        raise ValueError(f"grid spec {spec!r}: {term} values must be distinct")
    return values


@dataclass(frozen=True)
class SchemeGrid:
    """A dynamic-scheme design space: |R| x growth x learner, budget-pruned.

    The frontier sweep's generator (Section 9.5/9.6 explore slices of
    this space; the frontier sweeps the cross product).  ``expand()``
    yields one canonical :func:`scheme_from_spec` string per surviving
    configuration, so a grid composes with everything that already
    speaks spec strings — :class:`~repro.api.spec.ExperimentSpec`, the
    CLI, the persistent cache.

    Attributes:
        n_rates_values: Candidate-set sizes |R| to sweep.
        growth_values: Epoch growth factors to sweep (the paper's E2..E16
            axis, Section 9.6).
        learners: Learner variants (``"averaging"``, ``"threshold"``).
        budget_bits: When set, drop configurations whose ORAM-timing
            bound ``|E| * lg |R|`` exceeds this many bits (the Section 5
            user-set leakage limit applied at design time).
    """

    n_rates_values: tuple[int, ...]
    growth_values: tuple[int, ...]
    learners: tuple[str, ...] = ("averaging",)
    budget_bits: float | None = None

    def __post_init__(self) -> None:
        if not self.n_rates_values or not self.growth_values or not self.learners:
            raise ValueError("SchemeGrid needs at least one value per axis")
        if any(n < 1 for n in self.n_rates_values):
            raise ValueError(f"|R| values must be >= 1, got {self.n_rates_values}")
        if any(g < 2 for g in self.growth_values):
            raise ValueError(f"growth values must be >= 2, got {self.growth_values}")
        for learner in self.learners:
            if learner not in LEARNER_ALIASES.values():
                raise ValueError(f"unknown learner {learner!r} in grid")
        if self.budget_bits is not None and self.budget_bits < 0:
            raise ValueError(f"budget_bits must be >= 0, got {self.budget_bits}")

    @property
    def spec(self) -> str:
        """Canonical grid spec string (inverse of :func:`parse_scheme_grid`)."""

        def values(axis: tuple[int, ...]) -> str:
            if len(axis) > 2 and axis == tuple(range(axis[0], axis[-1] + 1)):
                return f"{axis[0]}..{axis[-1]}"
            return ",".join(str(v) for v in axis)

        text = f"grid:dynamic:{{rates={values(self.n_rates_values)}}}x" \
               f"{{epochs={values(self.growth_values)}}}"
        learner_names = {"averaging": "avg", "threshold": "threshold"}
        text += ":{learner=" + ",".join(learner_names[lr] for lr in self.learners) + "}"
        if self.budget_bits is not None:
            budget = self.budget_bits
            text += f":{{budget={int(budget) if budget == int(budget) else budget}}}"
        return text

    def bound_bits(self, n_rates: int, growth: int) -> float:
        """The ORAM-timing bound ``|E| * lg |R|`` of one lattice point."""
        return report_for_dynamic(sim_schedule(growth=growth), n_rates).oram_timing_bits

    def expand(self) -> tuple[str, ...]:
        """All surviving configurations as canonical scheme spec strings.

        Ordered rates-major, then growth, then learner; budget-pruned
        points are silently dropped (an empty expansion raises, because a
        frontier over nothing is a configuration error).
        """
        specs = []
        for n_rates in self.n_rates_values:
            for growth in self.growth_values:
                if (
                    self.budget_bits is not None
                    and self.bound_bits(n_rates, growth) > self.budget_bits + 1e-9
                ):
                    continue
                for learner in self.learners:
                    suffix = "" if learner == "averaging" else f":{learner}"
                    specs.append(f"dynamic:{n_rates}x{growth}{suffix}")
        if not specs:
            raise ValueError(
                f"grid {self.spec!r} expands to nothing: every configuration "
                f"exceeds the {self.budget_bits}-bit budget"
            )
        return tuple(specs)

    def __len__(self) -> int:
        return len(self.expand())


def parse_scheme_grid(spec: str) -> SchemeGrid:
    """Parse a ``grid:dynamic:...`` spec string into a :class:`SchemeGrid`.

    Grammar (segments after the lattice are optional, in this order)::

        grid:dynamic:{rates=<values>}x{epochs=<values>}[:{learner=<names>}][:{budget=<bits>}]

    ``<values>`` is an inclusive range ``2..6`` or a comma list ``2,4,8``;
    ``<names>`` draws from ``avg``/``averaging``/``threshold``.  The bare
    alias ``"grid:dynamic"`` resolves to :data:`DEFAULT_DYNAMIC_GRID`.

    >>> parse_scheme_grid("grid:dynamic:{rates=2..4}x{epochs=2,4}").n_rates_values
    (2, 3, 4)
    >>> len(parse_scheme_grid("grid:dynamic"))
    112
    """
    if not isinstance(spec, str) or not spec.startswith("grid:"):
        raise ValueError(f"grid spec must start with 'grid:', got {spec!r}")
    if spec in ("grid:dynamic", "grid:dynamic:default"):
        spec = DEFAULT_DYNAMIC_GRID
    body = spec[len("grid:"):]
    family, _, rest = body.partition(":")
    if family != "dynamic" or not rest:
        raise ValueError(
            f"unknown grid spec {spec!r}; accepted: "
            "grid:dynamic:{rates=..}x{epochs=..}[:{learner=..}][:{budget=..}]"
        )
    segments = rest.split(":")
    lattice = segments[0]
    lattice_parts = lattice.split("}x{")
    if len(lattice_parts) != 2:
        raise ValueError(
            f"grid spec {spec!r}: lattice must be {{rates=..}}x{{epochs=..}}"
        )
    terms = dict([
        _match_grid_term(lattice_parts[0] + "}", spec),
        _match_grid_term("{" + lattice_parts[1], spec),
    ])
    if set(terms) != {"rates", "epochs"}:
        raise ValueError(
            f"grid spec {spec!r}: lattice must name rates and epochs, got {sorted(terms)}"
        )
    n_rates_values = _parse_int_values(terms["rates"], "rates", spec)
    growth_values = _parse_int_values(terms["epochs"], "epochs", spec)

    learners: tuple[str, ...] = ("averaging",)
    budget_bits: float | None = None
    for segment in segments[1:]:
        key, value = _match_grid_term(segment, spec)
        if key == "learner":
            learners = tuple(
                _parse_learner(part.strip(), spec)
                for part in value.split(",")
                if part.strip()
            )
            if len(set(learners)) != len(learners):
                raise ValueError(f"grid spec {spec!r}: duplicate learners")
        elif key == "budget":
            try:
                budget_bits = float(value)
            except ValueError:
                raise ValueError(f"grid spec {spec!r}: budget must be a number")
        else:
            raise ValueError(
                f"grid spec {spec!r}: unknown term {{{key}=...}}; "
                "accepted: learner, budget"
            )
    return SchemeGrid(
        n_rates_values=n_rates_values,
        growth_values=growth_values,
        learners=learners,
        budget_bits=budget_bits,
    )


def _match_grid_term(segment: str, spec: str) -> tuple[str, str]:
    """Match one ``{key=value}`` grid segment."""
    match = _GRID_TERM.match(segment.strip())
    if match is None:
        raise ValueError(
            f"grid spec {spec!r}: segment {segment!r} is not of the form {{key=value}}"
        )
    return match.group(1), match.group(2)


def expand_scheme_grid(spec: str) -> tuple[str, ...]:
    """Expand a grid spec to concrete scheme spec strings.

    Every returned string round-trips: it parses with
    :func:`scheme_from_spec` and the parsed scheme's ``.spec`` prints the
    identical string back.

    >>> expand_scheme_grid("grid:dynamic:{rates=2..3}x{epochs=2..3}")
    ('dynamic:2x2', 'dynamic:2x3', 'dynamic:3x2', 'dynamic:3x3')
    >>> expand_scheme_grid("grid:dynamic:{rates=4}x{epochs=2,4}:{learner=threshold}")
    ('dynamic:4x2:threshold', 'dynamic:4x4:threshold')
    >>> len(expand_scheme_grid("grid:dynamic:{rates=2..8}x{epochs=2..9}:{learner=avg,threshold}"))
    112
    """
    return parse_scheme_grid(spec).expand()


def is_grid_spec(spec: str) -> bool:
    """Whether a spec string names a scheme grid rather than one scheme."""
    return isinstance(spec, str) and spec.startswith("grid:")


#: Section 9.1.6's five baselines plus the headline dynamic configuration.
def paper_baselines() -> list:
    """The comparison set of Figure 6."""
    return [
        BaseDramScheme(),
        BaseOramScheme(),
        dynamic(4, 4),
        StaticScheme(300),
        StaticScheme(500),
        StaticScheme(1300),
    ]
