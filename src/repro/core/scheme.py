"""Scheme configurations: the baselines and the dynamic proposal.

Section 9.1.6 defines the comparison points: ``base_dram`` (insecure
DRAM), ``base_oram`` (Path ORAM, no timing protection), ``static_300/500/
1300`` (single periodic rate, the Ascend-style zero-timing-leakage
strawman), and the paper's ``dynamic_R<n>_E<g>`` configurations.  Each
scheme knows how to build the controller the timing simulator drives and
how to report its leakage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.controller import (
    FlatDramController,
    TimingProtectedController,
    UnprotectedController,
)
from repro.core.epochs import EpochSchedule, sim_schedule
from repro.core.leakage import LeakageReport, report_for_dynamic, report_for_static
from repro.core.learner import AveragingLearner, ThresholdLearner
from repro.core.rates import INITIAL_RATE, PAPER_RATES, RateSet, lg_spaced_rates
from repro.oram.timing import PAPER_ORAM_TIMING


@dataclass(frozen=True)
class BaseDramScheme:
    """Insecure flat-latency DRAM baseline (performance reference)."""

    latency: int = 40

    @property
    def name(self) -> str:
        """Scheme label used in reports."""
        return "base_dram"

    @property
    def is_oram(self) -> bool:
        """Whether memory requests cost ORAM energy/latency."""
        return False

    def build_controller(self):
        """Construct the memory controller for a run."""
        return FlatDramController(latency=self.latency)

    def leakage(self) -> LeakageReport:
        """No protection at all: unbounded timing leakage.

        Reported as infinite ORAM-timing bits; the exact count for a
        bounded run comes from ``unprotected_leakage_bits``.
        """
        report = report_for_static()
        return LeakageReport(
            scheme=self.name,
            oram_timing_bits=float("inf"),
            termination_bits=report.termination_bits,
        )


@dataclass(frozen=True)
class BaseOramScheme:
    """Path ORAM without timing protection (power/perf oracle, insecure)."""

    oram_latency: int = PAPER_ORAM_TIMING.latency_cycles

    @property
    def name(self) -> str:
        """Scheme label used in reports."""
        return "base_oram"

    @property
    def is_oram(self) -> bool:
        """ORAM-backed."""
        return True

    def build_controller(self):
        """Construct the memory controller for a run."""
        return UnprotectedController(oram_latency=self.oram_latency)

    def leakage(self) -> LeakageReport:
        """Timing unprotected: unbounded ORAM-timing leakage."""
        report = report_for_static()
        return LeakageReport(
            scheme=self.name,
            oram_timing_bits=float("inf"),
            termination_bits=report.termination_bits,
        )


@dataclass(frozen=True)
class StaticScheme:
    """Single offline-chosen periodic rate (Ascend-style, zero timing leak)."""

    rate: int
    oram_latency: int = PAPER_ORAM_TIMING.latency_cycles

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")

    @property
    def name(self) -> str:
        """Scheme label, e.g. ``static_300``."""
        return f"static_{self.rate}"

    @property
    def is_oram(self) -> bool:
        """ORAM-backed."""
        return True

    def build_controller(self):
        """Construct the slot controller with a fixed rate forever."""
        return TimingProtectedController(
            oram_latency=self.oram_latency,
            initial_rate=self.rate,
        )

    def leakage(self) -> LeakageReport:
        """One trace over the ORAM channel: 0 bits (+ termination)."""
        return report_for_static()


@dataclass(frozen=True)
class DynamicScheme:
    """The paper's proposal: |R| rates, geometric epochs, a rate learner.

    ``learner_kind`` selects 'averaging' (Equation 1 + Algorithm 1, the
    deployed design) or 'threshold' (the Section 7.3 sophisticated
    predictor reconstruction).  ``exact_divide``/``log_discretize`` are
    knobs on the averaging learner.

    Default discretization is log-space nearest: the candidates are spaced
    evenly on a lg scale (Section 9.2), so "whichever element in R is
    closest" (Section 7.1.3) is interpreted on that scale.  This matters:
    linear nearest puts the 256/1290 boundary at 773 cycles, which —
    combined with Algorithm 1's deliberate underset bias — would pin the
    paper's mid-tier benchmarks (gobmk, astar) to 256 instead of the 1290
    the paper reports them settling on.  Linear nearest remains available
    (``log_discretize=False``) and is quantified in the ablation bench.
    """

    rates: RateSet = PAPER_RATES
    schedule: EpochSchedule = field(default_factory=lambda: sim_schedule(growth=4))
    initial_rate: int = INITIAL_RATE
    oram_latency: int = PAPER_ORAM_TIMING.latency_cycles
    learner_kind: str = "averaging"
    exact_divide: bool = False
    log_discretize: bool = True
    threshold_sharpness: float = 0.30

    @property
    def name(self) -> str:
        """Scheme label, e.g. ``dynamic_R4_E4``."""
        return f"dynamic_R{len(self.rates)}_E{self.schedule.growth}"

    @property
    def is_oram(self) -> bool:
        """ORAM-backed."""
        return True

    def build_learner(self):
        """Construct the configured rate learner."""
        if self.learner_kind == "averaging":
            return AveragingLearner(
                self.rates,
                exact_divide=self.exact_divide,
                log_discretize=self.log_discretize,
            )
        if self.learner_kind == "threshold":
            return ThresholdLearner(
                self.rates,
                oram_latency_cycles=self.oram_latency,
                sharpness=self.threshold_sharpness,
            )
        raise ValueError(f"unknown learner_kind {self.learner_kind!r}")

    def build_controller(self):
        """Construct the epoch-driven slot controller."""
        return TimingProtectedController(
            oram_latency=self.oram_latency,
            initial_rate=self.initial_rate,
            schedule=self.schedule,
            learner=self.build_learner(),
        )

    def leakage(self) -> LeakageReport:
        """``|E| * lg |R|`` ORAM-timing bits plus termination bits."""
        return report_for_dynamic(self.schedule, len(self.rates))


@dataclass(frozen=True)
class ObliviousDramScheme:
    """Section 10 extension: the dynamic scheme on commodity DRAM, no ORAM.

    The paper observes the scheme works without ORAM *if* dummy memory
    operations are indistinguishable from real ones — which on commodity
    DRAM requires disabling/normalizing row buffers (so bank state leaks
    nothing) and physically partitioning DRAM (so the Section 3.2 scan is
    impossible).  Under those assumptions the slot machinery is identical;
    only the per-access latency/energy drop from ORAM path costs to a
    single cache-line transfer.  Address-pattern leakage is of course NOT
    protected — this is a timing-channel-only design point.

    Rates are scaled to DRAM-appropriate values: ORAM-tuned candidates
    would leave the 40-cycle memory idle virtually always.
    """

    rates: RateSet = RateSet((32, 101, 323, 1024))
    schedule: EpochSchedule = field(default_factory=lambda: sim_schedule(growth=4))
    initial_rate: int = 256
    dram_latency: int = 40

    @property
    def name(self) -> str:
        """Scheme label."""
        return f"oblivious_dram_R{len(self.rates)}_E{self.schedule.growth}"

    @property
    def is_oram(self) -> bool:
        """Accesses cost DRAM (not ORAM) energy and latency."""
        return False

    def build_controller(self):
        """Slot controller with DRAM latency; dummies are DRAM accesses."""
        return TimingProtectedController(
            oram_latency=self.dram_latency,
            initial_rate=self.initial_rate,
            schedule=self.schedule,
            learner=AveragingLearner(self.rates, log_discretize=True),
        )

    def leakage(self) -> LeakageReport:
        """Same |E| * lg |R| arithmetic — the bound is substrate-agnostic."""
        return report_for_dynamic(self.schedule, len(self.rates))


def dynamic(n_rates: int = 4, growth: int = 4, **kwargs) -> DynamicScheme:
    """Convenience builder: ``dynamic(4, 4)`` is the paper's headline config."""
    return DynamicScheme(
        rates=lg_spaced_rates(n_rates),
        schedule=sim_schedule(growth=growth),
        **kwargs,
    )


#: Grammar accepted by :func:`scheme_from_spec`, for error messages.
SCHEME_SPEC_FORMS = (
    "base_dram",
    "base_oram",
    "static:<rate>",
    "dynamic:<|R|>x<growth>",
    "oblivious_dram[:<|R|>x<growth>]",
)


def _parse_rates_x_growth(arg: str, spec: str) -> tuple[int, int]:
    """Parse the ``<n_rates>x<growth>`` argument of dynamic-family specs."""
    parts = arg.split("x")
    if len(parts) != 2:
        raise ValueError(
            f"scheme spec {spec!r} needs an <|R|>x<growth> argument, e.g. 'dynamic:4x4'"
        )
    try:
        n_rates, growth = int(parts[0]), int(parts[1])
    except ValueError:
        raise ValueError(f"scheme spec {spec!r}: |R| and growth must be integers")
    if n_rates < 1:
        raise ValueError(f"scheme spec {spec!r}: |R| must be >= 1")
    if growth < 2:
        raise ValueError(f"scheme spec {spec!r}: growth must be >= 2")
    return n_rates, growth


def scheme_from_spec(spec: str):
    """Build a scheme from a compact spec string.

    The declarative experiment API (:mod:`repro.api`) names schemes with
    strings so specs stay hashable, serializable, and CLI-friendly:

    - ``"base_dram"`` — insecure DRAM baseline
    - ``"base_oram"`` — Path ORAM without timing protection
    - ``"static:300"`` — static rate of 300 cycles
    - ``"dynamic:4x4"`` — the paper's dynamic scheme, |R|=4, epoch growth 4
    - ``"oblivious_dram"`` / ``"oblivious_dram:4x4"`` — Section 10 extension

    Raises ValueError with the accepted grammar for anything else.
    """
    if not isinstance(spec, str) or not spec:
        raise ValueError(f"scheme spec must be a non-empty string, got {spec!r}")
    head, _, arg = spec.partition(":")
    if head == "base_dram" and not arg:
        return BaseDramScheme()
    if head == "base_oram" and not arg:
        return BaseOramScheme()
    if head == "static":
        try:
            rate = int(arg)
        except ValueError:
            raise ValueError(f"scheme spec {spec!r}: static rate must be an integer")
        return StaticScheme(rate)
    if head == "dynamic":
        n_rates, growth = _parse_rates_x_growth(arg, spec)
        return dynamic(n_rates, growth)
    if head == "oblivious_dram":
        if not arg:
            return ObliviousDramScheme()
        n_rates, growth = _parse_rates_x_growth(arg, spec)
        default = ObliviousDramScheme()
        return ObliviousDramScheme(
            rates=lg_spaced_rates(
                n_rates, fastest=default.rates.fastest, slowest=default.rates.slowest
            ),
            schedule=sim_schedule(growth=growth),
        )
    raise ValueError(
        f"unknown scheme spec {spec!r}; accepted forms: {', '.join(SCHEME_SPEC_FORMS)}"
    )


#: Section 9.1.6's five baselines plus the headline dynamic configuration.
def paper_baselines() -> list:
    """The comparison set of Figure 6."""
    return [
        BaseDramScheme(),
        BaseOramScheme(),
        dynamic(4, 4),
        StaticScheme(300),
        StaticScheme(500),
        StaticScheme(1300),
    ]
