"""Bit-leakage accounting (Sections 2.1, 6, 10).

The leakage measure: count the distinct observable timing traces a program
could have generated; the worst-case bit leakage is the base-2 logarithm
of that count.  Everything here is exact arithmetic over Python big
integers (trace counts routinely dwarf 2**64) or closed-form bounds.

Channels modeled:

* **Dynamic-scheme ORAM timing**: |R| candidate rates over |E| epochs
  give ``|R| ** |E|`` schedules -> ``|E| * lg |R|`` bits.
* **Early termination**: a program observably terminating at any of Tmax
  instants leaks ``lg Tmax`` bits; discretizing ("round termination up to
  the next 2^k cycles") reduces this to ``lg(Tmax / 2^k)`` bits.
* **No protection** (footnote 4): for every termination time t, every
  t-bit string where each 1 is followed by at least OLAT-1 zeros is a
  distinct trace; the count is ``sum_t sum_i C(t - i*(OLAT-1), i)`` and
  the resulting leakage is astronomical.
* **Static rate**: exactly one trace -> 0 bits (plus termination).
* **Composition** (Section 10): channels multiply trace counts, so bit
  leakage across channels is additive.
* **Probabilistic subtlety** (Section 10): an encoding program can leak
  L' > L bits with probability 2^(L-1) / 2^(L'), learned all-or-nothing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.epochs import EpochSchedule, PAPER_TMAX
from repro.util.validation import check_positive


def dynamic_timing_leakage_bits(n_epochs: int, n_rates: int) -> float:
    """ORAM timing leakage of the dynamic scheme: ``|E| * lg |R|`` bits.

    Section 2.2.1: |R|^|E| rate schedules.  The *values* in R and the
    learner's choices do not appear — only the counts (Section 2.2.2).

    >>> dynamic_timing_leakage_bits(16, 4)   # R4/E4, Section 9.3
    32.0
    >>> dynamic_timing_leakage_bits(32, 4)   # R4/E2, Example 6.1
    64.0
    """
    check_positive(n_epochs, "n_epochs")
    check_positive(n_rates, "n_rates")
    return n_epochs * math.log2(n_rates)


def termination_leakage_bits(
    tmax_cycles: int = PAPER_TMAX, discretize_to_cycles: int = 1
) -> float:
    """Early-termination leakage: ``lg(Tmax / granularity)`` bits.

    With no discretization (granularity 1) this is the paper's 62 bits for
    Tmax = 2^62.  Rounding termination up to the next 2^30 cycles leaves
    lg(2^32) = 32 bits (Section 6).

    >>> termination_leakage_bits()
    62.0
    >>> termination_leakage_bits(discretize_to_cycles=2**30)
    32.0
    """
    check_positive(tmax_cycles, "tmax_cycles")
    check_positive(discretize_to_cycles, "discretize_to_cycles")
    if discretize_to_cycles > tmax_cycles:
        raise ValueError("discretization granularity exceeds Tmax")
    return math.log2(tmax_cycles / discretize_to_cycles)


def total_leakage_bits(
    schedule: EpochSchedule,
    n_rates: int,
    discretize_to_cycles: int = 1,
) -> float:
    """Upper bound on total leakage: ORAM timing + early termination.

    Section 6.1: the trace count is bounded by (number of epoch schedules)
    x (number of termination times), so the bits add:
    ``|E|*lg|R| + lg Tmax``.

    >>> from repro.core.epochs import paper_schedule
    >>> total_leakage_bits(paper_schedule(growth=4), 4)   # 32 + 62, Section 9.3
    94.0
    """
    return dynamic_timing_leakage_bits(schedule.max_epochs, n_rates) + (
        termination_leakage_bits(schedule.tmax_cycles, discretize_to_cycles)
    )


def static_timing_leakage_bits() -> float:
    """A single offline-chosen periodic rate yields one trace: 0 bits."""
    return 0.0


# ----------------------------------------------------------------------
# No-protection trace counting (footnote 4)
# ----------------------------------------------------------------------

def unprotected_trace_count(total_time: int, oram_latency: int) -> int:
    """Exact count of ORAM timing traces with no protection.

    For every termination time ``t <= total_time`` and every access count
    ``i``, each trace is a t-slot string of i accesses where consecutive
    accesses are separated by at least ``oram_latency`` slots (an access
    occupies the ORAM for OLAT cycles).  Footnote 4 gives the count
    ``sum_t sum_i C(t - i*(OLAT-1), i)``.

    Exact big-integer evaluation; use moderate ``total_time`` (<= ~20k) or
    the logarithmic bound below for paper-scale numbers.
    """
    check_positive(total_time, "total_time")
    check_positive(oram_latency, "oram_latency")
    total = 0
    for t in range(1, total_time + 1):
        max_accesses = t // oram_latency if oram_latency > 1 else t
        for i in range(1, max_accesses + 1):
            slots = t - i * (oram_latency - 1)
            if slots < i:
                break
            total += math.comb(slots, i)
    return total


def unprotected_leakage_bits(total_time: int, oram_latency: int) -> float:
    """lg of :func:`unprotected_trace_count` (exact, small scales)."""
    count = unprotected_trace_count(total_time, oram_latency)
    return math.log2(count) if count > 0 else 0.0


def unprotected_leakage_bits_estimate(total_time: float, oram_latency: int) -> float:
    """Scalable lower-bound estimate of unprotected leakage in bits.

    The dominant term is the number of access/no-access patterns of a
    ``total_time``-slot run where accesses occupy OLAT slots: at least
    ``binary-entropy packing`` of one access per OLAT slots, i.e. about
    ``total_time / OLAT`` free binary choices.  This is the "astronomical"
    comparison point of Example 6.1: ~10^9 bits for a 1-second run.
    """
    check_positive(oram_latency, "oram_latency")
    if total_time <= 0:
        return 0.0
    return total_time / oram_latency


# ----------------------------------------------------------------------
# Composition across channels (Section 10)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ChannelTraceCount:
    """One leakage channel described by how many traces it can generate.

    ``lg_trace_count`` is stored (rather than the raw count) so channels
    with astronomically many traces compose without big-int blowups.
    """

    name: str
    lg_trace_count: float

    def __post_init__(self) -> None:
        if self.lg_trace_count < 0:
            raise ValueError(f"lg_trace_count must be >= 0, got {self.lg_trace_count}")

    @property
    def leakage_bits(self) -> float:
        """Worst-case bits this channel leaks in isolation."""
        return self.lg_trace_count

    @classmethod
    def from_count(cls, name: str, trace_count: int) -> "ChannelTraceCount":
        """Build from an exact trace count."""
        check_positive(trace_count, "trace_count")
        # math.log2 on huge ints is exact enough via int.bit_length refinement.
        return cls(name=name, lg_trace_count=_lg_bigint(trace_count))


def compose_channels(channels: list[ChannelTraceCount]) -> float:
    """Total leakage of independent channels: additive in bits.

    Section 10: N channels generating |T_i| traces each yield
    ``prod |T_i|`` combinations, i.e. ``sum lg |T_i|`` bits.

    >>> compose_channels([ChannelTraceCount("oram-timing", 32.0),
    ...                   ChannelTraceCount("termination", 62.0)])
    94.0
    """
    if not channels:
        return 0.0
    return sum(channel.lg_trace_count for channel in channels)


def _lg_bigint(value: int) -> float:
    """lg of a (possibly huge) positive integer with float care."""
    if value <= 0:
        raise ValueError(f"value must be positive, got {value}")
    if value.bit_length() <= 52:
        return math.log2(value)
    shift = value.bit_length() - 52
    return math.log2(value >> shift) + shift


# ----------------------------------------------------------------------
# Probabilistic leakage subtlety (Section 10)
# ----------------------------------------------------------------------

def probabilistic_overleak(l_bits: float, l_prime_bits: int) -> float:
    """Probability an encoding program leaks L' > L bits all-or-nothing.

    Section 10's example: with ``2^L`` traces available, a program can
    signal "the user's first L' bits match a fixed assignment" through one
    trace; for uniformly distributed user data the adversary then learns
    all L' bits with probability ``(2^L - 1) / 2^L'``.
    """
    if l_bits < 0:
        raise ValueError(f"l_bits must be >= 0, got {l_bits}")
    check_positive(l_prime_bits, "l_prime_bits")
    if l_prime_bits <= l_bits:
        raise ValueError("L' must exceed L for the subtlety to matter")
    return (2.0**l_bits - 1.0) / (2.0**l_prime_bits)


# ----------------------------------------------------------------------
# Replay accounting (Section 4.3 / 8)
# ----------------------------------------------------------------------

def replayed_leakage_bits(per_run_bits: float, n_runs: int) -> float:
    """Leakage after N replays without run-once protection: ``N * L``.

    Each replay with fresh parameters multiplies the joint trace count, so
    bits add per run — the attack Section 8's forgotten-session-key scheme
    forecloses.
    """
    if per_run_bits < 0:
        raise ValueError(f"per_run_bits must be >= 0, got {per_run_bits}")
    check_positive(n_runs, "n_runs")
    return per_run_bits * n_runs


# ----------------------------------------------------------------------
# Paper-configuration summaries
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class LeakageReport:
    """Leakage decomposition for one scheme configuration."""

    scheme: str
    oram_timing_bits: float
    termination_bits: float

    @property
    def total_bits(self) -> float:
        """Sum across channels."""
        return self.oram_timing_bits + self.termination_bits


def report_for_dynamic(
    schedule: EpochSchedule, n_rates: int, discretize_to_cycles: int = 1
) -> LeakageReport:
    """Leakage report for a dynamic configuration (e.g. R4/E4 -> 32+62)."""
    return LeakageReport(
        scheme=f"dynamic_R{n_rates}_E{schedule.growth}",
        oram_timing_bits=dynamic_timing_leakage_bits(schedule.max_epochs, n_rates),
        termination_bits=termination_leakage_bits(
            schedule.tmax_cycles, discretize_to_cycles
        ),
    )


def report_for_static(tmax_cycles: int = PAPER_TMAX) -> LeakageReport:
    """Leakage report for any static-rate scheme (0 + 62 bits)."""
    return LeakageReport(
        scheme="static",
        oram_timing_bits=static_timing_leakage_bits(),
        termination_bits=termination_leakage_bits(tmax_cycles),
    )
