"""Timing-protected ORAM controller: periodic slots, dummies, epochs.

This is the hardware the paper adds in front of the ORAM (Figure 3).  With
rate ``r``, the next ORAM access *starts* exactly ``r`` cycles after the
previous access completes — always.  If a real request is pending at the
slot, it is served; otherwise an indistinguishable dummy access is made.
An adversary therefore observes only the slot cadence, which changes at
most once per epoch among |R| candidates.

Waste accounting follows Figure 4 exactly:

* **Req 1 (overset)**: a request arriving while the controller idles
  between slots waits for the next slot; waste += (slot start - arrival),
  at most ``r``.
* **Req 2 (underset)**: a request arriving during a dummy access rides the
  dummy out and then waits the slot gap; waste += (dummy remaining + r).
* **Req 3 (multiple outstanding)**: a request queued behind *real* work
  would have waited for the ORAM even without timing protection, so only
  the slot gap is charged: waste += r.

Epoch transitions happen at fixed absolute cycle counts from the
:class:`~repro.core.epochs.EpochSchedule`.  At each transition the learner
converts the epoch's counters into the next rate and the counters reset.
A rate change takes effect at the first slot scheduled after the boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.counters import PerfCounters
from repro.core.epochs import EpochSchedule
from repro.core.learner import AveragingLearner, RateDecision


@dataclass(frozen=True)
class EpochRecord:
    """One epoch as actually executed: index, start time, rate used."""

    index: int
    start_cycle: float
    rate: int
    raw_estimate: float | None = None


@dataclass
class ControllerStats:
    """Access counts accumulated over a full run."""

    real_accesses: int = 0
    dummy_accesses: int = 0
    total_waste: float = 0.0

    @property
    def total_accesses(self) -> int:
        """Real + dummy ORAM accesses (each costs full energy/bandwidth)."""
        return self.real_accesses + self.dummy_accesses

    @property
    def dummy_fraction(self) -> float:
        """Fraction of accesses that were dummies (paper footnote 5: ~34%)."""
        if self.total_accesses == 0:
            return 0.0
        return self.dummy_accesses / self.total_accesses


class TimingProtectedController:
    """Slot-enforcing ORAM controller with optional epoch-based learning.

    Args:
        oram_latency: Cycles per ORAM access (paper: 1488).
        initial_rate: Rate for the first epoch (paper: 10000 cycles).
        schedule: Epoch schedule; ``None`` means a static scheme that never
            changes rate (the Ascend-style baseline).
        learner: Rate learner consulted at each transition; required when
            ``schedule`` is given.
    """

    def __init__(
        self,
        oram_latency: int,
        initial_rate: int,
        schedule: EpochSchedule | None = None,
        learner: AveragingLearner | None = None,
    ) -> None:
        if oram_latency <= 0:
            raise ValueError(f"oram_latency must be positive, got {oram_latency}")
        if initial_rate <= 0:
            raise ValueError(f"initial_rate must be positive, got {initial_rate}")
        if schedule is not None and learner is None:
            raise ValueError("a schedule requires a learner")
        self.latency = oram_latency
        self.rate = initial_rate
        self.schedule = schedule
        self.learner = learner
        self.counters = PerfCounters()
        self.stats = ControllerStats()
        #: When record_trace is True, the start time of every access (real
        #: or dummy) is appended here — the adversary's observable trace.
        self.record_trace = False
        self.trace: list[float] = []
        self.epochs: list[EpochRecord] = [
            EpochRecord(index=0, start_cycle=0.0, rate=initial_rate)
        ]
        self._completion_prev = 0.0
        self._last_was_real = False
        self._epoch_index = 0
        self._epoch_start = 0.0
        if schedule is not None:
            self._epoch_end: float | None = float(schedule.epoch_length(0))
        else:
            self._epoch_end = None

    # ------------------------------------------------------------------
    # Simulator-facing API
    # ------------------------------------------------------------------

    def serve(self, arrival: float) -> float:
        """Serve one real request arriving at ``arrival``; return completion.

        Requests must be submitted in non-decreasing arrival order (the
        in-order core guarantees this).  Advances the dummy/epoch timeline
        as a side effect.
        """
        self._advance(arrival)
        self._maybe_transition()
        slot = self._completion_prev + self.rate
        if arrival <= self._completion_prev:
            if self._last_was_real:
                waste = float(self.rate)  # Req 3
            else:
                waste = slot - arrival  # Req 2: dummy remainder + gap
        else:
            waste = slot - arrival  # Req 1: idle wait, <= rate
        self.counters.record_waste(waste)
        self.stats.total_waste += waste
        completion = slot + self.latency
        self.counters.record_real_access(self.latency)
        self.stats.real_accesses += 1
        if self.record_trace:
            self.trace.append(slot)
        self._completion_prev = completion
        self._last_was_real = True
        return completion

    def finalize(self, end_time: float) -> None:
        """Account trailing dummy accesses up to program termination."""
        self._advance(end_time)

    @property
    def rate_history(self) -> list[EpochRecord]:
        """Epochs as executed (index, start cycle, rate)."""
        return list(self.epochs)

    # ------------------------------------------------------------------
    # Internal timeline machinery
    # ------------------------------------------------------------------

    def _advance(self, until: float) -> None:
        """Fire every dummy slot that starts strictly before ``until``."""
        while True:
            self._maybe_transition()
            slot = self._completion_prev + self.rate
            if slot >= until:
                return
            if self.record_trace:
                self.trace.append(slot)
            self._completion_prev = slot + self.latency
            self.stats.dummy_accesses += 1
            self._last_was_real = False

    def _maybe_transition(self) -> None:
        """Process epoch boundaries crossed by the last completion."""
        if self._epoch_end is None:
            return
        while self._completion_prev >= self._epoch_end:
            epoch_cycles = float(self.schedule.epoch_length(self._epoch_index))
            decision: RateDecision = self.learner.decide(self.counters, epoch_cycles)
            self.counters.reset()
            self._epoch_index += 1
            self._epoch_start = self._epoch_end
            self.rate = decision.chosen_rate
            self.epochs.append(
                EpochRecord(
                    index=self._epoch_index,
                    start_cycle=self._epoch_start,
                    rate=decision.chosen_rate,
                    raw_estimate=decision.raw_estimate,
                )
            )
            self._epoch_end += float(self.schedule.epoch_length(self._epoch_index))


class UnprotectedController:
    """``base_oram``: serve requests back-to-back, no slots, no dummies.

    Insecure over the timing channel but the performance/power oracle the
    paper normalizes against.
    """

    def __init__(self, oram_latency: int) -> None:
        if oram_latency <= 0:
            raise ValueError(f"oram_latency must be positive, got {oram_latency}")
        self.latency = oram_latency
        self.stats = ControllerStats()
        self.record_trace = False
        self.trace: list[float] = []
        self._completion_prev = 0.0

    def serve(self, arrival: float) -> float:
        """Serve as soon as the (single-ported) ORAM is free."""
        start = max(arrival, self._completion_prev)
        completion = start + self.latency
        if self.record_trace:
            self.trace.append(start)
        self._completion_prev = completion
        self.stats.real_accesses += 1
        return completion

    def finalize(self, end_time: float) -> None:
        """Nothing to do: no dummy timeline."""

    @property
    def rate_history(self) -> list[EpochRecord]:
        """No epochs for the unprotected baseline."""
        return []


class FlatDramController:
    """``base_dram``: fixed-latency insecure DRAM (Section 9.1.2: 40 cycles)."""

    def __init__(self, latency: int = 40) -> None:
        if latency <= 0:
            raise ValueError(f"latency must be positive, got {latency}")
        self.latency = latency
        self.stats = ControllerStats()
        self.record_trace = False
        self.trace: list[float] = []

    def serve(self, arrival: float) -> float:
        """Flat latency; bandwidth unconstrained at in-order request rates."""
        self.stats.real_accesses += 1
        if self.record_trace:
            self.trace.append(arrival)
        return arrival + self.latency

    def finalize(self, end_time: float) -> None:
        """Nothing to finalize."""

    @property
    def rate_history(self) -> list[EpochRecord]:
        """No epochs for DRAM."""
        return []
