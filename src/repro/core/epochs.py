"""Epoch schedules (the paper's E) and their leakage arithmetic.

Program runtime is split into epochs; the ORAM rate may change only at
epoch transitions, so the number of distinct timing traces — and hence the
leakage bound — is controlled by how many epochs fit in the maximum
runtime Tmax (Section 6).  The paper's family: each epoch is ``growth``
times the previous (growth = 2 is "epoch doubling", inspired by slow
doubling in Askarov et al.), with the first epoch long enough for the
learner to observe and short enough not to dominate runtime (2^30 cycles
at paper scale).

Epoch-count arithmetic matches the paper's:
``|E| = (lg Tmax - lg first) / lg growth`` — 32 epochs for doubling from
2^30 to Tmax = 2^62, 16 for growth 4 (Example 6.1, Section 9.3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import count

from repro.util.bitops import ceil_lg, is_power_of_two
from repro.util.validation import check_positive

#: The paper's maximum runtime: 2^62 cycles (~150 years at 1 GHz).
PAPER_TMAX_LG = 62
PAPER_TMAX = 1 << PAPER_TMAX_LG

#: Paper-scale first epoch: 2^30 cycles (~1 second at 1 GHz).
PAPER_FIRST_EPOCH_LG = 30

#: Simulation-scale first epoch: 2^15 cycles, preserving the *number* of
#: epochs a scaled run expends (see DESIGN.md scaling notes).
SIM_FIRST_EPOCH_LG = 15


@dataclass(frozen=True)
class EpochSchedule:
    """Geometric epoch schedule: lengths ``first, first*g, first*g^2, ...``.

    Attributes:
        first_epoch_cycles: Length of epoch 0 (power of two).
        growth: Multiplicative factor between consecutive epochs (the
            paper's E2/E4/E8/E16 configurations use 2/4/8/16).
        tmax_cycles: Maximum program runtime, for leakage accounting only.
    """

    first_epoch_cycles: int = 1 << PAPER_FIRST_EPOCH_LG
    growth: int = 2
    tmax_cycles: int = PAPER_TMAX

    def __post_init__(self) -> None:
        check_positive(self.first_epoch_cycles, "first_epoch_cycles")
        if self.growth < 2:
            raise ValueError(f"growth must be >= 2, got {self.growth}")
        if self.tmax_cycles < self.first_epoch_cycles:
            raise ValueError("tmax_cycles must be >= first_epoch_cycles")

    @property
    def max_epochs(self) -> int:
        """Epochs expended by a program running to Tmax (Section 6).

        The paper's accounting: ``(lg Tmax - lg first) / lg growth``,
        rounded up — 32 for (2^30, x2, 2^62), 16 for (2^30, x4, 2^62).

        >>> paper_schedule(growth=2).max_epochs
        32
        >>> paper_schedule(growth=4).max_epochs
        16
        """
        lg_span = math.log2(self.tmax_cycles) - math.log2(self.first_epoch_cycles)
        lg_growth = math.log2(self.growth)
        return max(1, math.ceil(lg_span / lg_growth - 1e-9))

    def epoch_length(self, index: int) -> int:
        """Cycle length of epoch ``index`` (0-based)."""
        if index < 0:
            raise ValueError(f"epoch index must be >= 0, got {index}")
        return self.first_epoch_cycles * self.growth**index

    def boundaries(self, horizon_cycles: int | None = None):
        """Yield cumulative epoch-end times up to ``horizon_cycles``.

        Without a horizon, yields ``max_epochs`` boundaries.
        """
        cumulative = 0
        for index in count():
            if horizon_cycles is None and index >= self.max_epochs:
                return
            cumulative += self.epoch_length(index)
            if horizon_cycles is not None and cumulative - self.epoch_length(index) >= horizon_cycles:
                return
            yield cumulative

    def epochs_until(self, runtime_cycles: int) -> int:
        """Number of epochs a run of ``runtime_cycles`` enters."""
        check_positive(runtime_cycles, "runtime_cycles")
        cumulative = 0
        for index in count():
            cumulative += self.epoch_length(index)
            if runtime_cycles <= cumulative:
                return index + 1
        raise AssertionError("unreachable")

    def describe(self) -> str:
        """One-line summary, e.g. ``E4: first=2^30, <=16 epochs to Tmax``."""
        first_lg = ceil_lg(self.first_epoch_cycles)
        return (
            f"E{self.growth}: first=2^{first_lg} cycles, "
            f"<= {self.max_epochs} epochs to Tmax=2^"
            f"{ceil_lg(self.tmax_cycles)}"
        )


def paper_schedule(growth: int = 4) -> EpochSchedule:
    """Paper-scale schedule: first epoch 2^30 cycles, Tmax 2^62."""
    return EpochSchedule(
        first_epoch_cycles=1 << PAPER_FIRST_EPOCH_LG,
        growth=growth,
        tmax_cycles=PAPER_TMAX,
    )


def sim_schedule(growth: int = 4, first_epoch_lg: int = SIM_FIRST_EPOCH_LG) -> EpochSchedule:
    """Simulation-scale schedule preserving per-run epoch counts.

    The paper's 200-250 billion-instruction runs expend 9-11 epochs under
    doubling from 2^30; scaled runs of a few million instructions expend a
    comparable count when the first epoch is 2^15 cycles.  Tmax shrinks by
    the same factor, so ``max_epochs`` — and therefore the ORAM-timing
    leakage bound ``|E| * lg |R|`` — is identical to the paper-scale
    schedule's (32 bits for R4/E4, etc.).

    >>> sim_schedule(growth=4).max_epochs == paper_schedule(growth=4).max_epochs
    True
    >>> sim_schedule(growth=2).first_epoch_cycles
    32768
    """
    tmax_lg = PAPER_TMAX_LG - PAPER_FIRST_EPOCH_LG + first_epoch_lg
    return EpochSchedule(
        first_epoch_cycles=1 << first_epoch_lg,
        growth=growth,
        tmax_cycles=1 << tmax_lg,
    )
