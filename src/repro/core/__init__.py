"""The paper's contribution: leakage-bounded dynamic ORAM rate control.

Submodules: candidate rate sets (R), epoch schedules (E), ORAM-queue
performance counters, rate learners, the slot-enforcing controller, and
the bit-leakage accounting that ties |R| and |E| to a provable bound.
"""

from repro.core.controller import (
    ControllerStats,
    EpochRecord,
    FlatDramController,
    TimingProtectedController,
    UnprotectedController,
)
from repro.core.counters import PerfCounters
from repro.core.epochs import (
    EpochSchedule,
    PAPER_FIRST_EPOCH_LG,
    PAPER_TMAX,
    PAPER_TMAX_LG,
    SIM_FIRST_EPOCH_LG,
    paper_schedule,
    sim_schedule,
)
from repro.core.leakage import (
    ChannelTraceCount,
    LeakageReport,
    compose_channels,
    dynamic_timing_leakage_bits,
    probabilistic_overleak,
    replayed_leakage_bits,
    report_for_dynamic,
    report_for_static,
    static_timing_leakage_bits,
    termination_leakage_bits,
    total_leakage_bits,
    unprotected_leakage_bits,
    unprotected_leakage_bits_estimate,
    unprotected_trace_count,
)
from repro.core.learner import AveragingLearner, RateDecision, ThresholdLearner
from repro.core.monitor import (
    LeakageBudgetExceededError,
    LeakageMonitor,
    MonitoredLearner,
)
from repro.core.rates import INITIAL_RATE, PAPER_RATES, RateSet, lg_spaced_rates
from repro.core.scheme import (
    DEFAULT_DYNAMIC_GRID,
    SCHEME_SPEC_FORMS,
    BaseDramScheme,
    BaseOramScheme,
    DynamicScheme,
    ObliviousDramScheme,
    SchemeGrid,
    StaticScheme,
    dynamic,
    expand_scheme_grid,
    is_grid_spec,
    paper_baselines,
    parse_scheme_grid,
    scheme_from_spec,
)

__all__ = [
    "ControllerStats",
    "EpochRecord",
    "FlatDramController",
    "TimingProtectedController",
    "UnprotectedController",
    "PerfCounters",
    "EpochSchedule",
    "PAPER_FIRST_EPOCH_LG",
    "PAPER_TMAX",
    "PAPER_TMAX_LG",
    "SIM_FIRST_EPOCH_LG",
    "paper_schedule",
    "sim_schedule",
    "ChannelTraceCount",
    "LeakageReport",
    "compose_channels",
    "dynamic_timing_leakage_bits",
    "probabilistic_overleak",
    "replayed_leakage_bits",
    "report_for_dynamic",
    "report_for_static",
    "static_timing_leakage_bits",
    "termination_leakage_bits",
    "total_leakage_bits",
    "unprotected_leakage_bits",
    "unprotected_leakage_bits_estimate",
    "unprotected_trace_count",
    "AveragingLearner",
    "RateDecision",
    "ThresholdLearner",
    "INITIAL_RATE",
    "PAPER_RATES",
    "RateSet",
    "lg_spaced_rates",
    "LeakageBudgetExceededError",
    "LeakageMonitor",
    "MonitoredLearner",
    "BaseDramScheme",
    "BaseOramScheme",
    "DEFAULT_DYNAMIC_GRID",
    "DynamicScheme",
    "ObliviousDramScheme",
    "SchemeGrid",
    "StaticScheme",
    "SCHEME_SPEC_FORMS",
    "dynamic",
    "expand_scheme_grid",
    "is_grid_spec",
    "paper_baselines",
    "parse_scheme_grid",
    "scheme_from_spec",
]
