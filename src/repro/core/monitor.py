"""Online leakage monitoring and enforcement (Section 2.1).

The paper notes two ways to use the trace-counting leakage measure: the
one the evaluation focuses on (engineer the schedule so leakage
*approaches* L asymptotically) and a guard mechanism — "track the number
of traces using hardware mechanisms, and (for example) shut down the chip
if leakage exceeds L before the program terminates."  This module
implements that guard.

``LeakageMonitor`` tracks the realized upper bound on lg(trace count) as
the run unfolds: each epoch transition multiplies the possible-trace count
by |R| (lg-add of lg|R|), and termination contributes the configured
termination-channel bits.  ``authorize_epoch`` must be consulted *before*
entering a new epoch; if doing so would push the bound past L the monitor
trips and the processor must halt (or refuse the transition and pin the
current rate, the conservative alternative also provided).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.util.validation import check_positive


class LeakageBudgetExceededError(RuntimeError):
    """The chip tripped its leakage guard (Section 2.1 shutdown)."""


@dataclass
class LeakageMonitor:
    """Hardware-style accumulator of the realized leakage bound.

    Args:
        limit_bits: The user's L.
        n_rates: |R| — each authorized epoch adds lg|R| bits.
        termination_bits: Bits reserved for the early-termination channel
            (lg Tmax, or less if termination is discretized); charged up
            front because any run may terminate at any time.
        strict: If True, :meth:`authorize_epoch` raises on overrun
            (shutdown semantics).  If False it returns False and the
            caller must pin the current rate (refuse-transition
            semantics), which keeps the program running with no further
            timing leakage.
    """

    limit_bits: float
    n_rates: int
    termination_bits: float = 0.0
    strict: bool = True

    def __post_init__(self) -> None:
        if self.limit_bits < 0:
            raise ValueError(f"limit_bits must be >= 0, got {self.limit_bits}")
        check_positive(self.n_rates, "n_rates")
        if self.termination_bits < 0:
            raise ValueError(
                f"termination_bits must be >= 0, got {self.termination_bits}"
            )
        if self.termination_bits > self.limit_bits:
            raise LeakageBudgetExceededError(
                "termination channel alone exceeds the leakage limit"
            )
        self._epochs_authorized = 0

    @property
    def bits_per_epoch(self) -> float:
        """lg |R| — the cost of one more rate decision."""
        return math.log2(self.n_rates)

    @property
    def consumed_bits(self) -> float:
        """Realized bound so far (termination + authorized epochs)."""
        return self.termination_bits + self._epochs_authorized * self.bits_per_epoch

    @property
    def remaining_bits(self) -> float:
        """Budget headroom."""
        return self.limit_bits - self.consumed_bits

    @property
    def epochs_authorized(self) -> int:
        """Rate decisions granted so far."""
        return self._epochs_authorized

    def max_epochs(self) -> int:
        """How many epoch transitions the budget admits in total."""
        if self.bits_per_epoch == 0:
            return 2**63  # |R| = 1 never leaks
        return int((self.limit_bits - self.termination_bits) / self.bits_per_epoch)

    def authorize_epoch(self) -> bool:
        """Request one more rate decision; charge lg|R| bits if granted.

        Returns True when granted.  When the budget is exhausted: raises
        :class:`LeakageBudgetExceededError` in strict mode, else returns
        False (the controller must keep its current rate forever after).
        """
        if self.consumed_bits + self.bits_per_epoch > self.limit_bits + 1e-9:
            if self.strict:
                raise LeakageBudgetExceededError(
                    f"authorizing another epoch would consume "
                    f"{self.consumed_bits + self.bits_per_epoch:.1f} bits, "
                    f"limit is {self.limit_bits:.1f}"
                )
            return False
        self._epochs_authorized += 1
        return True


class MonitoredLearner:
    """Wraps a rate learner with a :class:`LeakageMonitor`.

    Drop-in for the controller's ``learner``: every epoch decision first
    asks the monitor for budget.  When the budget runs out in non-strict
    mode, the wrapper pins the rate *currently in effect* (the last
    authorized choice, or the initial rate if none was ever authorized) —
    repeating a rate is free, only changing it leaks.
    """

    def __init__(self, learner, monitor: LeakageMonitor, initial_rate: int) -> None:
        if initial_rate <= 0:
            raise ValueError(f"initial_rate must be positive, got {initial_rate}")
        self.learner = learner
        self.monitor = monitor
        self._current_rate = initial_rate
        self._pinned = False

    @property
    def pinned(self) -> bool:
        """True once the budget ran out and the rate froze."""
        return self._pinned

    def decide(self, counters, epoch_cycles: float):
        """Delegate to the wrapped learner unless the budget pinned the rate."""
        from repro.core.learner import RateDecision

        if self._pinned:
            return RateDecision(raw_estimate=float("nan"),
                                chosen_rate=self._current_rate)
        decision = self.learner.decide(counters, epoch_cycles)
        # Every decision point is charged lg|R|, even when the chosen rate
        # happens to equal the current one: the |R|^|E| trace-count bound
        # counts schedules, and "unchanged" is itself one of the |R|
        # options the trace reveals.  (Charging only on change would admit
        # sum_j C(E,j)(|R|-1)^j traces, which can exceed the budget.)
        if self.monitor.authorize_epoch():
            self._current_rate = decision.chosen_rate
            return decision
        self._pinned = True
        return RateDecision(raw_estimate=decision.raw_estimate,
                            chosen_rate=self._current_rate)
