"""Rate learners: predict the next epoch's ORAM rate (Section 7).

The baseline predictor is Equation 1's averaging statistic

    NewIntRaw = (EpochCycles - Waste - ORAMCycles) / AccessCount

i.e. the average idle gap the program *offered* between ORAM requests,
with rate-attributable waste removed.  The hardware implementation
(Algorithm 1) avoids a divider: AccessCount is rounded up to the next
power of two (strictly — even when already a power of two) and the
division becomes a shift loop.  The rounding biases the rate underset by
at most 2x, which compensates for bursty workloads (Section 7.3).

``ThresholdLearner`` reconstructs the "more sophisticated predictor" the
paper describes and then omits for space (Section 7.3): it estimates the
performance overhead each candidate rate would have produced this epoch
and picks the slowest rate whose overhead stays within a sharpness
threshold of the best — trading power against performance explicitly.

Crucially for security, *which* learner runs and *which* rate it picks
never affects the leakage bound: leakage depends only on |R| and |E|
(Section 2.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.counters import PerfCounters
from repro.core.rates import RateSet
from repro.util.bitops import strict_next_power_of_two


@dataclass(frozen=True)
class RateDecision:
    """A learner's output at one epoch transition."""

    raw_estimate: float
    chosen_rate: int


class AveragingLearner:
    """Equation 1 + Algorithm 1: the paper's deployed predictor.

    Args:
        rates: Candidate rate set R.
        exact_divide: Use exact division instead of the shift-based
            hardware divider (ablation knob; the paper ships the shifter).
        log_discretize: Discretize in log space instead of the paper's
            linear nearest-candidate rule (ablation knob).
    """

    def __init__(
        self,
        rates: RateSet,
        exact_divide: bool = False,
        log_discretize: bool = False,
    ) -> None:
        self.rates = rates
        self.exact_divide = exact_divide
        self.log_discretize = log_discretize

    def decide(self, counters: PerfCounters, epoch_cycles: float) -> RateDecision:
        """Pick the next epoch's rate from this epoch's counters.

        With zero real accesses the offered load is unobservable; the
        learner chooses the slowest candidate (the program clearly is not
        using ORAM), which also minimizes dummy-access energy.
        """
        if epoch_cycles <= 0:
            raise ValueError(f"epoch_cycles must be positive, got {epoch_cycles}")
        if counters.access_count == 0:
            return RateDecision(raw_estimate=float("inf"), chosen_rate=self.rates.slowest)
        numerator = max(0.0, epoch_cycles - counters.waste - counters.oram_cycles)
        if self.exact_divide:
            raw = numerator / counters.access_count
        else:
            raw = self._shift_divide(int(numerator), counters.access_count)
        if self.log_discretize:
            chosen = self.rates.nearest_log(raw)
        else:
            chosen = self.rates.nearest(raw)
        return RateDecision(raw_estimate=raw, chosen_rate=chosen)

    @staticmethod
    def _shift_divide(numerator: int, access_count: int) -> float:
        """Algorithm 1: divide by AccessCount rounded up to a power of two.

        Implemented exactly as the hardware would: right-shift the
        numerator once per halving of the rounded count.  Worst case takes
        bit-width-of-AccessCount iterations, which the controller hides by
        starting before the epoch boundary (Section 7.2).  The strict
        rounding (even exact powers of two round up) biases the rate
        underset by at most 2x:

        >>> AveragingLearner._shift_divide(4096, 3)   # /4, not /3
        1024.0
        >>> AveragingLearner._shift_divide(4096, 4)   # /8, not /4 (strict)
        512.0
        """
        if numerator < 0:
            raise ValueError(f"numerator must be >= 0, got {numerator}")
        if access_count <= 0:
            raise ValueError(f"access_count must be positive, got {access_count}")
        rounded = strict_next_power_of_two(access_count)
        result = numerator
        while rounded > 1:
            result >>= 1
            rounded >>= 1
        return float(result)


class ThresholdLearner:
    """Reconstruction of the Section 7.3 'sophisticated' predictor.

    For each candidate rate ``r`` the learner projects the per-access
    stall a program with this epoch's offered load would suffer:
    requests arrive on average every ``gap`` idle cycles, and a slot
    machine at rate ``r`` makes them wait roughly ``(r - gap) / 2``
    when overset plus the residual dummy ride-out when underset.  The
    projected performance overhead of ``r`` is stall time relative to the
    no-protection service time.  The learner then picks the *slowest*
    rate whose projected overhead is within ``sharpness`` of the best
    candidate's — "if the performance loss of a slower rate is small, we
    should choose the slower rate to save power".
    """

    def __init__(
        self,
        rates: RateSet,
        oram_latency_cycles: int,
        sharpness: float = 0.30,
    ) -> None:
        if oram_latency_cycles <= 0:
            raise ValueError(
                f"oram_latency_cycles must be positive, got {oram_latency_cycles}"
            )
        if sharpness < 0:
            raise ValueError(f"sharpness must be >= 0, got {sharpness}")
        self.rates = rates
        self.latency = oram_latency_cycles
        self.sharpness = sharpness

    def decide(self, counters: PerfCounters, epoch_cycles: float) -> RateDecision:
        """Pick the slowest rate within ``sharpness`` of the best overhead."""
        if epoch_cycles <= 0:
            raise ValueError(f"epoch_cycles must be positive, got {epoch_cycles}")
        if counters.access_count == 0:
            return RateDecision(raw_estimate=float("inf"), chosen_rate=self.rates.slowest)
        gap = max(
            0.0, epoch_cycles - counters.waste - counters.oram_cycles
        ) / counters.access_count
        overheads = {rate: self._projected_overhead(gap, rate) for rate in self.rates}
        best = min(overheads.values())
        chosen = self.rates.fastest
        for rate in self.rates:  # ascending: the last qualifying rate wins
            if overheads[rate] <= best + self.sharpness:
                chosen = rate
        return RateDecision(raw_estimate=gap, chosen_rate=chosen)

    def _projected_overhead(self, gap: float, rate: int) -> float:
        """Projected fractional slowdown of running at ``rate``."""
        ideal = gap + self.latency
        if rate >= gap:
            # Overset: expected wait for the next slot.
            stall = (rate - gap) / 2.0 + self.latency * (gap / max(rate, 1.0)) * 0.5
        else:
            # Underset: requests often land during a dummy access.
            dummy_fraction = 1.0 - rate / max(gap, 1.0)
            stall = dummy_fraction * self.latency / 2.0 + rate / 2.0
        return stall / ideal


# ----------------------------------------------------------------------
# Config-batched decisions (the batched timing kernel's transition path)
# ----------------------------------------------------------------------
#
# ``decide_batch`` evaluates one epoch transition for a *batch* of
# configurations at once — the per-config update the batched replay
# kernel (:func:`repro.sim.timing.run_timing_batch`) applies whenever a
# subset of its configs crosses an epoch boundary in the same advance.
# The contract is bit-identity with the scalar ``decide`` per config:
#
# * every counter/estimate operation is pure integer or IEEE-754 float
#   arithmetic applied elementwise, which numpy evaluates with the same
#   operations in the same order as the scalar code;
# * the averaging learner's shift divider is exact integer arithmetic
#   (``AccessCount.bit_length()`` right-shifts);
# * log-space discretization is the one transcendental step, so it runs
#   through the *same* ``math.log2``-based ``RateSet.nearest_log`` per
#   config (|R| <= 16 and transitions are rare, so this costs nothing
#   measurable) rather than risking ULP divergence via ``np.log2``.


def _padded_rates(rate_sets: list[RateSet]) -> tuple[np.ndarray, np.ndarray]:
    """Stack rate sets into a (n, max|R|) float matrix padded with +inf."""
    width = max(len(rs) for rs in rate_sets)
    matrix = np.full((len(rate_sets), width), np.inf)
    valid = np.zeros((len(rate_sets), width), dtype=bool)
    for row, rs in enumerate(rate_sets):
        matrix[row, : len(rs)] = rs.rates
        valid[row, : len(rs)] = True
    return matrix, valid


def _averaging_batch(
    learners: list[AveragingLearner],
    access_counts: np.ndarray,
    wastes: np.ndarray,
    oram_cycles: np.ndarray,
    epoch_cycles: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized Equation 1 + Algorithm 1 for one learner group."""
    exact_divide = learners[0].exact_divide
    log_discretize = learners[0].log_discretize
    n = len(learners)
    raw = np.full(n, np.inf)
    chosen = np.array([lr.rates.slowest for lr in learners], dtype=np.int64)
    pos = access_counts > 0
    if pos.any():
        numerator = np.maximum(0.0, epoch_cycles - wastes - oram_cycles)
        if exact_divide:
            with np.errstate(divide="ignore", invalid="ignore"):
                raw_pos = numerator / access_counts
        else:
            # Algorithm 1: right-shift by AccessCount.bit_length() —
            # strict_next_power_of_two(ac) is 2**ac.bit_length(), and
            # np.frexp's exponent *is* the bit length for positive ints.
            shift = np.frexp(np.maximum(access_counts, 1))[1].astype(np.int64)
            raw_pos = (numerator.astype(np.int64) >> shift).astype(np.float64)
        raw = np.where(pos, raw_pos, raw)
        if log_discretize:
            for row in np.flatnonzero(pos):
                chosen[row] = learners[row].rates.nearest_log(float(raw[row]))
        else:
            matrix, valid = _padded_rates([lr.rates for lr in learners])
            distance = np.where(valid, np.abs(raw[:, None] - matrix), np.inf)
            # argmin takes the first minimum, matching the scalar scan's
            # strictly-closer update (ties break toward the faster rate).
            nearest = matrix[np.arange(n), np.argmin(distance, axis=1)]
            chosen = np.where(pos, nearest.astype(np.int64), chosen)
    return raw, chosen


def _threshold_batch(
    learners: list[ThresholdLearner],
    access_counts: np.ndarray,
    wastes: np.ndarray,
    oram_cycles: np.ndarray,
    epoch_cycles: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized Section 7.3 threshold predictor for one learner group.

    ``_projected_overhead`` is pure float arithmetic, so evaluating it
    elementwise over a (configs x rates) matrix reproduces the scalar
    floats exactly; padded lanes are masked to +inf before the min.
    """
    sharpness = learners[0].sharpness
    n = len(learners)
    raw = np.full(n, np.inf)
    chosen = np.array([lr.rates.slowest for lr in learners], dtype=np.int64)
    pos = access_counts > 0
    if not pos.any():
        return raw, chosen
    latency = np.array([float(lr.latency) for lr in learners])
    matrix, valid = _padded_rates([lr.rates for lr in learners])
    width = matrix.shape[1]
    with np.errstate(all="ignore"):
        gap = np.where(
            pos,
            np.maximum(0.0, epoch_cycles - wastes - oram_cycles)
            / np.maximum(access_counts, 1),
            0.0,
        )
        gap_col = gap[:, None]
        lat_col = latency[:, None]
        ideal = gap_col + lat_col
        stall_over = (matrix - gap_col) / 2.0 + lat_col * (
            gap_col / np.maximum(matrix, 1.0)
        ) * 0.5
        stall_under = (1.0 - matrix / np.maximum(gap_col, 1.0)) * lat_col / 2.0 + (
            matrix / 2.0
        )
        stall = np.where(matrix >= gap_col, stall_over, stall_under)
        overhead = np.where(valid, stall / ideal, np.inf)
    best = np.min(overhead, axis=1)
    qualifies = valid & (overhead <= (best + sharpness)[:, None])
    # The scalar scan keeps the *last* qualifying (slowest) candidate.
    last = width - 1 - np.argmax(qualifies[:, ::-1], axis=1)
    picked = matrix[np.arange(n), last].astype(np.int64)
    raw = np.where(pos, gap, raw)
    chosen = np.where(pos & qualifies.any(axis=1), picked, chosen)
    return raw, chosen


def _group_key(learner) -> tuple | None:
    """Batchable-group identity for a learner, or None for unknown types."""
    if type(learner) is AveragingLearner:
        return ("averaging", learner.exact_divide, learner.log_discretize)
    if type(learner) is ThresholdLearner:
        return ("threshold", learner.sharpness)
    return None


def decide_batch(
    learners: list,
    access_counts: np.ndarray,
    wastes: np.ndarray,
    oram_cycles: np.ndarray,
    epoch_cycles: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-config rate decisions for one batched epoch transition.

    Args:
        learners: One learner per transitioning config.
        access_counts: Epoch real-access counts (int).
        wastes: Epoch waste counters (float).
        oram_cycles: Epoch ORAM service cycles (float).
        epoch_cycles: Length of the epoch just ended (float).

    Returns:
        ``(raw_estimates, chosen_rates)`` arrays, elementwise identical
        to calling each learner's ``decide`` with the same counters.
        Unknown learner subclasses fall back to their scalar ``decide``.
    """
    if np.any(epoch_cycles <= 0):
        raise ValueError("epoch_cycles must be positive for every config")
    n = len(learners)
    raw = np.empty(n)
    chosen = np.empty(n, dtype=np.int64)
    groups: dict[tuple, list[int]] = {}
    scalar_rows: list[int] = []
    for row, learner in enumerate(learners):
        key = _group_key(learner)
        if key is None:
            scalar_rows.append(row)
        else:
            groups.setdefault(key, []).append(row)
    for key, rows in groups.items():
        idx = np.asarray(rows, dtype=np.int64)
        handler = _averaging_batch if key[0] == "averaging" else _threshold_batch
        raw_g, chosen_g = handler(
            [learners[row] for row in rows],
            access_counts[idx],
            wastes[idx],
            oram_cycles[idx],
            epoch_cycles[idx],
        )
        raw[idx] = raw_g
        chosen[idx] = chosen_g
    for row in scalar_rows:
        counters = PerfCounters(
            access_count=int(access_counts[row]),
            oram_cycles=float(oram_cycles[row]),
            waste=float(wastes[row]),
        )
        decision = learners[row].decide(counters, float(epoch_cycles[row]))
        raw[row] = decision.raw_estimate
        chosen[row] = decision.chosen_rate
    return raw, chosen
