"""Rate learners: predict the next epoch's ORAM rate (Section 7).

The baseline predictor is Equation 1's averaging statistic

    NewIntRaw = (EpochCycles - Waste - ORAMCycles) / AccessCount

i.e. the average idle gap the program *offered* between ORAM requests,
with rate-attributable waste removed.  The hardware implementation
(Algorithm 1) avoids a divider: AccessCount is rounded up to the next
power of two (strictly — even when already a power of two) and the
division becomes a shift loop.  The rounding biases the rate underset by
at most 2x, which compensates for bursty workloads (Section 7.3).

``ThresholdLearner`` reconstructs the "more sophisticated predictor" the
paper describes and then omits for space (Section 7.3): it estimates the
performance overhead each candidate rate would have produced this epoch
and picks the slowest rate whose overhead stays within a sharpness
threshold of the best — trading power against performance explicitly.

Crucially for security, *which* learner runs and *which* rate it picks
never affects the leakage bound: leakage depends only on |R| and |E|
(Section 2.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.counters import PerfCounters
from repro.core.rates import RateSet
from repro.util.bitops import strict_next_power_of_two


@dataclass(frozen=True)
class RateDecision:
    """A learner's output at one epoch transition."""

    raw_estimate: float
    chosen_rate: int


class AveragingLearner:
    """Equation 1 + Algorithm 1: the paper's deployed predictor.

    Args:
        rates: Candidate rate set R.
        exact_divide: Use exact division instead of the shift-based
            hardware divider (ablation knob; the paper ships the shifter).
        log_discretize: Discretize in log space instead of the paper's
            linear nearest-candidate rule (ablation knob).
    """

    def __init__(
        self,
        rates: RateSet,
        exact_divide: bool = False,
        log_discretize: bool = False,
    ) -> None:
        self.rates = rates
        self.exact_divide = exact_divide
        self.log_discretize = log_discretize

    def decide(self, counters: PerfCounters, epoch_cycles: float) -> RateDecision:
        """Pick the next epoch's rate from this epoch's counters.

        With zero real accesses the offered load is unobservable; the
        learner chooses the slowest candidate (the program clearly is not
        using ORAM), which also minimizes dummy-access energy.
        """
        if epoch_cycles <= 0:
            raise ValueError(f"epoch_cycles must be positive, got {epoch_cycles}")
        if counters.access_count == 0:
            return RateDecision(raw_estimate=float("inf"), chosen_rate=self.rates.slowest)
        numerator = max(0.0, epoch_cycles - counters.waste - counters.oram_cycles)
        if self.exact_divide:
            raw = numerator / counters.access_count
        else:
            raw = self._shift_divide(int(numerator), counters.access_count)
        if self.log_discretize:
            chosen = self.rates.nearest_log(raw)
        else:
            chosen = self.rates.nearest(raw)
        return RateDecision(raw_estimate=raw, chosen_rate=chosen)

    @staticmethod
    def _shift_divide(numerator: int, access_count: int) -> float:
        """Algorithm 1: divide by AccessCount rounded up to a power of two.

        Implemented exactly as the hardware would: right-shift the
        numerator once per halving of the rounded count.  Worst case takes
        bit-width-of-AccessCount iterations, which the controller hides by
        starting before the epoch boundary (Section 7.2).  The strict
        rounding (even exact powers of two round up) biases the rate
        underset by at most 2x:

        >>> AveragingLearner._shift_divide(4096, 3)   # /4, not /3
        1024.0
        >>> AveragingLearner._shift_divide(4096, 4)   # /8, not /4 (strict)
        512.0
        """
        if numerator < 0:
            raise ValueError(f"numerator must be >= 0, got {numerator}")
        if access_count <= 0:
            raise ValueError(f"access_count must be positive, got {access_count}")
        rounded = strict_next_power_of_two(access_count)
        result = numerator
        while rounded > 1:
            result >>= 1
            rounded >>= 1
        return float(result)


class ThresholdLearner:
    """Reconstruction of the Section 7.3 'sophisticated' predictor.

    For each candidate rate ``r`` the learner projects the per-access
    stall a program with this epoch's offered load would suffer:
    requests arrive on average every ``gap`` idle cycles, and a slot
    machine at rate ``r`` makes them wait roughly ``(r - gap) / 2``
    when overset plus the residual dummy ride-out when underset.  The
    projected performance overhead of ``r`` is stall time relative to the
    no-protection service time.  The learner then picks the *slowest*
    rate whose projected overhead is within ``sharpness`` of the best
    candidate's — "if the performance loss of a slower rate is small, we
    should choose the slower rate to save power".
    """

    def __init__(
        self,
        rates: RateSet,
        oram_latency_cycles: int,
        sharpness: float = 0.30,
    ) -> None:
        if oram_latency_cycles <= 0:
            raise ValueError(
                f"oram_latency_cycles must be positive, got {oram_latency_cycles}"
            )
        if sharpness < 0:
            raise ValueError(f"sharpness must be >= 0, got {sharpness}")
        self.rates = rates
        self.latency = oram_latency_cycles
        self.sharpness = sharpness

    def decide(self, counters: PerfCounters, epoch_cycles: float) -> RateDecision:
        """Pick the slowest rate within ``sharpness`` of the best overhead."""
        if epoch_cycles <= 0:
            raise ValueError(f"epoch_cycles must be positive, got {epoch_cycles}")
        if counters.access_count == 0:
            return RateDecision(raw_estimate=float("inf"), chosen_rate=self.rates.slowest)
        gap = max(
            0.0, epoch_cycles - counters.waste - counters.oram_cycles
        ) / counters.access_count
        overheads = {rate: self._projected_overhead(gap, rate) for rate in self.rates}
        best = min(overheads.values())
        chosen = self.rates.fastest
        for rate in self.rates:  # ascending: the last qualifying rate wins
            if overheads[rate] <= best + self.sharpness:
                chosen = rate
        return RateDecision(raw_estimate=gap, chosen_rate=chosen)

    def _projected_overhead(self, gap: float, rate: int) -> float:
        """Projected fractional slowdown of running at ``rate``."""
        ideal = gap + self.latency
        if rate >= gap:
            # Overset: expected wait for the next slot.
            stall = (rate - gap) / 2.0 + self.latency * (gap / max(rate, 1.0)) * 0.5
        else:
            # Underset: requests often land during a dummy access.
            dummy_fraction = 1.0 - rate / max(gap, 1.0)
            stall = dummy_fraction * self.latency / 2.0 + rate / 2.0
        return stall / ideal
