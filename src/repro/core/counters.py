"""Performance counters at the ORAM controller (Section 7.1.1).

Three counters, reset at every epoch transition, observe the LLC-to-ORAM
queue:

* ``access_count`` — real (non-dummy) ORAM requests this epoch.
* ``oram_cycles`` — cycles each real request was in service, summed
  (supports variable-latency ORAMs; with a fixed-latency ORAM it is
  ``access_count * latency``).
* ``waste`` — cycles lost to the *current rate*: waiting for the next
  slot when work is pending (overset, Req 1), riding out an in-flight
  dummy (underset, Req 2), and one rate-quantum per extra queued request
  (multiple outstanding, Req 3).

The learner's prediction (Equation 1) derives the offered load from these
three plus the epoch length.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class PerfCounters:
    """The three Section 7.1.1 counters plus bookkeeping totals."""

    access_count: int = 0
    oram_cycles: float = 0.0
    waste: float = 0.0

    def reset(self) -> None:
        """Clear all counters (epoch transition)."""
        self.access_count = 0
        self.oram_cycles = 0.0
        self.waste = 0.0

    def record_real_access(self, service_cycles: float) -> None:
        """Account one real ORAM access of ``service_cycles`` duration."""
        if service_cycles < 0:
            raise ValueError(f"service_cycles must be >= 0, got {service_cycles}")
        self.access_count += 1
        self.oram_cycles += service_cycles

    def record_waste(self, cycles: float) -> None:
        """Add rate-attributable lost cycles."""
        if cycles < 0:
            raise ValueError(f"waste cycles must be >= 0, got {cycles}")
        self.waste += cycles

    def snapshot(self) -> "PerfCounters":
        """Copy for post-mortem inspection before a reset."""
        return PerfCounters(
            access_count=self.access_count,
            oram_cycles=self.oram_cycles,
            waste=self.waste,
        )
