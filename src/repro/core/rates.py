"""Candidate ORAM access-rate sets (the paper's R).

An ORAM rate of ``r`` cycles means the next ORAM access starts ``r``
cycles after the previous access *completes* (Section 2.1 notation).  The
paper selects the extreme rates empirically (Section 9.2): 256 cycles at
the fast end (below ~200 the rate is underset on average for mcf) and
32768 at the slow end (beyond ~30000, compute-bound programs idle so much
their power drops below base_dram).  Intermediate candidates are spaced
evenly on a lg scale, giving memory-bound workloads a denser selection.

With |R| = 4 this yields exactly the paper's R = {256, 1290, 6501, 32768}.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.bitops import floor_lg, is_power_of_two
from repro.util.validation import check_positive


@dataclass(frozen=True)
class RateSet:
    """An ordered set of candidate ORAM rates (cycles, fastest first)."""

    rates: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.rates:
            raise ValueError("RateSet requires at least one rate")
        if any(rate <= 0 for rate in self.rates):
            raise ValueError(f"rates must be positive, got {self.rates}")
        if list(self.rates) != sorted(self.rates):
            raise ValueError(f"rates must be sorted ascending, got {self.rates}")
        if len(set(self.rates)) != len(self.rates):
            raise ValueError(f"rates must be distinct, got {self.rates}")

    def __len__(self) -> int:
        return len(self.rates)

    def __iter__(self):
        return iter(self.rates)

    def __getitem__(self, index: int) -> int:
        return self.rates[index]

    @property
    def fastest(self) -> int:
        """Smallest (most frequent) rate."""
        return self.rates[0]

    @property
    def slowest(self) -> int:
        """Largest (least frequent) rate."""
        return self.rates[-1]

    def nearest(self, raw_rate: float) -> int:
        """Discretize a predicted rate to the closest candidate.

        Implements Section 7.1.3: ``argmin over r in R of |raw - r|``.
        |R| is small (2-16), so the hardware does this as a sequential
        scan; ties break toward the faster rate, which errs on the side of
        performance rather than power.

        >>> RateSet((256, 1290, 6501, 32768)).nearest(900)
        1290
        >>> RateSet((256, 1290, 6501, 32768)).nearest(500)
        256
        """
        best = self.rates[0]
        best_distance = abs(raw_rate - best)
        for rate in self.rates[1:]:
            distance = abs(raw_rate - rate)
            if distance < best_distance:
                best = rate
                best_distance = distance
        return best

    def nearest_log(self, raw_rate: float) -> int:
        """Log-space discretization (ablation alternative to :meth:`nearest`).

        Since candidates are lg-spaced, distance in log space weights
        relative rather than absolute error.  Not what the paper specifies;
        provided for the ablation bench.
        """
        import math

        clamped = max(raw_rate, 1e-9)
        best = self.rates[0]
        best_distance = abs(math.log2(clamped) - math.log2(best))
        for rate in self.rates[1:]:
            distance = abs(math.log2(clamped) - math.log2(rate))
            if distance < best_distance:
                best = rate
                best_distance = distance
        return best


def lg_spaced_rates(n_rates: int, fastest: int = 256, slowest: int = 32768) -> RateSet:
    """Build |R| candidates spaced evenly on a lg scale (Section 9.2).

    The extreme rates are the paper's empirically chosen endpoints
    (256 at the fast end, 32768 at the slow end); intermediate
    candidates fall at equal lg intervals, truncated to integers.

    >>> lg_spaced_rates(4).rates
    (256, 1290, 6501, 32768)
    >>> lg_spaced_rates(2).rates
    (256, 32768)
    >>> len(lg_spaced_rates(8))
    8
    """
    check_positive(n_rates, "n_rates")
    check_positive(fastest, "fastest")
    if n_rates == 1:
        return RateSet((fastest,))
    if slowest <= fastest:
        raise ValueError(f"slowest ({slowest}) must exceed fastest ({fastest})")
    ratio = (slowest / fastest) ** (1.0 / (n_rates - 1))
    rates = [fastest]
    for index in range(1, n_rates - 1):
        # Truncate: 256 * 128^(2/3) = 6501.9 -> 6501, matching the paper's
        # published R = {256, 1290, 6501, 32768}.
        rates.append(int(fastest * ratio**index))
    rates.append(slowest)
    return RateSet(tuple(rates))


#: The paper's default candidate set (|R| = 4).
PAPER_RATES = lg_spaced_rates(4)

#: The initial-epoch rate used for all benchmarks (Section 9.2).
INITIAL_RATE = 10_000
