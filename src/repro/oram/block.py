"""Block and bucket plaintext structures for the functional Path ORAM.

A block is the unit the processor reads/writes (one cache line).  Buckets
hold up to Z blocks and are padded with dummy blocks to a fixed size so all
buckets are indistinguishable once encrypted (paper Section 3).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Address value reserved for dummy (padding) blocks.
DUMMY_ADDRESS = -1


@dataclass(frozen=True)
class Block:
    """One ORAM block: logical address, current leaf label, payload."""

    address: int
    leaf: int
    data: bytes

    @property
    def is_dummy(self) -> bool:
        """True for padding blocks that carry no program data."""
        return self.address == DUMMY_ADDRESS

    @staticmethod
    def dummy(block_bytes: int) -> "Block":
        """A padding block of ``block_bytes`` zero bytes."""
        return Block(address=DUMMY_ADDRESS, leaf=0, data=bytes(block_bytes))


_ADDRESS_BYTES = 8
_LEAF_BYTES = 8


def serialize_block(block: Block, block_bytes: int) -> bytes:
    """Fixed-size wire format: address, leaf, then padded payload."""
    if len(block.data) > block_bytes:
        raise ValueError(
            f"block payload is {len(block.data)} bytes, exceeds block size {block_bytes}"
        )
    address_field = (block.address & 0xFFFF_FFFF_FFFF_FFFF).to_bytes(_ADDRESS_BYTES, "little")
    leaf_field = block.leaf.to_bytes(_LEAF_BYTES, "little")
    payload = block.data.ljust(block_bytes, b"\x00")
    return address_field + leaf_field + payload


def deserialize_block(raw: bytes, block_bytes: int) -> Block:
    """Invert :func:`serialize_block`."""
    expected = serialized_block_bytes(block_bytes)
    if len(raw) != expected:
        raise ValueError(f"expected {expected} serialized bytes, got {len(raw)}")
    address = int.from_bytes(raw[:_ADDRESS_BYTES], "little")
    if address >= 1 << 63:
        address -= 1 << 64
    leaf = int.from_bytes(raw[_ADDRESS_BYTES : _ADDRESS_BYTES + _LEAF_BYTES], "little")
    data = raw[_ADDRESS_BYTES + _LEAF_BYTES :]
    return Block(address=address, leaf=leaf, data=data)


def serialized_block_bytes(block_bytes: int) -> int:
    """Size of one serialized block (payload + metadata)."""
    return _ADDRESS_BYTES + _LEAF_BYTES + block_bytes


def serialize_bucket(blocks: list[Block], z: int, block_bytes: int) -> bytes:
    """Serialize up to ``z`` blocks, padding with dummies to exactly ``z``."""
    if len(blocks) > z:
        raise ValueError(f"bucket holds at most {z} blocks, got {len(blocks)}")
    padded = list(blocks) + [Block.dummy(block_bytes)] * (z - len(blocks))
    return b"".join(serialize_block(block, block_bytes) for block in padded)


def deserialize_bucket(raw: bytes, z: int, block_bytes: int) -> list[Block]:
    """Invert :func:`serialize_bucket`, dropping dummy padding blocks."""
    stride = serialized_block_bytes(block_bytes)
    if len(raw) != z * stride:
        raise ValueError(f"expected {z * stride} bucket bytes, got {len(raw)}")
    blocks = []
    for slot in range(z):
        block = deserialize_block(raw[slot * stride : (slot + 1) * stride], block_bytes)
        if not block.is_dummy:
            blocks.append(block)
    return blocks
