"""Binary-tree index arithmetic for Path ORAM.

Buckets are stored in heap order: bucket 0 is the root; bucket ``i`` has
children ``2i + 1`` (left) and ``2i + 2`` (right).  A *leaf label* is an
integer in ``[0, n_leaves)`` selecting a root-to-leaf path; bit ``k`` of the
label (from the most significant path bit) selects the child taken at tree
level ``k``.
"""

from __future__ import annotations

import numpy as np

from repro.oram.config import TreeGeometry


def path_bucket_indices(geometry: TreeGeometry, leaf: int) -> list[int]:
    """Heap indices of the buckets on the path from root to ``leaf``.

    The returned list has ``geometry.levels`` entries ordered root-first.
    """
    _check_leaf(geometry, leaf)
    indices = [0]
    node = 0
    for level in range(1, geometry.levels):
        take_right = (leaf >> (geometry.levels - 1 - level)) & 1
        node = 2 * node + 1 + take_right
        indices.append(node)
    return indices


def bucket_on_path(geometry: TreeGeometry, leaf: int, level: int) -> int:
    """Heap index of the level-``level`` bucket on the path to ``leaf``."""
    _check_leaf(geometry, leaf)
    if not 0 <= level < geometry.levels:
        raise ValueError(f"level must be in [0, {geometry.levels}), got {level}")
    node = 0
    for depth in range(1, level + 1):
        take_right = (leaf >> (geometry.levels - 1 - depth)) & 1
        node = 2 * node + 1 + take_right
    return node


def common_prefix_level(geometry: TreeGeometry, leaf_a: int, leaf_b: int) -> int:
    """Deepest tree level shared by the paths to ``leaf_a`` and ``leaf_b``.

    Level 0 (the root) is always shared; two identical leaves share
    ``geometry.levels - 1``.  This is the key predicate for Path ORAM write
    back: a block mapped to ``leaf_b`` may live at level ``l`` of the path
    to ``leaf_a`` iff ``l <= common_prefix_level(geometry, leaf_a, leaf_b)``.
    """
    _check_leaf(geometry, leaf_a)
    _check_leaf(geometry, leaf_b)
    differing = leaf_a ^ leaf_b
    if differing == 0:
        return geometry.levels - 1
    # The highest set bit of the XOR marks the first level where the paths
    # diverge (counting from the bit below the root).
    first_divergence = geometry.levels - 1 - differing.bit_length()
    return first_divergence


def path_bucket_indices_batch(geometry: TreeGeometry, leaves: np.ndarray) -> np.ndarray:
    """Vectorized :func:`path_bucket_indices` for a whole access batch.

    ``leaves`` is an int array of shape ``(n,)``; the result has shape
    ``(n, levels)`` with row ``i`` equal to
    ``path_bucket_indices(geometry, leaves[i])``.
    """
    leaves = np.asarray(leaves, dtype=np.int64)
    if leaves.size and (leaves.min() < 0 or leaves.max() >= geometry.n_leaves):
        bad = leaves[(leaves < 0) | (leaves >= geometry.n_leaves)][0]
        raise ValueError(f"leaf must be in [0, {geometry.n_leaves}), got {int(bad)}")
    out = np.zeros((leaves.shape[0], geometry.levels), dtype=np.int64)
    node = np.zeros(leaves.shape[0], dtype=np.int64)
    for level in range(1, geometry.levels):
        take_right = (leaves >> (geometry.levels - 1 - level)) & 1
        node = 2 * node + 1 + take_right
        out[:, level] = node
    return out


def leaf_of_bucket(geometry: TreeGeometry, bucket: int) -> tuple[int, int]:
    """Return ``(level, smallest leaf whose path passes through bucket)``."""
    if not 0 <= bucket < geometry.n_buckets:
        raise ValueError(f"bucket must be in [0, {geometry.n_buckets}), got {bucket}")
    level = (bucket + 1).bit_length() - 1
    first_at_level = (1 << level) - 1
    offset = bucket - first_at_level
    leaves_per_subtree = 1 << (geometry.levels - 1 - level)
    return level, offset * leaves_per_subtree


def _check_leaf(geometry: TreeGeometry, leaf: int) -> None:
    if not 0 <= leaf < geometry.n_leaves:
        raise ValueError(f"leaf must be in [0, {geometry.n_leaves}), got {leaf}")
