"""Path ORAM substrate: functional controller, recursion, integrity, timing.

This package implements the ORAM machinery the paper builds on (Section 3):
the binary-tree Path ORAM protocol with stash and position map, recursive
position maps, probabilistic bucket encryption, the untrusted-memory view
an adversary probes, Merkle integrity as an extension, and the derivation
of the per-access latency/bandwidth/energy constants the evaluation uses.
"""

from repro.oram.backend import UntrustedMemory
from repro.oram.background_eviction import BackgroundEvictingORAM, EvictionStats
from repro.oram.block import Block, DUMMY_ADDRESS
from repro.oram.config import ORAMConfig, PAPER_ORAM_CONFIG, TEST_ORAM_CONFIG, TreeGeometry
from repro.oram.encryption import CHUNK_BYTES, NullCipher, ProbabilisticCipher, chunk_count
from repro.oram.engine import BatchedPathORAM
from repro.oram.integrity import MerkleTree, TamperDetectedError, VerifiedPathORAM
from repro.oram.path_oram import (
    AccessStats,
    PathORAM,
    assign_levels,
    default_payload,
    digest_state,
    make_path_oram,
    normalize_payloads,
    percentiles_from_histogram,
)
from repro.oram.position_map import FlatPositionMap
from repro.oram.recursion import RecursivePathORAM
from repro.oram.stash import Stash, StashOverflowError
from repro.oram.timing import (
    DramLinkParameters,
    ORAMTiming,
    PAPER_ORAM_TIMING,
    derive_timing,
    paper_timing,
    timing_from_counts,
)

__all__ = [
    "UntrustedMemory",
    "BackgroundEvictingORAM",
    "EvictionStats",
    "Block",
    "DUMMY_ADDRESS",
    "ORAMConfig",
    "PAPER_ORAM_CONFIG",
    "TEST_ORAM_CONFIG",
    "TreeGeometry",
    "CHUNK_BYTES",
    "NullCipher",
    "ProbabilisticCipher",
    "chunk_count",
    "BatchedPathORAM",
    "MerkleTree",
    "TamperDetectedError",
    "VerifiedPathORAM",
    "AccessStats",
    "PathORAM",
    "assign_levels",
    "default_payload",
    "digest_state",
    "make_path_oram",
    "normalize_payloads",
    "percentiles_from_histogram",
    "FlatPositionMap",
    "RecursivePathORAM",
    "Stash",
    "StashOverflowError",
    "DramLinkParameters",
    "ORAMTiming",
    "PAPER_ORAM_TIMING",
    "derive_timing",
    "paper_timing",
    "timing_from_counts",
]
