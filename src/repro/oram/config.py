"""Path ORAM configuration and derived tree geometry.

The paper's evaluation (Section 9.1.2) uses a 4 GB-capacity Path ORAM with a
1 GB working set, Z = 3 blocks per bucket, 64-byte cache-line blocks, and
3 levels of recursion with 32-byte position-map blocks.  ``ORAMConfig``
captures those knobs; :class:`TreeGeometry` derives everything downstream
code needs (level count, bucket count, bytes per path) from them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from repro.util.bitops import ceil_div, ceil_lg
from repro.util.units import GB, pretty_bytes
from repro.util.validation import check_positive


@dataclass(frozen=True)
class ORAMConfig:
    """User-facing Path ORAM parameters.

    Attributes:
        capacity_bytes: Total data capacity of the ORAM (paper: 4 GB).
        block_bytes: Size of a data block; one LLC cache line (paper: 64 B).
        blocks_per_bucket: Z, real-block slots per tree bucket (paper: 3).
        recursion_levels: Number of position-map ORAMs stacked on top of the
            data ORAM (paper: 3).  0 means the full position map is on-chip.
        recursive_block_bytes: Block size of position-map ORAMs (paper: 32 B).
        leaf_label_bytes: Bytes to store one leaf label inside a position-map
            block.  4 bytes covers trees up to 2**32 leaves.
        bucket_header_bytes: Per-bucket metadata (addresses, leaf labels,
            validity bits, encryption nonce/MAC space) transferred along with
            the payload on every path read/write.
        utilization: Fraction of block slots expected to hold real data; used
            to size the tree so the stash stays small.  Path ORAM provisions
            roughly 2x the working set in slots.
    """

    capacity_bytes: int = 4 * GB
    block_bytes: int = 64
    blocks_per_bucket: int = 3
    recursion_levels: int = 3
    recursive_block_bytes: int = 32
    leaf_label_bytes: int = 4
    bucket_header_bytes: int = 16
    utilization: float = 0.5

    def __post_init__(self) -> None:
        check_positive(self.capacity_bytes, "capacity_bytes")
        check_positive(self.block_bytes, "block_bytes")
        check_positive(self.blocks_per_bucket, "blocks_per_bucket")
        check_positive(self.recursive_block_bytes, "recursive_block_bytes")
        check_positive(self.leaf_label_bytes, "leaf_label_bytes")
        if self.recursion_levels < 0:
            raise ValueError(f"recursion_levels must be >= 0, got {self.recursion_levels}")
        if not 0.0 < self.utilization <= 1.0:
            raise ValueError(f"utilization must be in (0, 1], got {self.utilization}")

    @property
    def n_blocks(self) -> int:
        """Number of addressable data blocks."""
        return ceil_div(self.capacity_bytes, self.block_bytes)

    @property
    def labels_per_recursive_block(self) -> int:
        """How many leaf labels fit in one position-map ORAM block."""
        return max(1, self.recursive_block_bytes // self.leaf_label_bytes)

    def data_geometry(self) -> "TreeGeometry":
        """Geometry of the data (level-0) ORAM tree."""
        return TreeGeometry.for_block_count(
            n_blocks=self.n_blocks,
            blocks_per_bucket=self.blocks_per_bucket,
            block_bytes=self.block_bytes,
            bucket_header_bytes=self.bucket_header_bytes,
            utilization=self.utilization,
        )

    def recursion_geometries(self) -> list["TreeGeometry"]:
        """Geometries of the position-map ORAMs, outermost (largest) first.

        ORAM_1 stores the data ORAM's position map, ORAM_2 stores ORAM_1's,
        and so on, each shrinking by ``labels_per_recursive_block``.  The
        final (smallest) map lives on-chip and has no tree.
        """
        geometries: list[TreeGeometry] = []
        entries = self.n_blocks
        for _ in range(self.recursion_levels):
            entries = ceil_div(entries, self.labels_per_recursive_block)
            geometries.append(
                TreeGeometry.for_block_count(
                    n_blocks=entries,
                    blocks_per_bucket=self.blocks_per_bucket,
                    block_bytes=self.recursive_block_bytes,
                    bucket_header_bytes=self.bucket_header_bytes,
                    utilization=self.utilization,
                )
            )
        return geometries

    def all_geometries(self) -> list["TreeGeometry"]:
        """Data geometry followed by recursion geometries."""
        return [self.data_geometry(), *self.recursion_geometries()]

    @property
    def onchip_posmap_entries(self) -> int:
        """Entries in the final on-chip position map after recursion."""
        entries = self.n_blocks
        for _ in range(self.recursion_levels):
            entries = ceil_div(entries, self.labels_per_recursive_block)
        return entries

    def path_bytes_per_direction(self) -> int:
        """Bytes moved reading (or writing) one path of *every* ORAM.

        An ORAM access touches one full path in the data ORAM plus one path
        in each recursive position-map ORAM (paper Section 3.1 / 9.1.2: the
        total is 12.1 KB per direction for the paper's parameters).
        """
        return sum(geometry.path_bytes for geometry in self.all_geometries())

    def describe(self) -> str:
        """Multi-line human-readable summary of the configuration."""
        lines = [
            f"Path ORAM: capacity={pretty_bytes(self.capacity_bytes)}, "
            f"Z={self.blocks_per_bucket}, block={self.block_bytes} B, "
            f"recursion={self.recursion_levels} x {self.recursive_block_bytes} B blocks",
        ]
        for index, geometry in enumerate(self.all_geometries()):
            role = "data" if index == 0 else f"posmap-{index}"
            lines.append(f"  ORAM[{role}]: {geometry.describe()}")
        lines.append(
            f"  path bytes/direction={pretty_bytes(self.path_bytes_per_direction())}, "
            f"on-chip posmap entries={self.onchip_posmap_entries}"
        )
        return "\n".join(lines)


@dataclass(frozen=True)
class TreeGeometry:
    """Derived shape of a single Path ORAM binary tree.

    Levels are numbered 0 (root) .. ``levels - 1`` (leaves), so a path
    touches ``levels`` buckets.  Buckets are indexed in heap order: the root
    is bucket 0 and bucket ``i`` has children ``2i + 1`` and ``2i + 2``.
    """

    levels: int
    blocks_per_bucket: int
    block_bytes: int
    bucket_header_bytes: int = 16
    _derived: dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        check_positive(self.levels, "levels")
        check_positive(self.blocks_per_bucket, "blocks_per_bucket")
        check_positive(self.block_bytes, "block_bytes")

    @classmethod
    def for_block_count(
        cls,
        n_blocks: int,
        blocks_per_bucket: int,
        block_bytes: int,
        bucket_header_bytes: int = 16,
        utilization: float = 0.5,
    ) -> "TreeGeometry":
        """Size a tree so ``n_blocks`` fill at most ``utilization`` of slots."""
        check_positive(n_blocks, "n_blocks")
        slots_needed = ceil_div(n_blocks, blocks_per_bucket)
        # Total buckets in a tree with 2**h leaves is 2**(h+1) - 1; find the
        # smallest height whose slot count, derated by utilization, fits.
        target_buckets = ceil_div(slots_needed, 1)
        target_buckets = max(1, int(target_buckets / utilization))
        height = max(0, ceil_lg(target_buckets + 1) - 1)
        return cls(
            levels=height + 1,
            blocks_per_bucket=blocks_per_bucket,
            block_bytes=block_bytes,
            bucket_header_bytes=bucket_header_bytes,
        )

    @property
    def n_leaves(self) -> int:
        """Number of leaf buckets (2 ** (levels - 1))."""
        return 1 << (self.levels - 1)

    @property
    def n_buckets(self) -> int:
        """Total buckets in the tree (2 ** levels - 1)."""
        return (1 << self.levels) - 1

    @property
    def n_slots(self) -> int:
        """Total real-block slots across all buckets."""
        return self.n_buckets * self.blocks_per_bucket

    @property
    def bucket_bytes(self) -> int:
        """Bytes per encrypted bucket (payload + header)."""
        return self.blocks_per_bucket * self.block_bytes + self.bucket_header_bytes

    @property
    def path_bytes(self) -> int:
        """Bytes in one root-to-leaf path (one direction)."""
        return self.levels * self.bucket_bytes

    def describe(self) -> str:
        """Single-line geometry summary."""
        return (
            f"levels={self.levels}, leaves={self.n_leaves}, buckets={self.n_buckets}, "
            f"path={pretty_bytes(self.path_bytes)}"
        )


#: The exact configuration evaluated in the paper (Section 9.1.2).
PAPER_ORAM_CONFIG = ORAMConfig()

#: A small configuration convenient for functional tests and examples.
TEST_ORAM_CONFIG = ORAMConfig(
    capacity_bytes=64 * 1024,
    block_bytes=64,
    blocks_per_bucket=4,
    recursion_levels=0,
)
