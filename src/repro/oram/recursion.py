"""Recursive Path ORAM: position maps stored inside smaller ORAMs.

For a 4 GB ORAM the flat position map is far too large to keep on-chip, so
the paper (following Ren et al., ISCA 2013) stores it in a second, smaller
ORAM, that ORAM's map in a third, and so on — 3 levels of recursion with
32-byte position-map blocks in the evaluated configuration.  Every logical
access then touches one path in *each* ORAM, which is where the 12.1 KB per
direction and the 1488-cycle latency come from.

``RecursivePathORAM`` composes :class:`~repro.oram.path_oram.PathORAM`
instances so the full access protocol can be executed and tested
end-to-end.  Leaf labels for level ``i`` are packed
``labels_per_recursive_block`` to a block in the level ``i+1`` ORAM.

``mode="fast"`` swaps every tree for the batched array engine
(:class:`~repro.oram.engine.BatchedPathORAM`): the per-level position-map
read-modify-writes and the data access all run on the vectorized kernel,
and :meth:`RecursivePathORAM.run_trace` replays whole logical traces
that way.  Both modes draw from identical RNG streams, so final state is
bit-identical between them (same contract as the flat kernels).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.oram.block import DUMMY_ADDRESS
from repro.oram.config import ORAMConfig, TreeGeometry
from repro.oram.path_oram import PathORAM
from repro.util.bitops import ceil_div
from repro.util.rng import derive_seed, make_rng


@dataclass
class RecursiveStats:
    """Aggregate access statistics across the ORAM hierarchy."""

    logical_accesses: int = 0
    physical_path_accesses: int = 0

    @property
    def paths_per_access(self) -> float:
        """Average physical paths touched per logical access."""
        if self.logical_accesses == 0:
            return 0.0
        return self.physical_path_accesses / self.logical_accesses


class RecursivePathORAM:
    """Path ORAM with its position map held in recursive ORAMs.

    The position map of the data ORAM is *not* kept flat; lookups walk the
    recursion from the smallest (on-chip) map outward, reading and updating
    one position-map block per level.  Each position-map block at level
    ``i+1`` stores the leaf labels of ``fan_out`` blocks at level ``i``.
    """

    def __init__(
        self, config: ORAMConfig, n_blocks: int, seed: int = 0, mode: str = "reference"
    ) -> None:
        if config.recursion_levels < 1:
            raise ValueError("RecursivePathORAM requires recursion_levels >= 1")
        if n_blocks <= 0:
            raise ValueError(f"n_blocks must be positive, got {n_blocks}")
        if mode not in ("fast", "reference"):
            raise ValueError(f"mode must be 'fast' or 'reference', got {mode!r}")
        self.config = config
        self.n_blocks = n_blocks
        self.mode = mode
        self.fan_out = config.labels_per_recursive_block
        self._rng = make_rng(seed, "recursive-oram")
        self.stats = RecursiveStats()

        # Build data ORAM + one posmap ORAM per recursion level.  Block
        # counts shrink by fan_out at each level.
        self._orams: list = []
        level_blocks = n_blocks
        geometries = self._geometries_for(n_blocks)
        for level, geometry in enumerate(geometries):
            oram = self._build_tree(
                geometry,
                n_blocks=level_blocks,
                seed=derive_seed(seed, f"oram-level-{level}"),
            )
            self._orams.append(oram)
            level_blocks = ceil_div(level_blocks, self.fan_out)
        # The outermost map is small enough to keep on-chip as a plain list
        # of leaf labels for the last ORAM's blocks.
        last = self._orams[-1]
        self._onchip_map = [
            int(self._rng.integers(0, last.geometry.n_leaves))
            for _ in range(last.n_blocks)
        ]
        # Seed recursive ORAM contents: every posmap block starts as the
        # packed leaf labels its child ORAM's position map already holds.
        self._initialize_posmap_contents()

    @property
    def levels(self) -> int:
        """Number of ORAM trees (data + recursion)."""
        return len(self._orams)

    @property
    def data_oram(self):
        """The level-0 (data) ORAM."""
        return self._orams[0]

    def state_checksum(self) -> str:
        """Digest over every tree's state plus the on-chip map.

        The recursive arm of the fast/reference equivalence contract.
        """
        import hashlib

        h = hashlib.sha256()
        for oram in self._orams:
            h.update(bytes.fromhex(oram.state_checksum()))
        h.update(np.asarray(self._onchip_map, dtype=np.int64).tobytes())
        return h.hexdigest()

    def read(self, address: int) -> bytes:
        """Read a data block, walking the full recursion."""
        return self._logical_access(address, new_data=None)

    def write(self, address: int, data: bytes) -> None:
        """Write a data block, walking the full recursion."""
        self._logical_access(address, new_data=data)

    def dummy_access(self) -> None:
        """Dummy access touching one random path in every ORAM."""
        for oram in self._orams:
            oram.dummy_access()
            self.stats.physical_path_accesses += 1
        self.stats.logical_accesses += 1

    def run_trace(
        self, addresses: np.ndarray, is_write: np.ndarray | None = None
    ) -> None:
        """Replay a logical access trace through the full recursion.

        ``addresses`` uses :data:`~repro.oram.block.DUMMY_ADDRESS` rows
        for dummy accesses; ``is_write`` flags writes (default payloads
        per :func:`~repro.oram.path_oram.default_payload`).  Each logical
        access still walks every recursion level in protocol order — the
        speedup comes from every tree being the batched engine in
        ``mode="fast"``.
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        writes = (
            np.zeros(addresses.shape[0], dtype=bool)
            if is_write is None
            else np.asarray(is_write, dtype=bool)
        )
        from repro.oram.path_oram import default_payload

        block_bytes = self._orams[0].geometry.block_bytes
        for i, address in enumerate(addresses.tolist()):
            if address == DUMMY_ADDRESS:
                self.dummy_access()
            elif writes[i]:
                self.write(address, default_payload(address, block_bytes))
            else:
                self.read(address)

    # ------------------------------------------------------------------

    def _build_tree(self, geometry: TreeGeometry, n_blocks: int, seed: int):
        if self.mode == "fast":
            from repro.oram.engine import BatchedPathORAM

            return BatchedPathORAM(geometry, n_blocks=n_blocks, seed=seed)
        return PathORAM(geometry, n_blocks=n_blocks, seed=seed)

    def _geometries_for(self, n_blocks: int) -> list[TreeGeometry]:
        geometries = [
            TreeGeometry.for_block_count(
                n_blocks=n_blocks,
                blocks_per_bucket=self.config.blocks_per_bucket,
                block_bytes=self.config.block_bytes,
                bucket_header_bytes=self.config.bucket_header_bytes,
                utilization=self.config.utilization,
            )
        ]
        entries = n_blocks
        for _ in range(self.config.recursion_levels):
            entries = ceil_div(entries, self.fan_out)
            geometries.append(
                TreeGeometry.for_block_count(
                    n_blocks=entries,
                    blocks_per_bucket=self.config.blocks_per_bucket,
                    block_bytes=self.config.recursive_block_bytes,
                    bucket_header_bytes=self.config.bucket_header_bytes,
                    utilization=self.config.utilization,
                )
            )
        return geometries

    def _initialize_posmap_contents(self) -> None:
        """Write each level's position map into the level above it."""
        for level in range(1, len(self._orams)):
            child = self._orams[level - 1]
            parent = self._orams[level]
            for map_block in range(parent.n_blocks):
                labels = []
                for slot in range(self.fan_out):
                    child_address = map_block * self.fan_out + slot
                    if child_address < child.n_blocks:
                        labels.append(child.position_map.lookup(child_address))
                    else:
                        labels.append(0)
                parent.write(map_block, self._pack_labels(labels))

    def _logical_access(self, address: int, new_data: bytes | None) -> bytes:
        """One logical access = one path in every ORAM, outermost first.

        Each recursion level performs a single read-modify-write path access
        on the posmap block covering the child address: it reads the packed
        labels, installs a fresh uniform label for the child block, and
        writes the block back in the same path access (the real controller
        mutates the label between the path read and write-back).

        Note on fidelity: each :class:`PathORAM` level also maintains its
        own internal position map for self-consistency, so the labels
        *stored* in posmap blocks model the protocol's data movement and
        access pattern rather than being the child's live lookup source.
        The access pattern (one path per level, uniform independent leaves)
        is exactly the protocol's, which is what the timing and security
        analyses consume.
        """
        if not 0 <= address < self.n_blocks:
            raise KeyError(f"address {address} outside [0, {self.n_blocks})")
        # Map-block address covering `address` at each recursion level.
        chain = [address]
        for _ in range(1, len(self._orams)):
            chain.append(chain[-1] // self.fan_out)

        # Walk outermost (smallest) posmap ORAM toward the data ORAM.
        for level in range(len(self._orams) - 1, 0, -1):
            parent = self._orams[level]
            child = self._orams[level - 1]
            map_block = chain[level]
            slot = chain[level - 1] % self.fan_out
            fresh_leaf = int(self._rng.integers(0, child.geometry.n_leaves))

            def install_label(raw: bytes, slot=slot, fresh_leaf=fresh_leaf) -> bytes:
                labels = self._unpack_labels(raw)
                labels[slot] = fresh_leaf
                return self._pack_labels(labels)

            parent.update(map_block, install_label)
            self.stats.physical_path_accesses += 1

        data_oram = self._orams[0]
        if new_data is None:
            result = data_oram.read(address)
        else:
            data_oram.write(address, new_data)
            result = bytes(new_data)
        self.stats.physical_path_accesses += 1
        self.stats.logical_accesses += 1
        return result

    def _pack_labels(self, labels: list[int]) -> bytes:
        width = self.config.leaf_label_bytes
        packed = b"".join(label.to_bytes(width, "little") for label in labels)
        return packed[: self.config.recursive_block_bytes]

    def _unpack_labels(self, raw: bytes) -> list[int]:
        width = self.config.leaf_label_bytes
        count = self.fan_out
        labels = []
        for index in range(count):
            chunk = raw[index * width : (index + 1) * width]
            labels.append(int.from_bytes(chunk.ljust(width, b"\x00"), "little"))
        return labels
