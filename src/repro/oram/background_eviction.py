"""Background eviction: stash control for low-Z Path ORAMs.

The paper's configuration uses Z = 3, following Ren et al. (ISCA 2013),
whose design-space study pairs small Z with *background eviction*: when
the stash grows past a threshold, the controller issues dummy accesses
(random-path read/writes) whose write-back phase drains stashed blocks
back into the tree.  Crucially this is invisible to the timing scheme —
a background eviction *is* a dummy access, indistinguishable by
definition, so it can occupy any slot that has no real request.

``BackgroundEvictingORAM`` wraps a :class:`~repro.oram.path_oram.PathORAM`
and triggers evictions automatically after accesses that leave the stash
above the high-water mark.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.oram.path_oram import PathORAM


@dataclass
class EvictionStats:
    """Background-eviction bookkeeping."""

    triggered: int = 0
    eviction_accesses: int = 0


class BackgroundEvictingORAM:
    """Path ORAM with threshold-triggered background eviction.

    Args:
        oram: The wrapped Path ORAM.
        high_water: Stash occupancy (blocks) above which eviction runs.
        max_evictions_per_trigger: Cap on consecutive dummy accesses per
            trigger (each one drains what the random path can absorb).
    """

    def __init__(
        self,
        oram: PathORAM,
        high_water: int = 16,
        max_evictions_per_trigger: int = 4,
    ) -> None:
        if high_water <= 0:
            raise ValueError(f"high_water must be positive, got {high_water}")
        if max_evictions_per_trigger <= 0:
            raise ValueError(
                "max_evictions_per_trigger must be positive, got "
                f"{max_evictions_per_trigger}"
            )
        self.oram = oram
        self.high_water = high_water
        self.max_evictions = max_evictions_per_trigger
        self.stats = EvictionStats()

    def read(self, address: int) -> bytes:
        """Read, then drain the stash if needed."""
        data = self.oram.read(address)
        self._maybe_evict()
        return data

    def write(self, address: int, data: bytes) -> None:
        """Write, then drain the stash if needed."""
        self.oram.write(address, data)
        self._maybe_evict()

    def dummy_access(self) -> None:
        """Dummy accesses pass through (they already evict)."""
        self.oram.dummy_access()

    @property
    def stash_peak(self) -> int:
        """Peak stash occupancy seen by the wrapped ORAM."""
        return self.oram.stats.stash_peak

    def _maybe_evict(self) -> None:
        if len(self.oram.stash) <= self.high_water:
            return
        self.stats.triggered += 1
        for _ in range(self.max_evictions):
            self.oram.dummy_access()
            self.stats.eviction_accesses += 1
            if len(self.oram.stash) <= self.high_water:
                return
