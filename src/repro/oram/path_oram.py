"""Functional Path ORAM controller (Stefanov et al., CCS 2013; paper Section 3).

This is a complete, working Path ORAM: it stores encrypted buckets in
:class:`~repro.oram.backend.UntrustedMemory`, maintains the position map
and stash, and services reads/writes by reading a path, remapping the
block, and greedily writing the path back.  Dummy accesses — reads/writes
of a uniformly random path — are first-class citizens because the timing
protection schemes in :mod:`repro.core` depend on them.

This module is the **reference kernel** of the two-kernel ORAM
architecture (mirroring :mod:`repro.cache.vectorized` /
:mod:`repro.sim.timing`): the batched array engine in
:mod:`repro.oram.engine` produces bit-identical stash, position-map, and
bucket state while running the per-access work in numpy.  The contract
between them is pinned down by three shared pieces:

* the **canonical greedy write-back** (:func:`assign_levels`): eligible
  stash blocks ordered by (eligibility depth descending, address
  ascending) fill path buckets deepest-first — a deterministic rule both
  kernels implement exactly;
* the **RNG stream**: one uniform leaf draw per access, in access order,
  from the position map's generator (a batched ``integers(size=n)`` call
  consumes the identical stream);
* the **state digest** (:func:`digest_state`): a canonical serialization
  of position map + stash + per-bucket slot-ordered plaintext blocks,
  compared by the equivalence suites and the perf gate.

The timing models elsewhere in the repository do not execute this
controller per access; they use the latency and energy constants derived
from its geometry in :mod:`repro.oram.timing` — and the batched engine
is what lets :mod:`repro.analysis.stash_scaling` validate those
constants (and the stash-occupancy assumption) at millions of accesses.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.oram.backend import UntrustedMemory
from repro.oram.block import Block, DUMMY_ADDRESS, deserialize_bucket, serialize_bucket
from repro.oram.config import ORAMConfig, TreeGeometry
from repro.oram.encryption import ProbabilisticCipher
from repro.oram.position_map import FlatPositionMap
from repro.oram.stash import Stash
from repro.oram.tree import common_prefix_level, path_bucket_indices
from repro.util.rng import make_rng

#: Default reservoir size for stash-occupancy samples (satellite of the
#: exact peak/mean/histogram counters, which are unbounded-safe).
STASH_RESERVOIR_SIZE = 1024

#: Percentiles reported by default (p50/p95/p99 — service-latency SLOs).
DEFAULT_PERCENTILES = (50.0, 95.0, 99.0)


def percentiles_from_histogram(hist: np.ndarray, qs) -> dict[float, int]:
    """Exact nearest-rank percentiles from an integer-value histogram.

    ``hist[v]`` counts samples with value ``v``; the q-th percentile is
    the value of the ``ceil(q/100 * n)``-th smallest sample (nearest-rank,
    so every returned value actually occurred).  This is the single
    percentile implementation shared by :meth:`AccessStats.latency_percentiles`
    and the tenancy report — consumers must not re-derive it.

    >>> import numpy as np
    >>> percentiles_from_histogram(np.asarray([0, 3, 0, 1]), (50, 100))
    {50.0: 1, 100.0: 3}
    """
    hist = np.asarray(hist, dtype=np.int64)
    total = int(hist.sum())
    if total == 0:
        return {float(q): 0 for q in qs}
    cumulative = np.cumsum(hist)
    out: dict[float, int] = {}
    for q in qs:
        if not 0.0 <= float(q) <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        rank = max(1, int(np.ceil(float(q) / 100.0 * total)))
        out[float(q)] = int(np.searchsorted(cumulative, rank, side="left"))
    return out


@dataclass
class AccessStats:
    """Counters accumulated by a :class:`PathORAM` instance.

    Stash occupancy is tracked three ways, all bounded in memory no
    matter how many accesses run:

    * **exact counters** — :attr:`stash_peak`, :attr:`stash_sum` /
      :attr:`stash_samples_seen` (so :attr:`stash_mean` is exact);
    * **exact histogram** — :meth:`stash_histogram`, one counter per
      occupancy value, the input to tail-probability analysis;
    * **reservoir sample** — :attr:`stash_occupancy_samples`, a uniform
      ``reservoir_size``-element sample of the full occupancy stream for
      consumers that want raw samples (quantiles, plots).

    Request latency (in whatever integer unit the caller measures —
    service slots, cycles) is tracked with the same exact-histogram
    machinery via :meth:`record_latency_batch`, and
    :meth:`latency_percentiles` exposes the nearest-rank percentile math
    publicly so report layers (stash scaling, the tenancy service) share
    one implementation instead of duplicating it.
    """

    reads: int = 0
    writes: int = 0
    dummies: int = 0
    buckets_touched: int = 0
    stash_peak: int = 0
    stash_sum: int = 0
    stash_samples_seen: int = 0
    latency_peak: int = 0
    latency_sum: int = 0
    latency_samples_seen: int = 0
    reservoir_size: int = STASH_RESERVOIR_SIZE
    _reservoir: list[int] = field(default_factory=list, repr=False, compare=False)
    _hist: np.ndarray = field(
        default_factory=lambda: np.zeros(64, dtype=np.int64), repr=False, compare=False
    )
    _latency_hist: np.ndarray = field(
        default_factory=lambda: np.zeros(64, dtype=np.int64), repr=False, compare=False
    )
    _rng: np.random.Generator = field(
        default_factory=lambda: make_rng(0, "stash-reservoir"),
        repr=False,
        compare=False,
    )

    @property
    def total_accesses(self) -> int:
        """Real plus dummy accesses."""
        return self.reads + self.writes + self.dummies

    @property
    def stash_mean(self) -> float:
        """Exact mean stash occupancy over every sampled access."""
        if self.stash_samples_seen == 0:
            return 0.0
        return self.stash_sum / self.stash_samples_seen

    @property
    def stash_occupancy_samples(self) -> list[int]:
        """Uniform reservoir sample of per-access stash occupancy.

        Until ``reservoir_size`` accesses have run this is the complete
        sample list (so small-run consumers see exactly what they did
        before the reservoir existed); past that it stays a fixed-size
        uniform subsample instead of growing per access.
        """
        return list(self._reservoir)

    def stash_histogram(self) -> np.ndarray:
        """Exact occupancy histogram: ``hist[k]`` = accesses with stash == k."""
        top = int(np.max(np.nonzero(self._hist)[0])) if self._hist.any() else 0
        return self._hist[: top + 1].copy()

    def stash_tail_probability(self, threshold: int) -> float:
        """Fraction of sampled accesses with occupancy > ``threshold`` (exact)."""
        if self.stash_samples_seen == 0:
            return 0.0
        hist = self._hist
        if threshold + 1 >= hist.size:
            return 0.0
        return float(hist[threshold + 1 :].sum()) / self.stash_samples_seen

    @property
    def latency_mean(self) -> float:
        """Exact mean request latency over every recorded sample."""
        if self.latency_samples_seen == 0:
            return 0.0
        return self.latency_sum / self.latency_samples_seen

    def latency_histogram(self) -> np.ndarray:
        """Exact latency histogram: ``hist[v]`` = requests with latency == v."""
        top = int(np.max(np.nonzero(self._latency_hist)[0])) if self._latency_hist.any() else 0
        return self._latency_hist[: top + 1].copy()

    def latency_percentiles(self, qs=DEFAULT_PERCENTILES) -> dict[float, int]:
        """Exact nearest-rank latency percentiles (p50/p95/p99 by default).

        Latency is recorded in whatever integer unit the caller chose
        (cycles, service slots); the returned values are in that same
        unit.  Delegates to :func:`percentiles_from_histogram` so every
        report layer shares one percentile implementation.
        """
        return percentiles_from_histogram(self._latency_hist, qs)

    def record_latency(self, latency: int) -> None:
        """Record one request latency sample (non-negative integer)."""
        latency = int(latency)
        if latency < 0:
            raise ValueError(f"latency must be non-negative, got {latency}")
        if latency > self.latency_peak:
            self.latency_peak = latency
        self.latency_sum += latency
        if latency >= self._latency_hist.size:
            grown = np.zeros(max(latency + 1, 2 * self._latency_hist.size), dtype=np.int64)
            grown[: self._latency_hist.size] = self._latency_hist
            self._latency_hist = grown
        self._latency_hist[latency] += 1
        self.latency_samples_seen += 1

    def record_latency_batch(self, latencies: np.ndarray) -> None:
        """Record a batch of latency samples (exact counters + histogram)."""
        lat = np.asarray(latencies, dtype=np.int64)
        if lat.size == 0:
            return
        if int(lat.min()) < 0:
            raise ValueError("latencies must be non-negative")
        peak = int(lat.max())
        self.latency_peak = max(self.latency_peak, peak)
        self.latency_sum += int(lat.sum())
        if peak >= self._latency_hist.size:
            grown = np.zeros(max(peak + 1, 2 * self._latency_hist.size), dtype=np.int64)
            grown[: self._latency_hist.size] = self._latency_hist
            self._latency_hist = grown
        self._latency_hist += np.bincount(lat, minlength=self._latency_hist.size)
        self.latency_samples_seen += lat.size

    def record_stash(self, occupancy: int) -> None:
        """Record one post-access stash occupancy sample.

        Scalar counterpart of :meth:`record_stash_batch` (same counters,
        same one-uniform-draw-per-sample reservoir schedule) kept
        allocation-free: the reference kernel calls this once per
        access, where per-sample numpy temporaries would tax the very
        oracle the speedup floors are measured against.
        """
        occupancy = int(occupancy)
        if occupancy > self.stash_peak:
            self.stash_peak = occupancy
        self.stash_sum += occupancy
        if occupancy >= self._hist.size:
            grown = np.zeros(max(occupancy + 1, 2 * self._hist.size), dtype=np.int64)
            grown[: self._hist.size] = self._hist
            self._hist = grown
        self._hist[occupancy] += 1
        self.stash_samples_seen += 1
        reservoir = self._reservoir
        if len(reservoir) < self.reservoir_size:
            reservoir.append(occupancy)
            return
        slot = int(self._rng.random() * self.stash_samples_seen)
        if slot < self.reservoir_size:
            reservoir[slot] = occupancy

    def record_stash_batch(self, occupancies: np.ndarray) -> None:
        """Record a batch of occupancy samples (exact counters + reservoir)."""
        occ = np.asarray(occupancies, dtype=np.int64)
        if occ.size == 0:
            return
        peak = int(occ.max())
        self.stash_peak = max(self.stash_peak, peak)
        self.stash_sum += int(occ.sum())
        if peak >= self._hist.size:
            grown = np.zeros(max(peak + 1, 2 * self._hist.size), dtype=np.int64)
            grown[: self._hist.size] = self._hist
            self._hist = grown
        self._hist += np.bincount(occ, minlength=self._hist.size)
        start = self.stash_samples_seen
        self.stash_samples_seen += occ.size
        reservoir = self._reservoir
        fill = min(max(self.reservoir_size - len(reservoir), 0), occ.size)
        if fill:
            reservoir.extend(int(v) for v in occ[:fill])
        if fill >= occ.size:
            return
        # Algorithm R over the remainder: sample t is kept with
        # probability size/t, replacing a uniform slot.  Vectorized: one
        # uniform draw per sample, scalar writes only for the acceptances
        # (O(size * log) expected over a long stream).
        rest = occ[fill:]
        totals = start + fill + np.arange(1, rest.size + 1, dtype=np.int64)
        slots = (self._rng.random(rest.size) * totals).astype(np.int64)
        hits = np.nonzero(slots < self.reservoir_size)[0]
        for k in hits.tolist():
            reservoir[int(slots[k])] = int(rest[k])


def default_payload(address: int, block_bytes: int) -> bytes:
    """Canonical write payload for trace-driven accesses without data.

    Both kernels stamp the block address little-endian into the payload,
    so trace replays produce checkable block contents without the caller
    shipping a payload array.
    """
    return (address & 0xFFFF_FFFF_FFFF_FFFF).to_bytes(8, "little")[:block_bytes].ljust(
        block_bytes, b"\x00"
    )


def normalize_payloads(payloads, n: int, block_bytes: int) -> np.ndarray:
    """Validate and zero-pad a payload batch to ``(n, block_bytes)`` uint8.

    Shared by both kernels so malformed payload batches fail identically:
    wrong row count or an over-wide payload raises ``ValueError``; narrow
    payloads are padded with zeros (the array counterpart of the scalar
    path's ``ljust``).
    """
    rows = np.asarray(payloads, dtype=np.uint8)
    if rows.ndim != 2 or rows.shape[0] != n:
        raise ValueError(
            f"payloads must have shape ({n}, <= {block_bytes}), got {rows.shape}"
        )
    if rows.shape[1] > block_bytes:
        raise ValueError(
            f"payload of {rows.shape[1]} bytes exceeds block size {block_bytes}"
        )
    if rows.shape[1] < block_bytes:
        padded = np.zeros((n, block_bytes), dtype=np.uint8)
        padded[:, : rows.shape[1]] = rows
        rows = padded
    return rows


def assign_levels(depths: Sequence[int], levels: int, z: int) -> list[int]:
    """Canonical greedy write-back placement (the shared kernel contract).

    ``depths`` are the deepest eligible path levels of the stash blocks,
    **sorted descending** (ties broken by ascending block address before
    calling).  Returns the assigned path level per block, or ``-1`` for
    blocks that stay in the stash.

    Equivalent to the textbook per-level greedy — level ``levels-1``
    down to the root, each taking up to ``z`` not-yet-placed blocks with
    ``depth >= level`` in canonical order — because with descending
    depths each level's eligible set is a prefix of the order, so a
    single pointer walk reproduces the per-level selection exactly.
    """
    assigned: list[int] = []
    level = levels - 1
    capacity = z
    for depth in depths:
        if depth < level:
            level = depth
            capacity = z
        if level < 0:
            assigned.append(-1)
            continue
        assigned.append(level)
        capacity -= 1
        if capacity == 0:
            level -= 1
            capacity = z
    return assigned


def digest_state(
    geometry: TreeGeometry,
    n_blocks: int,
    posmap_leaves: np.ndarray,
    stash_addr: np.ndarray,
    stash_leaf: np.ndarray,
    stash_data: np.ndarray,
    bucket_addr: np.ndarray,
    bucket_leaf: np.ndarray,
    bucket_real_data: np.ndarray,
) -> str:
    """Canonical digest of full controller state (the equivalence contract).

    Covers the position map, the stash (sorted by address), and every
    real block in the tree in (bucket, slot) order — address, leaf, and
    payload bytes each.  Two controllers with equal digests hold
    bit-identical logical state; ciphertext bytes are deliberately
    outside the contract (the probabilistic cipher is fresh per write).

    ``stash_*`` must already be sorted by address; ``bucket_addr`` and
    ``bucket_leaf`` have shape ``(n_buckets, z)`` with ``DUMMY_ADDRESS``
    marking empty slots, and ``bucket_real_data`` carries only the real
    blocks' payload rows, in (bucket, slot) order — one row per valid
    slot, row-major.
    """
    h = hashlib.sha256()
    header = np.asarray(
        [geometry.levels, geometry.blocks_per_bucket, geometry.block_bytes, n_blocks],
        dtype=np.int64,
    )
    h.update(header.tobytes())
    h.update(np.ascontiguousarray(posmap_leaves, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(stash_addr, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(stash_leaf, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(stash_data, dtype=np.uint8).tobytes())
    mask = bucket_addr >= 0
    rows, slots = np.nonzero(mask)  # row-major: (bucket, slot) order
    h.update(rows.astype(np.int64).tobytes())
    h.update(slots.astype(np.int64).tobytes())
    h.update(np.ascontiguousarray(bucket_addr[mask], dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(bucket_leaf[mask], dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(bucket_real_data, dtype=np.uint8).tobytes())
    return h.hexdigest()


class PathORAM:
    """Single-tree Path ORAM with a flat (on-chip) position map.

    Args:
        geometry: Tree shape (levels, Z, block size).
        n_blocks: Number of addressable program blocks; must fit the tree.
        key: Encryption key for bucket ciphertexts (random if omitted).
        seed: Seed for leaf remapping randomness.
        stash_capacity: Optional hard stash bound (raises on overflow).
        cipher: Bucket cipher; defaults to a fresh
            :class:`~repro.oram.encryption.ProbabilisticCipher` (the
            security demos need ciphertext freshness).  Pass a
            :class:`~repro.oram.encryption.NullCipher` for simulation
            runs where only data movement matters.
    """

    def __init__(
        self,
        geometry: TreeGeometry,
        n_blocks: int,
        key: bytes | None = None,
        seed: int = 0,
        stash_capacity: int | None = None,
        cipher=None,
    ) -> None:
        if n_blocks <= 0:
            raise ValueError(f"n_blocks must be positive, got {n_blocks}")
        if n_blocks > geometry.n_slots:
            raise ValueError(
                f"{n_blocks} blocks exceed tree capacity of {geometry.n_slots} slots"
            )
        self.geometry = geometry
        self.n_blocks = n_blocks
        if cipher is None:
            cipher = ProbabilisticCipher(key if key is not None else os.urandom(16))
        self._cipher = cipher
        self.position_map = FlatPositionMap(n_blocks, geometry.n_leaves, seed=seed)
        self.stash = Stash(capacity_blocks=stash_capacity)
        self.memory = UntrustedMemory(geometry.n_buckets)
        self.stats = AccessStats()
        self._initialize_tree()

    # ------------------------------------------------------------------
    # Public interface: the cache-line request/response surface exposed to
    # the processor (paper Section 3), plus dummy accesses.
    # ------------------------------------------------------------------

    def read(self, address: int) -> bytes:
        """Read one block; performs a full path access."""
        block = self._access(address, new_data=None)
        self.stats.reads += 1
        return block

    def write(self, address: int, data: bytes) -> None:
        """Write one block; performs a full path access."""
        self._access(address, new_data=data)
        self.stats.writes += 1

    def update(self, address: int, mutate) -> bytes:
        """Read-modify-write one block in a *single* path access.

        ``mutate`` receives the current payload bytes and returns the new
        payload.  This is how recursive position-map blocks are maintained:
        the real controller updates the label in-flight between the path
        read and the path write-back, costing one path, not two.
        """
        new_data = self._access(address, new_data=None, mutate=mutate)
        self.stats.writes += 1
        return new_data

    def dummy_access(self) -> None:
        """Indistinguishable dummy access: read+write a random path."""
        leaf = self.position_map.random_leaf()
        self._read_path(leaf)
        self._write_path(leaf)
        self.stats.dummies += 1
        self._sample_stash()

    def access_batch(
        self,
        addresses: np.ndarray,
        is_write: np.ndarray | None = None,
        payloads: np.ndarray | None = None,
    ) -> np.ndarray:
        """Service a batch of accesses; returns the resulting block values.

        ``addresses`` is an int array where :data:`~repro.oram.block.DUMMY_ADDRESS`
        (-1) marks a dummy access; ``is_write`` flags writes (ignored for
        dummies); ``payloads`` optionally carries write data as a
        ``(n, block_bytes)`` uint8 array, defaulting to
        :func:`default_payload` per address.  The result is a
        ``(n, block_bytes)`` uint8 array — zeros for dummy rows.

        The reference kernel services the batch as a scalar loop; the
        batched engine overrides this with the array implementation.
        The *outputs and final state* are identical by contract.
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        writes = (
            np.zeros(addresses.shape[0], dtype=bool)
            if is_write is None
            else np.asarray(is_write, dtype=bool)
        )
        block_bytes = self.geometry.block_bytes
        if payloads is not None:
            payloads = normalize_payloads(payloads, addresses.shape[0], block_bytes)
        out = np.zeros((addresses.shape[0], block_bytes), dtype=np.uint8)
        for i, address in enumerate(addresses.tolist()):
            if address == DUMMY_ADDRESS:
                self.dummy_access()
                continue
            if writes[i]:
                if payloads is not None:
                    data = bytes(payloads[i])
                else:
                    data = default_payload(address, block_bytes)
                self.write(address, data)
                out[i] = np.frombuffer(data.ljust(block_bytes, b"\x00"), dtype=np.uint8)
            else:
                out[i] = np.frombuffer(self.read(address), dtype=np.uint8)
        return out

    def run_trace(
        self,
        addresses: np.ndarray,
        is_write: np.ndarray | None = None,
        payloads: np.ndarray | None = None,
        batch_size: int = 4096,
        collect: bool = False,
    ) -> np.ndarray | None:
        """Replay a whole access trace through :meth:`access_batch`.

        Processes ``addresses`` in ``batch_size`` chunks; with
        ``collect=True`` returns the concatenated block values (memory
        proportional to the trace — leave False for million-access runs
        and read :attr:`stats` instead).  Shared verbatim by the batched
        engine, which overrides :meth:`_access_batch_collect` to skip
        materializing result rows entirely when not collecting.
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        chunks: list[np.ndarray] = []
        for start in range(0, addresses.shape[0], batch_size):
            stop = start + batch_size
            result = self._access_batch_collect(
                addresses[start:stop],
                None if is_write is None else is_write[start:stop],
                None if payloads is None else payloads[start:stop],
                collect,
            )
            if collect:
                chunks.append(result)
        if not collect:
            return None
        if not chunks:
            return np.zeros((0, self.geometry.block_bytes), dtype=np.uint8)
        return np.concatenate(chunks, axis=0)

    def _access_batch_collect(
        self,
        addresses: np.ndarray,
        is_write: np.ndarray | None,
        payloads: np.ndarray | None,
        collect: bool,
    ) -> np.ndarray | None:
        """One trace chunk; ``collect=False`` may skip building results."""
        result = self.access_batch(addresses, is_write, payloads)
        return result if collect else None

    def state_checksum(self) -> str:
        """Canonical digest of position map + stash + tree (see :func:`digest_state`)."""
        geometry = self.geometry
        z = geometry.blocks_per_bucket
        block_bytes = geometry.block_bytes
        bucket_addr = np.full((geometry.n_buckets, z), DUMMY_ADDRESS, dtype=np.int64)
        bucket_leaf = np.zeros((geometry.n_buckets, z), dtype=np.int64)
        real_rows: list[bytes] = []
        for bucket in range(geometry.n_buckets):
            for slot, block in enumerate(self._load_bucket(bucket)):
                bucket_addr[bucket, slot] = block.address
                bucket_leaf[bucket, slot] = block.leaf
                real_rows.append(block.data)
        bucket_data = np.zeros((len(real_rows), block_bytes), dtype=np.uint8)
        for row, data in enumerate(real_rows):
            bucket_data[row] = np.frombuffer(data, dtype=np.uint8)
        stash_blocks = sorted(self.stash.blocks(), key=lambda b: b.address)
        stash_addr = np.asarray([b.address for b in stash_blocks], dtype=np.int64)
        stash_leaf = np.asarray([b.leaf for b in stash_blocks], dtype=np.int64)
        stash_data = np.zeros((len(stash_blocks), block_bytes), dtype=np.uint8)
        for row, block in enumerate(stash_blocks):
            stash_data[row] = np.frombuffer(block.data, dtype=np.uint8)
        return digest_state(
            geometry,
            self.n_blocks,
            self.position_map.snapshot(),
            stash_addr,
            stash_leaf,
            stash_data,
            bucket_addr,
            bucket_leaf,
            bucket_data,
        )

    def check_invariant(self) -> None:
        """Verify the Path ORAM invariant for every block (test hook).

        Every block must be either in the stash or in some bucket on the
        path from the root to its mapped leaf.  O(n_blocks * levels); only
        call on small trees.
        """
        located: dict[int, int] = {}
        for bucket_index in range(self.geometry.n_buckets):
            for block in self._load_bucket(bucket_index):
                located[block.address] = bucket_index
        for address in range(self.n_blocks):
            if address in self.stash:
                continue
            bucket_index = located.get(address)
            if bucket_index is None:
                # Never-written blocks may not exist anywhere yet.
                continue
            leaf = self.position_map.lookup(address)
            path = path_bucket_indices(self.geometry, leaf)
            if bucket_index not in path:
                raise AssertionError(
                    f"block {address} (leaf {leaf}) found in off-path bucket "
                    f"{bucket_index}"
                )

    # ------------------------------------------------------------------
    # Core access algorithm (paper Section 3.1)
    # ------------------------------------------------------------------

    def _access(self, address: int, new_data: bytes | None, mutate=None) -> bytes:
        if not 0 <= address < self.n_blocks:
            raise KeyError(f"address {address} outside [0, {self.n_blocks})")
        old_leaf, _new_leaf = self.position_map.remap(address)
        self._read_path(old_leaf)
        stashed = self.stash.get(address)
        if stashed is None:
            # First touch: materialize a zero block.
            data = bytes(self.geometry.block_bytes)
        else:
            data = stashed.data
        if mutate is not None:
            new_data = mutate(data)
        if new_data is not None:
            if len(new_data) > self.geometry.block_bytes:
                raise ValueError(
                    f"payload of {len(new_data)} bytes exceeds block size "
                    f"{self.geometry.block_bytes}"
                )
            data = bytes(new_data).ljust(self.geometry.block_bytes, b"\x00")
        # Re-stash under the *new* leaf so write-back places it correctly.
        self.stash.add(
            Block(address=address, leaf=self.position_map.lookup(address), data=data)
        )
        self._write_path(old_leaf)
        self._sample_stash()
        return data

    def _read_path(self, leaf: int) -> None:
        for bucket_index in path_bucket_indices(self.geometry, leaf):
            for block in self._load_bucket(bucket_index):
                self.stash.add(block)
            self.stats.buckets_touched += 1

    def _write_path(self, leaf: int) -> None:
        """Canonical greedy write-back (see :func:`assign_levels`)."""
        path = path_bucket_indices(self.geometry, leaf)
        blocks = self.stash.blocks()
        depths = [
            common_prefix_level(self.geometry, leaf, block.leaf) for block in blocks
        ]
        order = sorted(
            range(len(blocks)), key=lambda i: (-depths[i], blocks[i].address)
        )
        placement = assign_levels(
            [depths[i] for i in order],
            self.geometry.levels,
            self.geometry.blocks_per_bucket,
        )
        chosen: list[list[Block]] = [[] for _ in range(self.geometry.levels)]
        for rank, level in zip(order, placement):
            if level >= 0:
                chosen[level].append(blocks[rank])
        for level in range(self.geometry.levels - 1, -1, -1):
            for block in chosen[level]:
                self.stash.remove(block.address)
            self._store_bucket(path[level], chosen[level])
            self.stats.buckets_touched += 1

    # ------------------------------------------------------------------
    # Bucket (de)serialization + encryption
    # ------------------------------------------------------------------

    def _initialize_tree(self) -> None:
        """Fill every bucket with encrypted dummy blocks (program start)."""
        for bucket_index in range(self.geometry.n_buckets):
            self._store_bucket(bucket_index, [])

    def _load_bucket(self, bucket_index: int) -> list[Block]:
        ciphertext = self.memory.read(bucket_index)
        if ciphertext is None:
            return []
        plaintext = self._cipher.decrypt(ciphertext)
        return deserialize_bucket(
            plaintext, self.geometry.blocks_per_bucket, self.geometry.block_bytes
        )

    def _store_bucket(self, bucket_index: int, blocks: list[Block]) -> None:
        plaintext = serialize_bucket(
            blocks, self.geometry.blocks_per_bucket, self.geometry.block_bytes
        )
        self.memory.write(bucket_index, self._cipher.encrypt(plaintext))

    def _sample_stash(self) -> None:
        self.stats.record_stash(len(self.stash))


def make_path_oram(
    config: ORAMConfig | None = None,
    n_blocks: int | None = None,
    seed: int = 0,
    stash_capacity: int | None = None,
    mode: str = "reference",
    cipher=None,
):
    """Convenience constructor from an :class:`ORAMConfig`.

    Uses the data-ORAM geometry with a flat position map (no recursion);
    see :mod:`repro.oram.recursion` for the recursive composition.
    ``mode`` selects the kernel: ``"reference"`` (default, the scalar
    controller above — required by the security demos, which probe its
    encrypted :class:`~repro.oram.backend.UntrustedMemory`) or ``"fast"``
    (the batched array engine in :mod:`repro.oram.engine`).
    """
    if mode not in ("fast", "reference"):
        raise ValueError(f"mode must be 'fast' or 'reference', got {mode!r}")
    if config is None:
        from repro.oram.config import TEST_ORAM_CONFIG

        config = TEST_ORAM_CONFIG
    geometry = config.data_geometry()
    if n_blocks is None:
        n_blocks = min(config.n_blocks, geometry.n_slots // 2)
    if mode == "fast":
        if cipher is not None and not getattr(cipher, "is_null", False):
            raise ValueError(
                "mode='fast' keeps no ciphertext (implicit null cipher); pass "
                "cipher=None / a NullCipher, or use mode='reference'"
            )
        from repro.oram.engine import BatchedPathORAM

        return BatchedPathORAM(
            geometry, n_blocks, seed=seed, stash_capacity=stash_capacity
        )
    return PathORAM(
        geometry, n_blocks, seed=seed, stash_capacity=stash_capacity, cipher=cipher
    )
