"""Functional Path ORAM controller (Stefanov et al., CCS 2013; paper Section 3).

This is a complete, working Path ORAM: it stores encrypted buckets in
:class:`~repro.oram.backend.UntrustedMemory`, maintains the position map
and stash, and services reads/writes by reading a path, remapping the
block, and greedily writing the path back.  Dummy accesses — reads/writes
of a uniformly random path — are first-class citizens because the timing
protection schemes in :mod:`repro.core` depend on them.

The timing models elsewhere in the repository do not execute this
controller per access (that would be needlessly slow); they use the latency
and energy constants derived from its geometry in :mod:`repro.oram.timing`.
This module exists to (a) demonstrate the substrate end-to-end, (b) back
the security demos (probe adversary, malicious program), and (c) anchor the
property tests for the Path ORAM invariant.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.oram.backend import UntrustedMemory
from repro.oram.block import Block, deserialize_bucket, serialize_bucket
from repro.oram.config import ORAMConfig, TreeGeometry
from repro.oram.encryption import ProbabilisticCipher
from repro.oram.position_map import FlatPositionMap
from repro.oram.stash import Stash
from repro.oram.tree import common_prefix_level, path_bucket_indices


@dataclass
class AccessStats:
    """Counters accumulated by a :class:`PathORAM` instance."""

    reads: int = 0
    writes: int = 0
    dummies: int = 0
    buckets_touched: int = 0
    stash_peak: int = 0
    stash_occupancy_samples: list[int] = field(default_factory=list)

    @property
    def total_accesses(self) -> int:
        """Real plus dummy accesses."""
        return self.reads + self.writes + self.dummies


class PathORAM:
    """Single-tree Path ORAM with a flat (on-chip) position map.

    Args:
        geometry: Tree shape (levels, Z, block size).
        n_blocks: Number of addressable program blocks; must fit the tree.
        key: Encryption key for bucket ciphertexts (random if omitted).
        seed: Seed for leaf remapping randomness.
        stash_capacity: Optional hard stash bound (raises on overflow).
    """

    def __init__(
        self,
        geometry: TreeGeometry,
        n_blocks: int,
        key: bytes | None = None,
        seed: int = 0,
        stash_capacity: int | None = None,
    ) -> None:
        if n_blocks <= 0:
            raise ValueError(f"n_blocks must be positive, got {n_blocks}")
        if n_blocks > geometry.n_slots:
            raise ValueError(
                f"{n_blocks} blocks exceed tree capacity of {geometry.n_slots} slots"
            )
        self.geometry = geometry
        self.n_blocks = n_blocks
        self._cipher = ProbabilisticCipher(key if key is not None else os.urandom(16))
        self.position_map = FlatPositionMap(n_blocks, geometry.n_leaves, seed=seed)
        self.stash = Stash(capacity_blocks=stash_capacity)
        self.memory = UntrustedMemory(geometry.n_buckets)
        self.stats = AccessStats()
        self._initialize_tree()

    # ------------------------------------------------------------------
    # Public interface: the cache-line request/response surface exposed to
    # the processor (paper Section 3), plus dummy accesses.
    # ------------------------------------------------------------------

    def read(self, address: int) -> bytes:
        """Read one block; performs a full path access."""
        block = self._access(address, new_data=None)
        self.stats.reads += 1
        return block

    def write(self, address: int, data: bytes) -> None:
        """Write one block; performs a full path access."""
        self._access(address, new_data=data)
        self.stats.writes += 1

    def update(self, address: int, mutate) -> bytes:
        """Read-modify-write one block in a *single* path access.

        ``mutate`` receives the current payload bytes and returns the new
        payload.  This is how recursive position-map blocks are maintained:
        the real controller updates the label in-flight between the path
        read and the path write-back, costing one path, not two.
        """
        new_data = self._access(address, new_data=None, mutate=mutate)
        self.stats.writes += 1
        return new_data

    def dummy_access(self) -> None:
        """Indistinguishable dummy access: read+write a random path."""
        leaf = self.position_map.random_leaf()
        self._read_path(leaf)
        self._write_path(leaf)
        self.stats.dummies += 1
        self._sample_stash()

    def check_invariant(self) -> None:
        """Verify the Path ORAM invariant for every block (test hook).

        Every block must be either in the stash or in some bucket on the
        path from the root to its mapped leaf.  O(n_blocks * levels); only
        call on small trees.
        """
        located: dict[int, int] = {}
        for bucket_index in range(self.geometry.n_buckets):
            for block in self._load_bucket(bucket_index):
                located[block.address] = bucket_index
        for address in range(self.n_blocks):
            if address in self.stash:
                continue
            bucket_index = located.get(address)
            if bucket_index is None:
                # Never-written blocks may not exist anywhere yet.
                continue
            leaf = self.position_map.lookup(address)
            path = path_bucket_indices(self.geometry, leaf)
            if bucket_index not in path:
                raise AssertionError(
                    f"block {address} (leaf {leaf}) found in off-path bucket "
                    f"{bucket_index}"
                )

    # ------------------------------------------------------------------
    # Core access algorithm (paper Section 3.1)
    # ------------------------------------------------------------------

    def _access(self, address: int, new_data: bytes | None, mutate=None) -> bytes:
        if not 0 <= address < self.n_blocks:
            raise KeyError(f"address {address} outside [0, {self.n_blocks})")
        old_leaf, _new_leaf = self.position_map.remap(address)
        self._read_path(old_leaf)
        stashed = self.stash.get(address)
        if stashed is None:
            # First touch: materialize a zero block.
            data = bytes(self.geometry.block_bytes)
        else:
            data = stashed.data
        if mutate is not None:
            new_data = mutate(data)
        if new_data is not None:
            if len(new_data) > self.geometry.block_bytes:
                raise ValueError(
                    f"payload of {len(new_data)} bytes exceeds block size "
                    f"{self.geometry.block_bytes}"
                )
            data = bytes(new_data).ljust(self.geometry.block_bytes, b"\x00")
        # Re-stash under the *new* leaf so write-back places it correctly.
        self.stash.add(
            Block(address=address, leaf=self.position_map.lookup(address), data=data)
        )
        self._write_path(old_leaf)
        self._sample_stash()
        return data

    def _read_path(self, leaf: int) -> None:
        for bucket_index in path_bucket_indices(self.geometry, leaf):
            for block in self._load_bucket(bucket_index):
                self.stash.add(block)
            self.stats.buckets_touched += 1

    def _write_path(self, leaf: int) -> None:
        """Greedy write-back: deepest buckets grab eligible blocks first."""
        path = path_bucket_indices(self.geometry, leaf)
        # Group stashed blocks by the deepest level they may occupy on this
        # path (the common-prefix level of their leaf with the access leaf).
        eligible_by_level: dict[int, list[Block]] = {}
        for block in self.stash.blocks():
            depth = common_prefix_level(self.geometry, leaf, block.leaf)
            eligible_by_level.setdefault(depth, []).append(block)
        placed_addresses: list[int] = []
        for level in range(self.geometry.levels - 1, -1, -1):
            chosen: list[Block] = []
            # A block whose deepest eligible level is >= this level fits here.
            for depth in range(self.geometry.levels - 1, level - 1, -1):
                candidates = eligible_by_level.get(depth)
                while candidates and len(chosen) < self.geometry.blocks_per_bucket:
                    chosen.append(candidates.pop())
                if len(chosen) >= self.geometry.blocks_per_bucket:
                    break
            for block in chosen:
                placed_addresses.append(block.address)
            self._store_bucket(path[level], chosen)
            self.stats.buckets_touched += 1
        for address in placed_addresses:
            self.stash.remove(address)

    # ------------------------------------------------------------------
    # Bucket (de)serialization + encryption
    # ------------------------------------------------------------------

    def _initialize_tree(self) -> None:
        """Fill every bucket with encrypted dummy blocks (program start)."""
        for bucket_index in range(self.geometry.n_buckets):
            self._store_bucket(bucket_index, [])

    def _load_bucket(self, bucket_index: int) -> list[Block]:
        ciphertext = self.memory.read(bucket_index)
        if ciphertext is None:
            return []
        plaintext = self._cipher.decrypt(ciphertext)
        return deserialize_bucket(
            plaintext, self.geometry.blocks_per_bucket, self.geometry.block_bytes
        )

    def _store_bucket(self, bucket_index: int, blocks: list[Block]) -> None:
        plaintext = serialize_bucket(
            blocks, self.geometry.blocks_per_bucket, self.geometry.block_bytes
        )
        self.memory.write(bucket_index, self._cipher.encrypt(plaintext))

    def _sample_stash(self) -> None:
        occupancy = len(self.stash)
        self.stats.stash_peak = max(self.stats.stash_peak, occupancy)
        self.stats.stash_occupancy_samples.append(occupancy)


def make_path_oram(
    config: ORAMConfig | None = None,
    n_blocks: int | None = None,
    seed: int = 0,
    stash_capacity: int | None = None,
) -> PathORAM:
    """Convenience constructor from an :class:`ORAMConfig`.

    Uses the data-ORAM geometry with a flat position map (no recursion);
    see :mod:`repro.oram.recursion` for the recursive composition.
    """
    if config is None:
        from repro.oram.config import TEST_ORAM_CONFIG

        config = TEST_ORAM_CONFIG
    geometry = config.data_geometry()
    if n_blocks is None:
        n_blocks = min(config.n_blocks, geometry.n_slots // 2)
    return PathORAM(geometry, n_blocks, seed=seed, stash_capacity=stash_capacity)
