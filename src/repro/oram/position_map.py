"""Position maps: the block-address -> leaf-label mapping.

The flat map models the on-chip key-value memory inside the ORAM controller
(paper Section 3).  For large ORAMs the paper stores the map recursively in
smaller ORAMs; :mod:`repro.oram.recursion` composes flat maps stored inside
:class:`~repro.oram.path_oram.PathORAM` instances for that.
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import make_rng


class FlatPositionMap:
    """Dense in-memory position map with random (re)mapping.

    Every block starts mapped to an independently uniform leaf, and
    :meth:`remap` assigns a fresh uniform leaf — the "critical security
    step" of Path ORAM (Section 3.1).
    """

    def __init__(self, n_blocks: int, n_leaves: int, seed: int = 0) -> None:
        if n_blocks <= 0:
            raise ValueError(f"n_blocks must be positive, got {n_blocks}")
        if n_leaves <= 0:
            raise ValueError(f"n_leaves must be positive, got {n_leaves}")
        self._rng = make_rng(seed, "position-map")
        self._n_leaves = n_leaves
        self._leaves = self._rng.integers(0, n_leaves, size=n_blocks, dtype=np.int64)

    def __len__(self) -> int:
        return len(self._leaves)

    @property
    def n_leaves(self) -> int:
        """Number of leaves blocks can map to."""
        return self._n_leaves

    def lookup(self, address: int) -> int:
        """Current leaf label for ``address``."""
        self._check(address)
        return int(self._leaves[address])

    def remap(self, address: int) -> tuple[int, int]:
        """Assign a fresh uniform leaf; return ``(old_leaf, new_leaf)``."""
        self._check(address)
        old_leaf = int(self._leaves[address])
        new_leaf = int(self._rng.integers(0, self._n_leaves))
        self._leaves[address] = new_leaf
        return old_leaf, new_leaf

    def random_leaf(self) -> int:
        """A uniform leaf label (used for dummy accesses)."""
        return int(self._rng.integers(0, self._n_leaves))

    # ------------------------------------------------------------------
    # Batched surface (the array engine's access path).  numpy draws a
    # sized ``integers`` request element-by-element with the same bounded
    # generator as repeated scalar calls, so one ``draw_leaves(n)`` call
    # consumes the *identical* random stream as ``n`` scalar
    # ``remap``/``random_leaf`` calls — the property the batched/reference
    # kernel equivalence rests on.
    # ------------------------------------------------------------------

    def draw_leaves(self, n: int) -> np.ndarray:
        """Draw ``n`` uniform leaf labels in one call (advances the RNG)."""
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        return self._rng.integers(0, self._n_leaves, size=n, dtype=np.int64)

    def lookup_batch(self, addresses: np.ndarray) -> np.ndarray:
        """Current leaf labels for an address array (no remapping)."""
        return self._leaves[addresses]

    def replace(self, address: int, new_leaf: int) -> int:
        """Install a caller-drawn leaf; return the old one.

        This is :meth:`remap` with the randomness hoisted out so a batch
        engine can pre-draw all of a batch's leaves with one RNG call.
        """
        self._check(address)
        old_leaf = int(self._leaves[address])
        self._leaves[address] = new_leaf
        return old_leaf

    def snapshot(self) -> np.ndarray:
        """Copy of the full leaf array (for state checksums)."""
        return self._leaves.copy()

    def _check(self, address: int) -> None:
        if not 0 <= address < len(self._leaves):
            raise KeyError(f"address {address} outside [0, {len(self._leaves)})")
