"""Merkle-tree integrity verification for Path ORAM.

The paper defers integrity to Ren et al. (HPEC 2013) and assumes in the
threat model (Section 4.3) that DRAM tampering detection is out of scope
for the timing-channel scheme itself.  We implement the standard
construction anyway as the natural extension: a hash tree mirroring the
ORAM tree, where each node's digest covers its bucket ciphertext and its
children's digests.  Because a Path ORAM access already touches a full
root-to-leaf path, verification and update piggyback on the access with no
extra memory touches — the key observation that makes integrity cheap for
tree ORAMs.
"""

from __future__ import annotations

import hashlib

from repro.oram.backend import UntrustedMemory
from repro.oram.config import TreeGeometry
from repro.oram.tree import path_bucket_indices

_EMPTY = b"\x00" * 32


class TamperDetectedError(RuntimeError):
    """Raised when a bucket's ciphertext fails verification."""


class MerkleTree:
    """Hash tree over the bucket array of a Path ORAM.

    Only the root digest needs trusted on-chip storage; all other digests
    can be recomputed/verified from the path being accessed.  For
    simplicity we keep the full digest array in this model and treat
    ``root_digest`` as the trusted register.
    """

    def __init__(self, geometry: TreeGeometry, memory: UntrustedMemory) -> None:
        self.geometry = geometry
        self.memory = memory
        self._digests: list[bytes] = [_EMPTY] * geometry.n_buckets
        self.rebuild()

    @property
    def root_digest(self) -> bytes:
        """The trusted on-chip root hash."""
        return self._digests[0]

    def rebuild(self) -> None:
        """Recompute every digest bottom-up from current memory contents."""
        for bucket in range(self.geometry.n_buckets - 1, -1, -1):
            self._digests[bucket] = self._node_digest(bucket)

    def verify_path(self, leaf: int) -> None:
        """Verify every bucket on the path to ``leaf`` against the root.

        Raises :class:`TamperDetectedError` on any mismatch.  Mirrors the
        check an ORAM controller performs while streaming the path in.
        """
        for bucket in reversed(path_bucket_indices(self.geometry, leaf)):
            expected = self._digests[bucket]
            actual = self._node_digest(bucket)
            if actual != expected:
                raise TamperDetectedError(
                    f"integrity violation at bucket {bucket} on path to leaf {leaf}"
                )

    def update_path(self, leaf: int) -> None:
        """Recompute digests along the path after a path write-back."""
        for bucket in reversed(path_bucket_indices(self.geometry, leaf)):
            self._digests[bucket] = self._node_digest(bucket)

    def _node_digest(self, bucket: int) -> bytes:
        ciphertext = self.memory.raw_read(bucket) or b""
        left = 2 * bucket + 1
        right = 2 * bucket + 2
        left_digest = self._digests[left] if left < self.geometry.n_buckets else _EMPTY
        right_digest = self._digests[right] if right < self.geometry.n_buckets else _EMPTY
        return hashlib.sha256(ciphertext + left_digest + right_digest).digest()


class VerifiedPathORAM:
    """Wrapper adding integrity verification to a :class:`PathORAM`.

    Reads verify the accessed path before trusting its contents; writes
    refresh the path digests afterward.  Tampering with any bucket between
    accesses is detected on the next access that touches it.
    """

    def __init__(self, oram) -> None:
        self._oram = oram
        self._tree = MerkleTree(oram.geometry, oram.memory)

    @property
    def oram(self):
        """The wrapped ORAM."""
        return self._oram

    @property
    def root_digest(self) -> bytes:
        """Trusted root hash."""
        return self._tree.root_digest

    def read(self, address: int) -> bytes:
        """Verified read."""
        leaf = self._oram.position_map.lookup(address)
        self._tree.verify_path(leaf)
        data = self._oram.read(address)
        self._tree.update_path(leaf)
        return data

    def write(self, address: int, data: bytes) -> None:
        """Verified write."""
        leaf = self._oram.position_map.lookup(address)
        self._tree.verify_path(leaf)
        self._oram.write(address, data)
        self._tree.update_path(leaf)

    def dummy_access(self) -> None:
        """Verified dummy access (verification on the random path)."""
        leaf = self._oram.position_map.random_leaf()
        self._tree.verify_path(leaf)
        # Perform the dummy on the same leaf so digests match the write-back.
        self._oram._read_path(leaf)
        self._oram._write_path(leaf)
        self._oram.stats.dummies += 1
        self._tree.update_path(leaf)
