"""The Path ORAM stash: on-chip overflow storage for in-flight blocks.

Between the path read and path write-back of an access, all real blocks on
the path live in the stash; blocks that cannot be evicted back onto the
path (because their leaf diverges too early) remain stashed.  Path ORAM's
security/performance argument is that with adequate Z the stash occupancy
stays small with overwhelming probability — our property tests check this
empirically.
"""

from __future__ import annotations

from repro.oram.block import Block


class Stash:
    """Address-keyed block store with occupancy tracking."""

    def __init__(self, capacity_blocks: int | None = None) -> None:
        self._blocks: dict[int, Block] = {}
        self._capacity = capacity_blocks
        self.max_occupancy = 0

    def __len__(self) -> int:
        return len(self._blocks)

    def __contains__(self, address: int) -> bool:
        return address in self._blocks

    def add(self, block: Block) -> None:
        """Insert or replace the block for ``block.address``."""
        if block.is_dummy:
            raise ValueError("dummy blocks are never stashed")
        self._blocks[block.address] = block
        self.max_occupancy = max(self.max_occupancy, len(self._blocks))
        if self._capacity is not None and len(self._blocks) > self._capacity:
            raise StashOverflowError(
                f"stash exceeded capacity of {self._capacity} blocks"
            )

    def get(self, address: int) -> Block | None:
        """Return the stashed block for ``address``, if any."""
        return self._blocks.get(address)

    def remove(self, address: int) -> Block:
        """Remove and return the block for ``address``."""
        return self._blocks.pop(address)

    def addresses(self) -> list[int]:
        """Snapshot of stashed addresses (stable iteration order)."""
        return list(self._blocks)

    def blocks(self) -> list[Block]:
        """Snapshot of stashed blocks."""
        return list(self._blocks.values())


class StashOverflowError(RuntimeError):
    """Raised when a capacity-bounded stash overflows.

    A real ORAM controller would have to stall or violate obliviousness at
    this point; parameterizations are chosen so this never fires.
    """
