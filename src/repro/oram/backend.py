"""Untrusted external memory holding the encrypted ORAM tree.

This models the DRAM DIMM the secure processor shares with the rest of the
platform.  Buckets are stored at fixed locations (heap index), which is
exactly what the Section 3.2 probe attack relies on: an adversary who can
read physical memory learns when an ORAM access happened by watching the
root bucket's ciphertext change.  :meth:`UntrustedMemory.raw_read` exposes
that adversarial view; the honest controller only uses read/write.
"""

from __future__ import annotations


class UntrustedMemory:
    """Bucket-indexed ciphertext store with adversarial observation hooks."""

    def __init__(self, n_buckets: int) -> None:
        if n_buckets <= 0:
            raise ValueError(f"n_buckets must be positive, got {n_buckets}")
        self._buckets: list[bytes | None] = [None] * n_buckets
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0

    def __len__(self) -> int:
        return len(self._buckets)

    def read(self, bucket_index: int) -> bytes | None:
        """Honest-controller read of one encrypted bucket."""
        self._check(bucket_index)
        ciphertext = self._buckets[bucket_index]
        self.reads += 1
        if ciphertext is not None:
            self.bytes_read += len(ciphertext)
        return ciphertext

    def write(self, bucket_index: int, ciphertext: bytes) -> None:
        """Honest-controller write of one encrypted bucket."""
        self._check(bucket_index)
        self._buckets[bucket_index] = bytes(ciphertext)
        self.writes += 1
        self.bytes_written += len(ciphertext)

    def raw_read(self, bucket_index: int) -> bytes | None:
        """Adversarial read: does not perturb controller statistics.

        Models a malicious co-tenant issuing DMA/software reads to the
        shared DIMM (Section 3.2).  Returns the current ciphertext bytes.
        """
        self._check(bucket_index)
        ciphertext = self._buckets[bucket_index]
        return None if ciphertext is None else bytes(ciphertext)

    def _check(self, bucket_index: int) -> None:
        if not 0 <= bucket_index < len(self._buckets):
            raise IndexError(
                f"bucket {bucket_index} outside [0, {len(self._buckets)})"
            )
