"""Derivation of ORAM access latency, bytes moved, and energy.

The paper reports (Sections 3.1, 9.1.2, 9.1.4), for its 4 GB / Z=3 /
3-level-recursion configuration on 2 channels of DDR3-1333 with 16 B/DRAM
cycle of pin bandwidth:

* 24.2 KB transferred per access (12.1 KB per path direction),
* 1488 processor cycles (= 1984 DRAM cycles at 1.334 GHz) per access,
* 984 nJ per access = ``2 * 758 * (AES 0.416 + stash 0.134) + 1984 * 0.076``.

``derive_timing`` reproduces that chain from first principles: path bytes
come from the tree geometries, DRAM cycles from pin bandwidth plus a
per-bucket row-activation overhead supplied by the DDR3-lite model, and
energy from the Table 2 coefficients.  ``PAPER_ORAM_TIMING`` pins the
paper's exact constants for use by the timing simulator; calibration tests
assert the derived values agree with the pinned ones to within a few
percent.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.oram.config import ORAMConfig, PAPER_ORAM_CONFIG
from repro.oram.encryption import chunk_count
from repro.util.bitops import ceil_div


@dataclass(frozen=True)
class DramLinkParameters:
    """The memory-link facts the ORAM latency derivation needs.

    Defaults follow Table 1: DDR3-1333 on 2 channels rate-matched by a
    1.334 GHz SDR controller clock, 16 bytes per DRAM cycle of pin
    bandwidth, and a 1 GHz processor clock.
    """

    cpu_clock_hz: float = 1.0e9
    dram_clock_hz: float = 1.334e9
    bytes_per_dram_cycle: int = 16
    #: Average extra DRAM cycles per bucket fetched, covering row
    #: activation/precharge that cannot be hidden behind the streaming
    #: transfer.  Derived from the DDR3-lite model in repro.memory.dram.
    row_overhead_cycles_per_bucket: float = 2.6

    @property
    def cpu_cycles_per_dram_cycle(self) -> float:
        """Clock-domain conversion factor (< 1: DRAM clock is faster)."""
        return self.cpu_clock_hz / self.dram_clock_hz


@dataclass(frozen=True)
class ORAMTiming:
    """Per-access cost constants consumed by the timing simulator."""

    latency_cycles: int
    bytes_per_access: int
    dram_cycles_per_access: int
    energy_nj: float

    def describe(self) -> str:
        """One-line summary mirroring the paper's reporting style."""
        return (
            f"ORAM access: {self.latency_cycles} CPU cycles, "
            f"{self.bytes_per_access / 1024:.1f} KB moved, "
            f"{self.energy_nj:.0f} nJ"
        )


def timing_from_counts(
    total_bytes: int,
    buckets_touched: int,
    link: DramLinkParameters | None = None,
    aes_nj_per_chunk: float = 0.416,
    stash_nj_per_chunk: float = 0.134,
    dram_ctrl_nj_per_cycle: float = 0.076,
) -> ORAMTiming:
    """Latency/energy chain from per-access byte and bucket counts.

    This is steps 2-4 of the derivation (DRAM cycles from pin bandwidth
    plus per-bucket row overhead, clock-domain conversion, Table 2
    energy), factored out so the counts can come either from the
    configured geometry (:func:`derive_timing`) or from *measured*
    functional-engine traffic
    (:func:`repro.analysis.stash_scaling.validate_timing`) — the
    calibration that checks the constants the timing simulator takes on
    faith against what the executable substrate actually touches.
    """
    if link is None:
        link = DramLinkParameters()
    transfer_cycles = ceil_div(total_bytes, link.bytes_per_dram_cycle)
    dram_cycles = transfer_cycles + int(
        round(buckets_touched * link.row_overhead_cycles_per_bucket)
    )
    cpu_cycles = int(round(dram_cycles * link.cpu_cycles_per_dram_cycle))
    chunks = chunk_count(total_bytes)
    energy_nj = (
        chunks * (aes_nj_per_chunk + stash_nj_per_chunk)
        + dram_cycles * dram_ctrl_nj_per_cycle
    )
    return ORAMTiming(
        latency_cycles=cpu_cycles,
        bytes_per_access=total_bytes,
        dram_cycles_per_access=dram_cycles,
        energy_nj=energy_nj,
    )


def derive_timing(
    config: ORAMConfig | None = None,
    link: DramLinkParameters | None = None,
    aes_nj_per_chunk: float = 0.416,
    stash_nj_per_chunk: float = 0.134,
    dram_ctrl_nj_per_cycle: float = 0.076,
) -> ORAMTiming:
    """Derive per-access timing/energy from geometry and link parameters.

    The derivation chain (matching Section 9.1.2/9.1.4):

    1. path bytes per direction = sum over all ORAM trees of
       ``levels * (Z * block + header)``;
    2. DRAM cycles = total bytes / pin bandwidth, plus row overhead per
       bucket touched (read + write per bucket);
    3. CPU cycles = DRAM cycles converted through the clock ratio;
    4. energy = chunks * (AES + stash) + DRAM cycles * controller energy.
    """
    if config is None:
        config = PAPER_ORAM_CONFIG

    geometries = config.all_geometries()
    path_bytes_one_way = sum(geometry.path_bytes for geometry in geometries)
    total_bytes = 2 * path_bytes_one_way
    buckets_touched = 2 * sum(geometry.levels for geometry in geometries)
    return timing_from_counts(
        total_bytes,
        buckets_touched,
        link=link,
        aes_nj_per_chunk=aes_nj_per_chunk,
        stash_nj_per_chunk=stash_nj_per_chunk,
        dram_ctrl_nj_per_cycle=dram_ctrl_nj_per_cycle,
    )


def paper_timing() -> ORAMTiming:
    """The paper's exact reported constants (Sections 3.1, 9.1.2, 9.1.4).

    12.1 KB per direction = 758 sixteen-byte chunks each way; 1984 DRAM
    cycles at 1.334 GHz = 1488 CPU cycles at 1 GHz; energy
    ``2*758*(0.416+0.134) + 1984*0.076 = 984.6 nJ``.
    """
    chunks_per_direction = 758
    bytes_per_access = 2 * chunks_per_direction * 16
    dram_cycles = 1984
    energy_nj = 2 * chunks_per_direction * (0.416 + 0.134) + dram_cycles * 0.076
    return ORAMTiming(
        latency_cycles=1488,
        bytes_per_access=bytes_per_access,
        dram_cycles_per_access=dram_cycles,
        energy_nj=energy_nj,
    )


#: Constants used by every ORAM-based timing configuration in the paper.
PAPER_ORAM_TIMING = paper_timing()
