"""Batched array-backed Path ORAM engine (the fast kernel).

``BatchedPathORAM`` is the vectorized sibling of
:class:`~repro.oram.path_oram.PathORAM` (which stays as the
``mode="reference"`` oracle, mirroring the cache/timing kernel pairs).
Instead of serialized, encrypted :class:`~repro.oram.block.Block` lists
it stores the tree as flat numpy arrays — per-bucket-slot address and
leaf label (validity = address >= 0) — and services whole access batches
with a small, fixed number of array operations per access:

* **batch precompute** — one RNG call draws every access's uniform leaf
  (the same random stream as the reference's per-access draws), a scalar
  sweep resolves position-map reads/updates (sequentially dependent when
  a batch repeats an address), and one vectorized heap walk produces all
  path bucket indices (:func:`~repro.oram.tree.path_bucket_indices_batch`)
  plus the flattened slot indices of every path;
* **path read** — one ``take`` gathers the path's ``levels x Z`` slot
  metadata and a mask moves the real blocks into the stash;
* **write-back** — the canonical greedy placement (the
  :func:`~repro.oram.path_oram.assign_levels` pointer walk over
  common-prefix depths sorted (depth descending, address ascending)) is
  computed on the stash — which Path ORAM keeps tiny by construction,
  so plain-int ``bit_length`` arithmetic beats array ops there — and
  lands in the tree as one masked clear plus one scatter per metadata
  array.  The greedy decisions are the *same* as the reference's, block
  for block and slot for slot.

Two structural facts make this fast:

1. **Payloads never move.**  A block's bytes are only mutated by write/
   update accesses, never by path movement, so the engine keeps one
   payload slot per address (``_block_data``) and path reads/evictions
   shuffle 16 bytes of metadata per slot instead of copying block
   payloads around.  The per-(bucket, slot) payload demanded by the
   state digest is reconstructed through the address indirection.
2. **The stash is small with overwhelming probability** (the Path ORAM
   guarantee itself), so per-access stash work is O(stash) scalar ops,
   while all O(tree) state lives in numpy arrays.

The engine does not keep ciphertext: it is the simulation kernel, with
an implicit null cipher (the reference accepts
:class:`~repro.oram.encryption.NullCipher` for apples-to-apples
benchmarking).  Security demos that probe ciphertexts keep using the
reference controller's :class:`~repro.oram.backend.UntrustedMemory`.

Equivalence contract (enforced by ``tests/oram/test_equivalence.py`` and
the ``repro perf`` gate): after any access sequence, ``state_checksum()``
— position map, stash, and per-bucket slot-ordered plaintext blocks —
is bit-identical between the two kernels, as are returned block values.
"""

from __future__ import annotations

import numpy as np

from repro.oram.block import Block, DUMMY_ADDRESS
from repro.oram.config import TreeGeometry
from repro.oram.path_oram import (
    AccessStats,
    PathORAM,
    assign_levels,
    default_payload,
    digest_state,
    normalize_payloads,
)
from repro.oram.position_map import FlatPositionMap
from repro.oram.stash import StashOverflowError
from repro.oram.tree import path_bucket_indices, path_bucket_indices_batch


class _StashView:
    """Read-only dict-like view over the engine's stash.

    Keeps stash-consuming code (:mod:`repro.oram.background_eviction`,
    tests, examples) working unchanged against the array engine.
    """

    def __init__(self, engine: "BatchedPathORAM") -> None:
        self._engine = engine

    def __len__(self) -> int:
        return len(self._engine._stash)

    def __contains__(self, address: int) -> bool:
        return address in self._engine._stash

    def addresses(self) -> list[int]:
        """Stashed addresses (ascending, the canonical order)."""
        return sorted(self._engine._stash)

    def blocks(self) -> list[Block]:
        """Snapshot of stashed blocks (ascending address order)."""
        engine = self._engine
        return [
            Block(address=address, leaf=leaf, data=engine._payload(address))
            for address, leaf in sorted(engine._stash.items())
        ]


class BatchedPathORAM:
    """Array-backed Path ORAM servicing accesses in vectorized batches.

    Drop-in for :class:`~repro.oram.path_oram.PathORAM` at the logical
    level: same constructor shape, same scalar ``read``/``write``/
    ``update``/``dummy_access`` surface, same ``stats``, plus the batch
    surface (``access_batch``/``run_trace``) this engine exists for.

    Args:
        geometry: Tree shape (levels, Z, block size).
        n_blocks: Number of addressable program blocks; must fit the tree.
        seed: Seed for leaf remapping randomness (same stream as the
            reference kernel at equal seed).
        stash_capacity: Optional hard stash bound (raises on overflow).
    """

    mode = "fast"

    def __init__(
        self,
        geometry: TreeGeometry,
        n_blocks: int,
        seed: int = 0,
        stash_capacity: int | None = None,
    ) -> None:
        if n_blocks <= 0:
            raise ValueError(f"n_blocks must be positive, got {n_blocks}")
        if n_blocks > geometry.n_slots:
            raise ValueError(
                f"{n_blocks} blocks exceed tree capacity of {geometry.n_slots} slots"
            )
        self.geometry = geometry
        self.n_blocks = n_blocks
        self.position_map = FlatPositionMap(n_blocks, geometry.n_leaves, seed=seed)
        self.stats = AccessStats()
        self._stash_capacity = stash_capacity
        z = geometry.blocks_per_bucket
        # Flat (n_buckets * Z) slot metadata; slot s of bucket b lives at
        # b * Z + s.  Validity is address >= 0.
        self._slot_addr = np.full(geometry.n_buckets * z, DUMMY_ADDRESS, dtype=np.int64)
        self._slot_leaf = np.zeros(geometry.n_buckets * z, dtype=np.int64)
        # One payload slot per address (None = still the zero block);
        # path movement never touches payloads.
        self._block_data: list[bytes | None] = [None] * n_blocks
        self._zero_block = bytes(geometry.block_bytes)
        self._stash: dict[int, int] = {}  # address -> current leaf
        self.stash = _StashView(self)

    # ------------------------------------------------------------------
    # Scalar surface (drop-in for the reference controller)
    # ------------------------------------------------------------------

    def read(self, address: int) -> bytes:
        """Read one block; performs a full path access."""
        result = self.access_batch(np.asarray([address], dtype=np.int64))
        return result[0].tobytes()

    def write(self, address: int, data: bytes) -> None:
        """Write one block; performs a full path access."""
        row = np.frombuffer(bytes(data), dtype=np.uint8).reshape(1, -1)
        self.access_batch(
            np.asarray([address], dtype=np.int64),
            is_write=np.asarray([True]),
            payloads=row,  # validated and zero-padded by normalize_payloads
        )

    def update(self, address: int, mutate) -> bytes:
        """Read-modify-write one block in a single path access."""
        result = self._access_batch_core(
            np.asarray([address], dtype=np.int64),
            writes=np.asarray([True]),
            payloads=None,
            mutators=[mutate],
            collect=True,
        )
        return result[0].tobytes()

    def dummy_access(self) -> None:
        """Indistinguishable dummy access: read+write a random path."""
        self.access_batch(np.asarray([DUMMY_ADDRESS], dtype=np.int64))

    # ------------------------------------------------------------------
    # Batch surface
    # ------------------------------------------------------------------

    def access_batch(
        self,
        addresses: np.ndarray,
        is_write: np.ndarray | None = None,
        payloads: np.ndarray | None = None,
    ) -> np.ndarray:
        """Service a batch of accesses; returns the resulting block values.

        Same contract as :meth:`repro.oram.path_oram.PathORAM.access_batch`:
        ``DUMMY_ADDRESS`` rows are dummy accesses, ``is_write`` flags
        writes, ``payloads`` (``(n, block_bytes)`` uint8) defaults to
        :func:`~repro.oram.path_oram.default_payload` per written
        address, and the result rows are the blocks' values after the
        access (zeros for dummies).
        """
        return self._access_batch_core(
            addresses, is_write, payloads, mutators=None, collect=True
        )

    # Chunking loop shared with the reference kernel; only the per-chunk
    # hook differs (the engine can skip materializing result rows).
    run_trace = PathORAM.run_trace

    def _access_batch_collect(
        self,
        addresses: np.ndarray,
        is_write: np.ndarray | None,
        payloads: np.ndarray | None,
        collect: bool,
    ) -> np.ndarray | None:
        return self._access_batch_core(
            addresses, is_write, payloads, mutators=None, collect=collect
        )

    # ------------------------------------------------------------------
    # State inspection (equivalence contract + tests)
    # ------------------------------------------------------------------

    def state_checksum(self) -> str:
        """Canonical digest of position map + stash + tree state."""
        z = self.geometry.blocks_per_bucket
        bucket_addr = self._slot_addr.reshape(-1, z)
        bucket_leaf = self._slot_leaf.reshape(-1, z)
        real = self._slot_addr[self._slot_addr >= 0]  # row-major = (bucket, slot)
        bucket_data = self._payload_matrix(real.tolist())
        stash_items = sorted(self._stash.items())
        stash_addr = np.asarray([a for a, _ in stash_items], dtype=np.int64)
        stash_leaf = np.asarray([leaf for _, leaf in stash_items], dtype=np.int64)
        stash_data = self._payload_matrix([a for a, _ in stash_items])
        return digest_state(
            self.geometry,
            self.n_blocks,
            self.position_map.snapshot(),
            stash_addr,
            stash_leaf,
            stash_data,
            bucket_addr,
            bucket_leaf,
            bucket_data,
        )

    def bucket_blocks(self, bucket_index: int) -> list[Block]:
        """Real blocks currently held by one bucket, in slot order."""
        z = self.geometry.blocks_per_bucket
        base = bucket_index * z
        blocks = []
        for slot in range(z):
            address = int(self._slot_addr[base + slot])
            if address >= 0:
                blocks.append(
                    Block(
                        address=address,
                        leaf=int(self._slot_leaf[base + slot]),
                        data=self._payload(address),
                    )
                )
        return blocks

    def check_invariant(self) -> None:
        """Verify the Path ORAM invariant for every block (test hook)."""
        z = self.geometry.blocks_per_bucket
        positions = np.nonzero(self._slot_addr >= 0)[0]
        located = {
            int(self._slot_addr[pos]): int(pos) // z for pos in positions.tolist()
        }
        for address in range(self.n_blocks):
            if address in self._stash:
                continue
            bucket_index = located.get(address)
            if bucket_index is None:
                continue
            leaf = self.position_map.lookup(address)
            path = path_bucket_indices(self.geometry, leaf)
            if bucket_index not in path:
                raise AssertionError(
                    f"block {address} (leaf {leaf}) found in off-path bucket "
                    f"{bucket_index}"
                )

    # ------------------------------------------------------------------
    # Core batch machinery
    # ------------------------------------------------------------------

    def _access_batch_core(
        self,
        addresses: np.ndarray,
        writes: np.ndarray | None,
        payloads: np.ndarray | None,
        mutators: list | None,
        collect: bool,
    ) -> np.ndarray | None:
        geometry = self.geometry
        levels = geometry.levels
        z = geometry.blocks_per_bucket
        block_bytes = geometry.block_bytes
        addresses = np.asarray(addresses, dtype=np.int64)
        n = addresses.shape[0]
        out = np.zeros((n, block_bytes), dtype=np.uint8) if collect else None
        if n == 0:
            return out
        real = addresses != DUMMY_ADDRESS
        bad = real & ((addresses < 0) | (addresses >= self.n_blocks))
        if np.any(bad):
            raise KeyError(
                f"address {int(addresses[bad][0])} outside [0, {self.n_blocks})"
            )
        write_list = (
            [False] * n
            if writes is None
            else np.asarray(writes, dtype=bool).tolist()
        )
        if payloads is not None:
            payloads = normalize_payloads(payloads, n, block_bytes)

        # Phase 1: one RNG call for every access's uniform leaf, then a
        # scalar sweep to resolve path leaves (position-map reads are
        # sequentially dependent when a batch repeats an address), then
        # one vectorized heap walk for all path bucket indices and the
        # flattened slot index window of every path.
        draws = self.position_map.draw_leaves(n)
        draw_list = draws.tolist()
        path_leaves = np.empty(n, dtype=np.int64)
        address_list = addresses.tolist()
        replace = self.position_map.replace
        for i, address in enumerate(address_list):
            if address == DUMMY_ADDRESS:
                path_leaves[i] = draw_list[i]
            else:
                path_leaves[i] = replace(address, draw_list[i])
        paths = path_bucket_indices_batch(geometry, path_leaves)
        flat_slots = (paths[:, :, None] * z + np.arange(z, dtype=np.int64)).reshape(
            n, levels * z
        )
        path_rows = paths.tolist()
        leaf_list = path_leaves.tolist()

        # Phase 2: per-access path read + canonical greedy write-back.
        # All O(tree) state is touched through a handful of array ops;
        # the O(stash) bookkeeping runs on plain ints (the stash is tiny
        # by the Path ORAM guarantee, where array-call overhead loses).
        slot_addr = self._slot_addr
        slot_leaf = self._slot_leaf
        stash = self._stash
        capacity = self._stash_capacity
        level_top = levels - 1
        occupancies = []
        for i, address in enumerate(address_list):
            window = flat_slots[i]
            # --- path read: gather slot metadata, stash the real blocks
            window_addr = slot_addr.take(window)
            present = np.nonzero(window_addr >= 0)[0]
            if present.size:
                stash.update(
                    zip(
                        window_addr.take(present).tolist(),
                        slot_leaf.take(window.take(present)).tolist(),
                    )
                )
            # --- serve the request out of the stash
            if address != DUMMY_ADDRESS:
                stash[address] = draw_list[i]  # remap to the fresh leaf
                mutate = mutators[i] if mutators is not None else None
                if mutate is not None:
                    current = self._payload(address)
                    new_data = mutate(current)
                    if len(new_data) > block_bytes:
                        raise ValueError(
                            f"payload of {len(new_data)} bytes exceeds block "
                            f"size {block_bytes}"
                        )
                    self._block_data[address] = bytes(new_data).ljust(
                        block_bytes, b"\x00"
                    )
                    self.stats.writes += 1
                elif write_list[i]:
                    if payloads is not None:
                        self._block_data[address] = payloads[i].tobytes()
                    else:
                        self._block_data[address] = default_payload(
                            address, block_bytes
                        )
                    self.stats.writes += 1
                else:
                    self.stats.reads += 1
                if collect:
                    out[i] = np.frombuffer(self._payload(address), dtype=np.uint8)
            else:
                self.stats.dummies += 1
            if capacity is not None and len(stash) > capacity:
                raise StashOverflowError(
                    f"stash exceeded capacity of {capacity} blocks"
                )
            # --- canonical greedy write-back (shared contract with the
            # reference kernel: depth descending, address ascending)
            slot_addr[window] = DUMMY_ADDRESS
            if stash:
                leaf = leaf_list[i]
                entries = []
                for block_address, block_leaf in stash.items():
                    differing = leaf ^ block_leaf
                    depth = (
                        level_top
                        if differing == 0
                        else level_top - differing.bit_length()
                    )
                    entries.append((-depth, block_address))
                entries.sort()
                placement = assign_levels(
                    [-negdepth for negdepth, _ in entries], levels, z
                )
                rows = path_rows[i]
                positions = []
                placed_addr = []
                placed_leaf = []
                slot = 0
                previous_level = -1
                for (_, block_address), level in zip(entries, placement):
                    if level < 0:
                        break  # depths are sorted: the rest stay stashed too
                    slot = slot + 1 if level == previous_level else 0
                    previous_level = level
                    positions.append(rows[level] * z + slot)
                    placed_addr.append(block_address)
                    placed_leaf.append(stash.pop(block_address))
                if positions:
                    slot_addr[positions] = placed_addr
                    slot_leaf[positions] = placed_leaf
            occupancies.append(len(stash))
        self.stats.buckets_touched += 2 * levels * n
        self.stats.record_stash_batch(np.asarray(occupancies, dtype=np.int64))
        return out

    # ------------------------------------------------------------------
    # Payload pool helpers
    # ------------------------------------------------------------------

    def _payload(self, address: int) -> bytes:
        data = self._block_data[address]
        return self._zero_block if data is None else data

    def _payload_matrix(self, addresses: list[int]) -> np.ndarray:
        rows = np.zeros((len(addresses), self.geometry.block_bytes), dtype=np.uint8)
        for row, address in enumerate(addresses):
            data = self._block_data[address]
            if data is not None:
                rows[row] = np.frombuffer(data, dtype=np.uint8)
        return rows
