"""Probabilistic encryption for ORAM buckets.

Path ORAM requires every bucket to be re-encrypted with *probabilistic*
encryption on every write (paper Section 3): encrypting the same plaintext
twice must yield unrelated-looking ciphertexts.  This property is what makes
dummy accesses indistinguishable from real ones — and, conversely, is what
the Section 3.2 root-bucket probe attack exploits to *measure* ORAM timing
(every access flips bits in the root bucket).

We simulate an AES-CTR-style scheme with a SHA-256 keystream: each
encryption draws a fresh 8-byte nonce, and the keystream is
``SHA256(key || nonce || counter)``.  This is deterministic given the nonce
(so tests are reproducible), has the ciphertext-freshness property the
security arguments need, and is explicitly a *simulation* of the paper's
fixed-latency AES-128 hardware, not production cryptography.
"""

from __future__ import annotations

import hashlib
import itertools

#: AES chunk granularity used by the paper's energy model (Section 9.1.4).
CHUNK_BYTES = 16

_NONCE_BYTES = 8


class NullCipher:
    """Zero-cost identity cipher for simulation-mode ORAM runs.

    The batched simulation engine (:mod:`repro.oram.engine`) and the
    throughput microbenchmarks care about data movement and stash
    dynamics, not ciphertext freshness; running the keystream there
    would only measure SHA-256.  ``NullCipher`` plugs into the same
    cipher slot with identity transforms and zero expansion, so the
    reference controller can be timed on equal footing with the array
    engine.  It is *never* a substitute for :class:`ProbabilisticCipher`
    in the security demos — a null-ciphered tree leaks bucket contents
    to the probe adversary by construction.
    """

    #: Marks ciphers whose ciphertext equals the plaintext (no freshness).
    is_null = True

    @property
    def overhead_bytes(self) -> int:
        """Ciphertext expansion (none)."""
        return 0

    def encrypt(self, plaintext: bytes) -> bytes:
        """Identity."""
        return bytes(plaintext)

    def decrypt(self, ciphertext: bytes) -> bytes:
        """Identity."""
        return bytes(ciphertext)


class ProbabilisticCipher:
    """Nonce-based stream cipher with fresh randomness per encryption."""

    is_null = False

    def __init__(self, key: bytes) -> None:
        if not key:
            raise ValueError("key must be non-empty")
        self._key = bytes(key)
        self._nonce_counter = itertools.count()

    @property
    def overhead_bytes(self) -> int:
        """Ciphertext expansion (the prepended nonce)."""
        return _NONCE_BYTES

    def encrypt(self, plaintext: bytes) -> bytes:
        """Encrypt under a fresh nonce; same plaintext yields fresh bytes."""
        nonce = next(self._nonce_counter).to_bytes(_NONCE_BYTES, "little")
        return nonce + self._xor_keystream(nonce, bytes(plaintext))

    def decrypt(self, ciphertext: bytes) -> bytes:
        """Invert :meth:`encrypt`."""
        if len(ciphertext) < _NONCE_BYTES:
            raise ValueError(f"ciphertext too short: {len(ciphertext)} bytes")
        nonce = ciphertext[:_NONCE_BYTES]
        return self._xor_keystream(nonce, ciphertext[_NONCE_BYTES:])

    def _xor_keystream(self, nonce: bytes, data: bytes) -> bytes:
        stream = bytearray()
        for counter in range((len(data) + 31) // 32):
            block = hashlib.sha256(
                self._key + nonce + counter.to_bytes(4, "little")
            ).digest()
            stream.extend(block)
        return bytes(a ^ b for a, b in zip(data, stream))


def chunk_count(n_bytes: int) -> int:
    """Number of 16-byte AES chunks needed to cover ``n_bytes``.

    Used by the energy model: the ORAM controller performs one AES
    operation and one stash SRAM access per 16-byte chunk moved.
    """
    if n_bytes < 0:
        raise ValueError(f"n_bytes must be >= 0, got {n_bytes}")
    return (n_bytes + CHUNK_BYTES - 1) // CHUNK_BYTES
