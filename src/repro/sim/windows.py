"""Windowed time series: IPC over instruction windows (Figure 7) and
instructions-per-ORAM-access over time (Figure 2).

The timing simulator records the completion time and instruction index of
every LLC request.  Between requests the core retires instructions at a
locally uniform rate, so cycle counts at window boundaries are obtained by
linear interpolation between request events — exact at the resolution the
figures plot (windows span thousands of requests).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.result import SimResult


@dataclass
class WindowSeries:
    """A per-window series aligned to instruction windows."""

    window_instructions: int
    values: np.ndarray
    label: str = ""

    def __len__(self) -> int:
        return len(self.values)


def ipc_windows(result: SimResult, n_windows: int = 200) -> WindowSeries:
    """IPC in equal instruction windows (the paper plots 1B-instruction bins).

    Uses the request event stream to interpolate cycle counts at window
    boundaries; a run with no requests degenerates to uniform IPC.
    """
    if n_windows <= 0:
        raise ValueError(f"n_windows must be positive, got {n_windows}")
    n_instr = result.n_instructions
    window = max(1, n_instr // n_windows)
    boundaries = np.arange(1, n_windows + 1, dtype=np.float64) * window

    event_instr = result.request_instruction_index.astype(np.float64)
    event_cycles = result.request_completion_times
    if len(event_instr) == 0:
        per_window_cycles = np.full(n_windows, result.cycles / n_windows)
        return WindowSeries(window, window / per_window_cycles, label=result.scheme_name)

    # Anchor the interpolation at run start and end.
    xs = np.concatenate(([0.0], event_instr, [float(n_instr)]))
    ys = np.concatenate(([0.0], event_cycles, [result.cycles]))
    # Event streams are nondecreasing in both coordinates; np.interp needs
    # strictly increasing xs, so collapse duplicates keeping the last.
    keep = np.ones(len(xs), dtype=bool)
    keep[:-1] = np.diff(xs) > 0
    xs, ys = xs[keep], ys[keep]
    cycles_at = np.interp(boundaries, xs, ys)
    cycles_at = np.concatenate(([0.0], cycles_at))
    per_window_cycles = np.maximum(np.diff(cycles_at), 1e-9)
    ipc = window / per_window_cycles
    return WindowSeries(window, ipc, label=result.scheme_name)


def instructions_per_access_windows(
    instruction_index: np.ndarray,
    n_instructions: int,
    n_windows: int = 100,
) -> WindowSeries:
    """Average instructions between LLC requests per window (Figure 2).

    Windows with zero requests report the window length (an optimistic
    floor mirroring how the paper's log-scale plot tops out).
    """
    if n_windows <= 0:
        raise ValueError(f"n_windows must be positive, got {n_windows}")
    window = max(1, n_instructions // n_windows)
    counts, _edges = np.histogram(
        instruction_index, bins=n_windows, range=(0, window * n_windows)
    )
    values = np.where(counts > 0, window / np.maximum(counts, 1), float(window))
    return WindowSeries(window, values.astype(np.float64))


def epoch_transition_instructions(result: SimResult) -> list[int]:
    """Instruction indices at which epoch transitions occurred.

    Maps each epoch's start cycle back to instruction space through the
    request event stream (inverse of the :func:`ipc_windows`
    interpolation); used to draw Figure 7's vertical markers.
    """
    if not result.epochs:
        return []
    event_instr = result.request_instruction_index.astype(np.float64)
    event_cycles = result.request_completion_times
    xs = np.concatenate(([0.0], event_cycles, [result.cycles]))
    ys = np.concatenate(([0.0], event_instr, [float(result.n_instructions)]))
    keep = np.ones(len(xs), dtype=bool)
    keep[:-1] = np.diff(xs) > 0
    xs, ys = xs[keep], ys[keep]
    marks = []
    for record in result.epochs[1:]:  # epoch 0 starts at 0
        marks.append(int(np.interp(record.start_cycle, xs, ys)))
    return marks
