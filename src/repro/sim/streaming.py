"""Chunked/streaming variant of the timing replay.

:func:`run_timing_streaming` consumes the miss-request stream as bounded
:class:`~repro.cache.streaming.MissChunk` windows (typically straight
out of :class:`~repro.cache.streaming.StreamingHierarchyPass`) plus the
trace-level :class:`~repro.cache.streaming.FunctionalSummary`, and
produces a :class:`~repro.sim.result.SimResult` **bit-identical** to
``run_timing`` on the assembled trace — for every controller type, every
``mode``, and every chunking (the timing kernels are per-request scalar
recurrences, so carrying their state across chunk boundaries changes
nothing about the arithmetic or its float-addition order).

``mode="reference"`` carries the controller and the
:class:`~repro.cache.write_buffer.WriteBuffer` across chunks and calls
``controller.serve`` per request, exactly like the in-memory reference
loop.  ``mode="fast"`` carries the state of the in-memory fast kernels
instead: the deque write-buffer idiom for base_dram/base_oram and the
exact-integer slot timeline (with its closed-form dummy bursts and
epoch transitions) for static/dynamic slot controllers; the trailing
dummy advance and the counter publication happen at ``finish`` time,
verbatim from the in-memory kernels.

Streaming results never record per-request arrays or the observable
trace — those are whole-trace artifacts by definition; use the
in-memory path when you need them.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from repro.cache.streaming import FunctionalSummary, MissChunk
from repro.cache.write_buffer import WriteBuffer
from repro.core.controller import (
    EpochRecord,
    FlatDramController,
    TimingProtectedController,
    UnprotectedController,
)
from repro.cpu.trace import MissTrace
from repro.sim.result import SimResult
from repro.sim.timing import _build_result


class _SummaryTrace:
    """Just enough of a ``MissTrace`` for ``_build_result``.

    With ``record_requests=False`` the result assembly touches only the
    energy events, the instruction count, and the source labels — all of
    which the functional summary carries.
    """

    def __init__(self, summary: FunctionalSummary) -> None:
        self.energy = summary.energy
        self.n_instructions = summary.n_instructions
        self.source_name = summary.source_name
        self.source_input = summary.source_input


def summary_of(miss_trace: MissTrace) -> FunctionalSummary:
    """The streaming summary equivalent of an in-memory miss trace."""
    return FunctionalSummary(
        total_compute_cycles=miss_trace.total_compute_cycles,
        n_instructions=miss_trace.n_instructions,
        energy=miss_trace.energy,
        source_name=miss_trace.source_name,
        source_input=miss_trace.source_input,
    )


def miss_trace_chunks(miss_trace: MissTrace, chunk_requests: int):
    """Slice an in-memory miss trace into streamed chunks (test helper)."""
    if chunk_requests <= 0:
        raise ValueError(f"chunk_requests must be positive, got {chunk_requests}")
    n = len(miss_trace.gap_cycles)
    for start in range(0, n, chunk_requests):
        stop = start + chunk_requests
        yield MissChunk(
            gap_cycles=miss_trace.gap_cycles[start:stop],
            is_blocking=miss_trace.is_blocking[start:stop],
            instruction_index=miss_trace.instruction_index[start:stop],
        )


def run_timing_streaming(
    miss_chunks: Iterable[MissChunk],
    summary: FunctionalSummary | MissTrace,
    scheme,
    write_buffer_entries: int = 8,
    mode: str = "fast",
) -> SimResult:
    """Streaming counterpart of :func:`repro.sim.timing.run_timing`.

    ``summary`` may be a :class:`FunctionalSummary`, an in-memory
    ``MissTrace`` whose totals are used directly, or — for lazy
    pipelining straight out of :func:`repro.cache.streaming
    .stream_functional` — a zero-argument callable evaluated only after
    the miss-chunk iterator is exhausted (e.g. ``machine.finish``).
    """
    if mode not in ("fast", "reference"):
        raise ValueError(f"mode must be 'fast' or 'reference', got {mode!r}")
    controller = scheme.build_controller()
    if mode == "fast" and type(controller) is FlatDramController:
        machine = _StreamFlatDram(controller, write_buffer_entries)
    elif mode == "fast" and type(controller) is UnprotectedController:
        machine = _StreamUnprotected(controller, write_buffer_entries)
    elif mode == "fast" and type(controller) is TimingProtectedController:
        if controller.schedule is None:
            machine = _StreamSlottedStatic(controller, write_buffer_entries)
        else:
            machine = _StreamSlottedDynamic(controller, write_buffer_entries)
    else:
        machine = _StreamReference(controller, write_buffer_entries)

    for chunk in miss_chunks:
        machine.feed(chunk)
    if callable(summary):
        summary = summary()
    if isinstance(summary, MissTrace):
        summary = summary_of(summary)
    end_time = machine.finish(summary)
    return _build_result(
        _SummaryTrace(summary), scheme, controller, end_time,
        completions=None, record_requests=False, record_observable_trace=False,
    )


# ----------------------------------------------------------------------
# Per-controller streaming machines (state carried across chunks)
# ----------------------------------------------------------------------

class _StreamReference:
    """``controller.serve`` per request, WriteBuffer carried across chunks."""

    def __init__(self, controller, entries: int) -> None:
        self.controller = controller
        self.buffer = WriteBuffer(entries=entries)
        self.core = 0.0

    def feed(self, chunk: MissChunk) -> None:
        core = self.core
        serve = self.controller.serve
        admit = self.buffer.admit
        gaps = chunk.gap_cycles
        blocking = chunk.is_blocking
        for i in range(len(gaps)):
            issue = core + gaps[i]
            completion = serve(issue)
            if blocking[i]:
                core = completion
            else:
                core = admit(issue, completion)
        self.core = core

    def finish(self, summary: FunctionalSummary) -> float:
        end_time = self.core + summary.total_compute_cycles
        end_time = max(end_time, self.buffer.drain_all())
        self.controller.finalize(end_time)
        return float(end_time)


class _StreamFlatDram:
    """base_dram: flat latency, deque write-buffer idiom."""

    def __init__(self, controller, entries: int) -> None:
        self.controller = controller
        self.entries = entries
        self.core = 0.0
        self.n = 0
        self.buffer: deque = deque()

    def feed(self, chunk: MissChunk) -> None:
        core = self.core
        entries = self.entries
        latency = self.controller.latency
        buffer = self.buffer
        buf_pop = buffer.popleft
        buf_push = buffer.append
        gaps = chunk.gap_cycles.tolist()
        blocking = chunk.is_blocking.tolist()
        for i in range(len(gaps)):
            issue = core + gaps[i]
            completion = issue + latency
            if blocking[i]:
                core = completion
            else:
                while buffer and buffer[0] <= issue:
                    buf_pop()
                proceed = issue
                while len(buffer) >= entries:
                    oldest = buf_pop()
                    if oldest > proceed:
                        proceed = oldest
                buf_push(completion)
                core = proceed
        self.core = core
        self.n += len(gaps)

    def finish(self, summary: FunctionalSummary) -> float:
        self.controller.stats.real_accesses = self.n
        end_time = self.core + summary.total_compute_cycles
        drain = self.buffer[-1] if self.buffer else 0.0
        return float(max(end_time, drain))


class _StreamUnprotected:
    """base_oram: single-ported serialization, deque write-buffer idiom."""

    def __init__(self, controller, entries: int) -> None:
        self.controller = controller
        self.entries = entries
        self.core = 0.0
        self.prev = 0.0
        self.real = 0
        self.buffer: deque = deque()

    def feed(self, chunk: MissChunk) -> None:
        core = self.core
        prev = self.prev
        real = self.real
        entries = self.entries
        latency = self.controller.latency
        buffer = self.buffer
        buf_pop = buffer.popleft
        buf_push = buffer.append
        gaps = chunk.gap_cycles.tolist()
        blocking = chunk.is_blocking.tolist()
        for i in range(len(gaps)):
            issue = core + gaps[i]
            start = issue if issue > prev else prev
            completion = start + latency
            prev = completion
            real += 1
            if blocking[i]:
                core = completion
            else:
                while buffer and buffer[0] <= issue:
                    buf_pop()
                proceed = issue
                while len(buffer) >= entries:
                    oldest = buf_pop()
                    if oldest > proceed:
                        proceed = oldest
                buf_push(completion)
                core = proceed
        self.core = core
        self.prev = prev
        self.real = real

    def finish(self, summary: FunctionalSummary) -> float:
        self.controller.stats.real_accesses = self.real
        end_time = self.core + summary.total_compute_cycles
        drain = self.buffer[-1] if self.buffer else 0.0
        return float(max(end_time, drain))


class _StreamSlottedStatic:
    """Static-rate slot controller on the exact integer timeline."""

    def __init__(self, controller, entries: int) -> None:
        self.controller = controller
        self.entries = entries
        self.rate = controller.rate
        self.rate_f = float(controller.rate)
        self.step = controller.rate + controller.latency
        self.prev = 0  # exact integer timeline
        self.last_was_real = False
        self.total_dummy = 0
        self.total_waste = 0.0
        self.n = 0
        self.core = 0.0
        self.buffer: deque = deque()

    def feed(self, chunk: MissChunk) -> None:
        rate = self.rate
        rate_f = self.rate_f
        step = self.step
        prev = self.prev
        last_was_real = self.last_was_real
        total_dummy = self.total_dummy
        total_waste = self.total_waste
        core = self.core
        entries = self.entries
        latency = self.controller.latency
        buffer = self.buffer
        buf_pop = buffer.popleft
        buf_push = buffer.append
        gaps = chunk.gap_cycles.tolist()
        blocking = chunk.is_blocking.tolist()
        for i in range(len(gaps)):
            arrival = core + gaps[i]
            if prev + rate < arrival:
                k = int((arrival - prev - rate) // step) + 1
                if k < 1:
                    k = 1
                while k > 0 and prev + (k - 1) * step + rate >= arrival:
                    k -= 1
                while prev + k * step + rate < arrival:
                    k += 1
                prev += k * step
                total_dummy += k
                last_was_real = False
            slot = prev + rate
            if arrival <= prev:
                waste = rate_f if last_was_real else slot - arrival
            else:
                waste = slot - arrival
            total_waste += waste
            completion = slot + latency
            prev = completion
            last_was_real = True
            if blocking[i]:
                core = completion
            else:
                while buffer and buffer[0] <= arrival:
                    buf_pop()
                proceed = arrival
                while len(buffer) >= entries:
                    oldest = buf_pop()
                    if oldest > proceed:
                        proceed = oldest
                buf_push(completion)
                core = proceed
        self.prev = prev
        self.last_was_real = last_was_real
        self.total_dummy = total_dummy
        self.total_waste = total_waste
        self.core = core
        self.n += len(gaps)

    def finish(self, summary: FunctionalSummary) -> float:
        controller = self.controller
        rate = self.rate
        step = self.step
        prev = self.prev
        end_time = self.core + summary.total_compute_cycles
        drain = self.buffer[-1] if self.buffer else 0.0
        end_time = float(max(end_time, drain))
        if prev + rate < end_time:
            k = int((end_time - prev - rate) // step) + 1
            if k < 1:
                k = 1
            while k > 0 and prev + (k - 1) * step + rate >= end_time:
                k -= 1
            while prev + k * step + rate < end_time:
                k += 1
            prev += k * step
            self.total_dummy += k
        counters = controller.counters
        counters.access_count = self.n
        counters.oram_cycles = float(self.n * controller.latency)
        counters.waste = self.total_waste
        controller.stats.real_accesses = self.n
        controller.stats.dummy_accesses = self.total_dummy
        controller.stats.total_waste = self.total_waste
        return end_time


class _StreamSlottedDynamic:
    """Epoch-driven slot controller with learner transitions at boundaries."""

    def __init__(self, controller, entries: int) -> None:
        self.controller = controller
        self.entries = entries
        self.latency = controller.latency
        self.epoch_len = controller.schedule.epoch_length
        self.learner = controller.learner
        self.counters = controller.counters
        self.epochs = controller.epochs
        self.rate = controller.rate
        self.rate_f = float(controller.rate)
        self.step = controller.rate + controller.latency
        self.prev = 0  # exact integer timeline
        self.last_was_real = False
        self.epoch_index = 0
        self.epoch_end = self.epoch_len(0)
        self.ctr_access = 0
        self.ctr_waste = 0.0
        self.total_dummy = 0
        self.total_waste = 0.0
        self.n = 0
        self.core = 0.0
        self.buffer: deque = deque()

    def _advance(self, until: float) -> None:
        latency = self.latency
        epoch_len = self.epoch_len
        counters = self.counters
        while True:
            while self.prev >= self.epoch_end:
                epoch_cycles = float(epoch_len(self.epoch_index))
                counters.access_count = self.ctr_access
                counters.oram_cycles = float(self.ctr_access * latency)
                counters.waste = self.ctr_waste
                decision = self.learner.decide(counters, epoch_cycles)
                counters.reset()
                self.ctr_access = 0
                self.ctr_waste = 0.0
                self.epoch_index += 1
                epoch_start = self.epoch_end
                self.rate = decision.chosen_rate
                self.rate_f = float(self.rate)
                self.step = self.rate + latency
                self.epochs.append(
                    EpochRecord(
                        index=self.epoch_index,
                        start_cycle=float(epoch_start),
                        rate=self.rate,
                        raw_estimate=decision.raw_estimate,
                    )
                )
                self.epoch_end = epoch_start + epoch_len(self.epoch_index)
            rate, step, prev = self.rate, self.step, self.prev
            if prev + rate >= until:
                return
            k = int((until - prev - rate) // step) + 1
            if k < 1:
                k = 1
            while k > 0 and prev + (k - 1) * step + rate >= until:
                k -= 1
            while prev + k * step + rate < until:
                k += 1
            span = self.epoch_end - prev
            k2 = -(-span // step)
            if k2 < k:
                k = k2
            if k <= 0:
                continue  # epoch boundary first; transition and retry
            self.prev = prev + k * step
            self.total_dummy += k
            self.last_was_real = False

    def feed(self, chunk: MissChunk) -> None:
        entries = self.entries
        latency = self.latency
        buffer = self.buffer
        buf_pop = buffer.popleft
        buf_push = buffer.append
        core = self.core
        gaps = chunk.gap_cycles.tolist()
        blocking = chunk.is_blocking.tolist()
        for i in range(len(gaps)):
            arrival = core + gaps[i]
            if self.prev >= self.epoch_end or self.prev + self.rate < arrival:
                self._advance(arrival)
            slot = self.prev + self.rate
            if arrival <= self.prev:
                waste = self.rate_f if self.last_was_real else slot - arrival
            else:
                waste = slot - arrival
            self.ctr_waste += waste
            self.total_waste += waste
            completion = slot + latency
            self.ctr_access += 1
            self.prev = completion
            self.last_was_real = True
            if blocking[i]:
                core = completion
            else:
                while buffer and buffer[0] <= arrival:
                    buf_pop()
                proceed = arrival
                while len(buffer) >= entries:
                    oldest = buf_pop()
                    if oldest > proceed:
                        proceed = oldest
                buf_push(completion)
                core = proceed
        self.core = core
        self.n += len(gaps)

    def finish(self, summary: FunctionalSummary) -> float:
        controller = self.controller
        end_time = self.core + summary.total_compute_cycles
        drain = self.buffer[-1] if self.buffer else 0.0
        end_time = float(max(end_time, drain))
        self._advance(end_time)  # finalize: trailing dummies
        controller.rate = self.rate
        counters = self.counters
        counters.access_count = self.ctr_access
        counters.oram_cycles = float(self.ctr_access * self.latency)
        counters.waste = self.ctr_waste
        controller.stats.real_accesses = self.n
        controller.stats.dummy_accesses = self.total_dummy
        controller.stats.total_waste = self.total_waste
        return end_time
