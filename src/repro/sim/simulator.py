"""Top-level secure-processor simulation: workload -> caches -> timing.

``SecureProcessorSim`` wires the substrates together and caches the
expensive functional cache pass per benchmark, so sweeping many schemes
over the same workload (Figures 5, 6, 8) costs one cache simulation plus
one cheap timing replay per scheme — the two-phase structure described in
DESIGN.md.

Two cache layers exist:

- an in-memory per-instance dict (``_miss_traces``), as before; and
- an optional pluggable ``trace_store`` consulted on in-memory misses,
  which lets the :mod:`repro.api` engine persist functional passes across
  worker processes and sessions (see :class:`repro.api.cache.TraceCache`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Protocol

from repro.cache.hierarchy import HierarchyConfig, PAPER_HIERARCHY, simulate_hierarchy
from repro.cpu.core import CoreModel, DEFAULT_CORE
from repro.cpu.trace import MemoryTrace, MissTrace
from repro.sim.result import SimResult
from repro.sim.timing import run_timing, run_timing_batch
from repro.workloads.registry import build_trace


class TraceStore(Protocol):
    """Persistent miss-trace storage consulted on in-memory cache misses."""

    def get(self, key: str) -> MissTrace | None: ...

    def put(self, key: str, trace: MissTrace) -> None: ...

    def has(self, key: str) -> bool: ...


@dataclass
class SimConfig:
    """Scaled simulation parameters shared by the experiment harness.

    ``warmup_fraction`` mirrors the paper's fast-forwarding: that fraction
    of extra instructions is prepended to each run to warm the caches and
    is excluded from all timing/energy accounting.
    """

    n_instructions: int = 1_000_000
    seed: int = 0
    hierarchy: HierarchyConfig = field(default_factory=lambda: PAPER_HIERARCHY)
    core: CoreModel = field(default_factory=lambda: DEFAULT_CORE)
    write_buffer_entries: int = 8
    warmup_fraction: float = 0.30
    #: Kernel selection for the functional pass and timing replay:
    #: ``"fast"`` (vectorized) or ``"reference"`` (scalar oracle).  The
    #: two are bit-identical, so this knob is deliberately *excluded*
    #: from :meth:`substrate_digest` — cached traces are valid across
    #: kernels.
    kernel_mode: str = "fast"

    def substrate_digest(self) -> str:
        """Hex digest of every knob that changes the functional pass.

        Keys persistent trace stores; both configs are frozen dataclasses
        of plain numbers, so their reprs are stable and canonical.
        ``kernel_mode`` is excluded: kernels are bit-identical.
        """
        payload = repr((
            self.n_instructions,
            self.seed,
            self.hierarchy,
            self.core,
            self.warmup_fraction,
        ))
        return hashlib.sha256(payload.encode()).hexdigest()


class SecureProcessorSim:
    """Simulator facade with per-benchmark miss-trace caching.

    Args:
        config: Simulation parameters.
        trace_store: Optional persistent store (e.g. the api engine's
            on-disk cache).  Consulted when the in-memory dict misses and
            populated after each fresh functional pass.
    """

    def __init__(
        self, config: SimConfig | None = None, trace_store: TraceStore | None = None
    ) -> None:
        self.config = config or SimConfig()
        self.trace_store = trace_store
        self._miss_traces: dict[tuple, MissTrace] = {}
        #: (store id, key) pairs known to be present in that store.
        self._synced: set[tuple[object, str]] = set()

    def _store_key(self, *parts: object) -> str:
        """Stable string key for the persistent store (config-qualified)."""
        payload = repr(parts)
        return hashlib.sha256(
            (self.config.substrate_digest() + payload).encode()
        ).hexdigest()

    def _sync_store(self, store_key: str, trace: MissTrace) -> None:
        """Backfill ``trace_store`` with an in-memory trace it lacks.

        ``trace_store`` can be (re)attached after traces were computed —
        e.g. the same process-local simulator serving engines with
        different cache directories — so memory hits still propagate to
        whichever store is current.  The sync marker keeps this to one
        existence check per (store, key).
        """
        store = self.trace_store
        if store is None:
            return
        marker = (self._store_identity(store), store_key)
        if marker in self._synced:
            return
        present = store.has(store_key) if hasattr(store, "has") else (
            store.get(store_key) is not None
        )
        if not present:
            store.put(store_key, trace)
        self._synced.add(marker)

    @staticmethod
    def _store_identity(store: TraceStore) -> object:
        """Durable identity for the sync markers.

        ``id(store)`` alone is unsafe: a store object can be garbage
        collected and its id reused by a *different* store (e.g. two
        short-lived cache directories in one process), which would make
        the sync marker silently skip the backfill.  Prefer the store's
        root path — stable and collision-free per directory.
        """
        root = getattr(store, "root", None)
        return str(root) if root is not None else id(store)

    def _cached_pass(self, key: tuple, store_key: str, compute) -> MissTrace:
        """Memory -> store -> compute lookup chain for functional passes."""
        if key in self._miss_traces:
            trace = self._miss_traces[key]
            self._sync_store(store_key, trace)
            return trace
        trace = self.trace_store.get(store_key) if self.trace_store else None
        if trace is None:
            trace = compute()
            if self.trace_store is not None:
                self.trace_store.put(store_key, trace)
                self._synced.add(
                    (self._store_identity(self.trace_store), store_key)
                )
        else:
            self._synced.add(
                (self._store_identity(self.trace_store), store_key)
            )
        self._miss_traces[key] = trace
        return trace

    def miss_trace(
        self, benchmark: str, input_name: str | None = None
    ) -> MissTrace:
        """Functional cache pass for one benchmark (cached)."""
        key = (benchmark, input_name, self.config.n_instructions, self.config.seed)

        def compute() -> MissTrace:
            warmup = int(self.config.n_instructions * self.config.warmup_fraction)
            trace = build_trace(
                benchmark,
                seed=self.config.seed,
                n_instructions=self.config.n_instructions + warmup,
                input_name=input_name,
            )
            return simulate_hierarchy(
                trace,
                self.config.hierarchy,
                self.config.core,
                warmup_instructions=warmup,
                mode=self.config.kernel_mode,
            )

        return self._cached_pass(key, self._store_key("workload", *key), compute)

    def miss_trace_for(self, trace: MemoryTrace) -> MissTrace:
        """Functional cache pass for an externally built trace (cached).

        External traces are replayed verbatim (no warmup prefix is added);
        use :meth:`miss_trace` for registry benchmarks.  Cached by a
        content digest of the trace, so distinct traces that happen to
        share a name and reference count never collide.
        """
        digest = trace.content_digest()
        key = ("__external__", digest)

        def compute() -> MissTrace:
            return simulate_hierarchy(
                trace, self.config.hierarchy, self.config.core,
                mode=self.config.kernel_mode,
            )

        return self._cached_pass(key, self._store_key("external", digest), compute)

    def run(
        self,
        benchmark: str,
        scheme,
        input_name: str | None = None,
        record_requests: bool = True,
    ) -> SimResult:
        """Simulate one benchmark under one scheme."""
        miss_trace = self.miss_trace(benchmark, input_name)
        return run_timing(
            miss_trace,
            scheme,
            write_buffer_entries=self.config.write_buffer_entries,
            record_requests=record_requests,
            mode=self.config.kernel_mode,
        )

    def run_batch(
        self,
        benchmark: str,
        schemes: list,
        input_name: str | None = None,
        record_requests: bool = False,
    ) -> list[SimResult]:
        """Replay one benchmark under many schemes with one batched kernel.

        The config-batched counterpart of :meth:`sweep`: one shared
        functional pass, then a single
        :func:`~repro.sim.timing.run_timing_batch` call that advances
        every slot-controller configuration in lockstep.  Results are
        bit-identical, scheme for scheme, to calling :meth:`run` per
        scheme; ``record_requests`` defaults to aggregates-only like
        :meth:`sweep`.
        """
        miss_trace = self.miss_trace(benchmark, input_name)
        return run_timing_batch(
            miss_trace,
            schemes,
            write_buffer_entries=self.config.write_buffer_entries,
            record_requests=record_requests,
            mode=self.config.kernel_mode,
        )

    def run_trace(self, trace: MemoryTrace, scheme, record_requests: bool = True) -> SimResult:
        """Simulate an externally built memory trace under one scheme."""
        miss_trace = self.miss_trace_for(trace)
        return run_timing(
            miss_trace,
            scheme,
            write_buffer_entries=self.config.write_buffer_entries,
            record_requests=record_requests,
            mode=self.config.kernel_mode,
        )

    def sweep(
        self,
        benchmark: str,
        schemes: list,
        input_name: str | None = None,
        record_requests: bool = False,
    ) -> dict[str, SimResult]:
        """Run several schemes over one benchmark (shared functional pass).

        ``record_requests`` defaults to aggregates-only: sweeps fan one
        functional pass out across many schemes, and recording the full
        per-request arrays for every scheme multiplies memory by the
        sweep width for data most callers never read.  Pass ``True`` to
        keep the per-request completion/instruction arrays on each
        result.
        """
        return {
            scheme.name: self.run(
                benchmark, scheme, input_name=input_name,
                record_requests=record_requests,
            )
            for scheme in schemes
        }
