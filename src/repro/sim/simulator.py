"""Top-level secure-processor simulation: workload -> caches -> timing.

``SecureProcessorSim`` wires the substrates together and caches the
expensive functional cache pass per benchmark, so sweeping many schemes
over the same workload (Figures 5, 6, 8) costs one cache simulation plus
one cheap timing replay per scheme — the two-phase structure described in
DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.hierarchy import HierarchyConfig, PAPER_HIERARCHY, simulate_hierarchy
from repro.cpu.core import CoreModel, DEFAULT_CORE
from repro.cpu.trace import MemoryTrace, MissTrace
from repro.sim.result import SimResult
from repro.sim.timing import run_timing
from repro.workloads.registry import build_trace


@dataclass
class SimConfig:
    """Scaled simulation parameters shared by the experiment harness.

    ``warmup_fraction`` mirrors the paper's fast-forwarding: that fraction
    of extra instructions is prepended to each run to warm the caches and
    is excluded from all timing/energy accounting.
    """

    n_instructions: int = 1_000_000
    seed: int = 0
    hierarchy: HierarchyConfig = field(default_factory=lambda: PAPER_HIERARCHY)
    core: CoreModel = field(default_factory=lambda: DEFAULT_CORE)
    write_buffer_entries: int = 8
    warmup_fraction: float = 0.30


class SecureProcessorSim:
    """Simulator facade with per-benchmark miss-trace caching."""

    def __init__(self, config: SimConfig | None = None) -> None:
        self.config = config or SimConfig()
        self._miss_traces: dict[tuple, MissTrace] = {}

    def miss_trace(
        self, benchmark: str, input_name: str | None = None
    ) -> MissTrace:
        """Functional cache pass for one benchmark (cached)."""
        key = (benchmark, input_name, self.config.n_instructions, self.config.seed)
        if key not in self._miss_traces:
            warmup = int(self.config.n_instructions * self.config.warmup_fraction)
            trace = build_trace(
                benchmark,
                seed=self.config.seed,
                n_instructions=self.config.n_instructions + warmup,
                input_name=input_name,
            )
            self._miss_traces[key] = simulate_hierarchy(
                trace,
                self.config.hierarchy,
                self.config.core,
                warmup_instructions=warmup,
            )
        return self._miss_traces[key]

    def miss_trace_for(self, trace: MemoryTrace) -> MissTrace:
        """Functional cache pass for an externally built trace (cached).

        External traces are replayed verbatim (no warmup prefix is added);
        use :meth:`miss_trace` for registry benchmarks.
        """
        key = ("__external__", trace.name, trace.input_name, trace.n_references)
        if key not in self._miss_traces:
            self._miss_traces[key] = simulate_hierarchy(
                trace, self.config.hierarchy, self.config.core
            )
        return self._miss_traces[key]

    def run(
        self,
        benchmark: str,
        scheme,
        input_name: str | None = None,
        record_requests: bool = True,
    ) -> SimResult:
        """Simulate one benchmark under one scheme."""
        miss_trace = self.miss_trace(benchmark, input_name)
        return run_timing(
            miss_trace,
            scheme,
            write_buffer_entries=self.config.write_buffer_entries,
            record_requests=record_requests,
        )

    def run_trace(self, trace: MemoryTrace, scheme, record_requests: bool = True) -> SimResult:
        """Simulate an externally built memory trace under one scheme."""
        miss_trace = self.miss_trace_for(trace)
        return run_timing(
            miss_trace,
            scheme,
            write_buffer_entries=self.config.write_buffer_entries,
            record_requests=record_requests,
        )

    def sweep(
        self,
        benchmark: str,
        schemes: list,
        input_name: str | None = None,
    ) -> dict[str, SimResult]:
        """Run several schemes over one benchmark (shared functional pass)."""
        return {
            scheme.name: self.run(benchmark, scheme, input_name=input_name)
            for scheme in schemes
        }
