"""Simulation result containers and derived metrics."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.controller import ControllerStats, EpochRecord
from repro.cpu.trace import EnergyEvents
from repro.power.model import EnergyBreakdown


@dataclass
class SimResult:
    """Outcome of one (benchmark, scheme) timing simulation.

    Attributes:
        scheme_name: Label of the memory scheme simulated.
        benchmark: Benchmark label ("name/input").
        cycles: Total runtime in processor cycles.
        n_instructions: Instructions retired.
        controller: Access counters from the memory controller.
        epochs: Epochs as executed (empty for non-epoch schemes).
        energy: Microarchitectural event counts (from the functional pass).
        breakdown: Energy breakdown; ``power_watts`` derives from it.
        request_completion_times: Completion time of each LLC request.
        request_instruction_index: Instruction index at each LLC request.
        blocking_mask: Which LLC requests were blocking loads.
    """

    scheme_name: str
    benchmark: str
    cycles: float
    n_instructions: int
    controller: ControllerStats
    epochs: list[EpochRecord]
    energy: EnergyEvents
    breakdown: EnergyBreakdown
    request_completion_times: np.ndarray = field(default_factory=lambda: np.empty(0))
    request_instruction_index: np.ndarray = field(default_factory=lambda: np.empty(0))
    blocking_mask: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=bool))
    #: Start time of every access (real + dummy) when the run was made with
    #: ``record_observable_trace=True`` — the adversary's view.
    observable_access_times: np.ndarray = field(default_factory=lambda: np.empty(0))

    @property
    def ipc(self) -> float:
        """Instructions per cycle over the whole run."""
        if self.cycles <= 0:
            return 0.0
        return self.n_instructions / self.cycles

    @property
    def power_watts(self) -> float:
        """Average power (W) at the 1 GHz clock."""
        return self.breakdown.power_watts(self.cycles)

    @property
    def memory_power_watts(self) -> float:
        """DRAM/ORAM controller portion of power (Fig 6 colored bars)."""
        return self.breakdown.memory_power_watts(self.cycles)

    @property
    def dummy_fraction(self) -> float:
        """Fraction of ORAM accesses that were dummies."""
        return self.controller.dummy_fraction

    def describe(self) -> str:
        """One-line result summary."""
        return (
            f"{self.benchmark:>22} {self.scheme_name:>16}: "
            f"IPC={self.ipc:.4f}, power={self.power_watts:.3f} W, "
            f"accesses={self.controller.total_accesses} "
            f"({self.dummy_fraction:.0%} dummy)"
        )


def performance_overhead(result: SimResult, baseline: SimResult) -> float:
    """Runtime multiplier vs a baseline run of the same benchmark."""
    if result.n_instructions != baseline.n_instructions:
        raise ValueError(
            "overhead comparison requires identical instruction counts "
            f"({result.n_instructions} vs {baseline.n_instructions})"
        )
    return result.cycles / baseline.cycles


def power_overhead(result: SimResult, baseline: SimResult) -> float:
    """Power multiplier vs a baseline run of the same benchmark."""
    return result.power_watts / baseline.power_watts
