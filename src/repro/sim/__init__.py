"""Event-driven secure-processor simulation and result analysis."""

from repro.sim.result import SimResult, performance_overhead, power_overhead
from repro.sim.simulator import SecureProcessorSim, SimConfig
from repro.sim.timing import run_timing
from repro.sim.windows import (
    WindowSeries,
    epoch_transition_instructions,
    instructions_per_access_windows,
    ipc_windows,
)

__all__ = [
    "SimResult",
    "performance_overhead",
    "power_overhead",
    "SecureProcessorSim",
    "SimConfig",
    "run_timing",
    "WindowSeries",
    "epoch_transition_instructions",
    "instructions_per_access_windows",
    "ipc_windows",
]
