"""Event-driven timing simulation of one benchmark under one scheme.

Replays a :class:`~repro.cpu.trace.MissTrace` (produced once per benchmark
by the functional cache pass) against a memory controller built by a
scheme.  The machine model:

* the in-order core executes compute between LLC requests (the precomputed
  ``gap_cycles``), so the core timeline only interacts with memory at
  request points;
* **blocking** requests (load misses) stall the core until the response;
* **non-blocking** requests (store-miss fills, dirty writebacks) enter the
  8-entry write buffer and drain in the background; the core stalls only
  when the buffer is full (Table 1, Section 9.1.2 — this is what creates
  the Req 3 multiple-outstanding pattern of Figure 4);
* the memory controller is one of
  :class:`~repro.core.controller.FlatDramController` (base_dram),
  :class:`~repro.core.controller.UnprotectedController` (base_oram), or
  :class:`~repro.core.controller.TimingProtectedController`
  (static/dynamic) — the latter inserts dummy accesses and rate waits.

Two replay kernels produce **bit-identical** :class:`SimResult`\\ s:

* ``mode="reference"`` — the original scalar loop calling
  ``controller.serve`` once per request (and, for slot controllers, once
  per *dummy slot* inside ``_advance``).
* ``mode="fast"`` (default) — per-controller kernels that do the same
  arithmetic in bulk.  ``base_dram`` replays as a handful of numpy array
  ops (the interleaved gap/latency ``np.cumsum`` reproduces the scalar
  ``+=`` chain exactly, because cumsum is a sequential recurrence) with a
  vectorized write-buffer-stall check and a reference fallback on the
  rare full-buffer stall.  Slot controllers (static/dynamic) keep the
  per-request loop but replace the per-dummy-slot ``_advance`` iteration
  with closed-form integer slot arithmetic per idle window — the
  controller timeline never depends on fractional arrival times, only on
  comparisons against them, so the whole slot/dummy/epoch state machine
  runs on exact Python integers whose float images match the reference's
  accumulated floats bit for bit.

``record_observable_trace`` runs always use the reference kernel: the
adversary-view trace wants one append per access, which is exactly the
per-event work the fast kernels eliminate.

A third entry point batches the *configuration* axis:
:func:`run_timing_batch` replays one miss trace under many schemes with
the slot-controller state of every configuration held in
``(n_configs,)`` numpy arrays advanced in lockstep — the frontier
sweep's workhorse, bit-identical per config to ``run_timing`` (the
per-scheme replay stays the oracle, enforced by
``tests/sim/test_batch_equivalence.py``).  The batched kernel assumes
the usual trace regime (non-negative gaps, timelines below 2**53 so
integer-valued doubles stay exact), which every generated workload
satisfies.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.cache.write_buffer import WriteBuffer
from repro.core.controller import (
    EpochRecord,
    FlatDramController,
    TimingProtectedController,
    UnprotectedController,
)
from repro.core.learner import decide_batch
from repro.cpu.trace import MissTrace
from repro.power.coefficients import PAPER_COEFFICIENTS
from repro.power.model import (
    build_breakdown,
    dram_memory_energy_nj,
    oram_memory_energy_nj,
)
from repro.sim.result import SimResult


def run_timing(
    miss_trace: MissTrace,
    scheme,
    write_buffer_entries: int = 8,
    record_requests: bool = True,
    record_observable_trace: bool = False,
    mode: str = "fast",
) -> SimResult:
    """Replay ``miss_trace`` under ``scheme``; return the full result.

    ``scheme`` is any object from :mod:`repro.core.scheme` exposing
    ``build_controller()``, ``name`` and ``is_oram``.

    With ``record_observable_trace``, the result carries the start time of
    every memory access an adversary can observe — including dummies for
    slot-enforced schemes (the Section 4.2 capability).

    ``mode`` selects the replay kernel (``"fast"``/``"reference"``); both
    are bit-identical, enforced by
    ``tests/sim/test_timing_equivalence.py``.
    """
    if mode not in ("fast", "reference"):
        raise ValueError(f"mode must be 'fast' or 'reference', got {mode!r}")
    controller = scheme.build_controller()
    controller.record_trace = record_observable_trace
    if mode == "fast" and not record_observable_trace:
        if type(controller) is FlatDramController:
            replay = _replay_flat_dram(
                miss_trace, controller, write_buffer_entries, record_requests
            )
            if replay is not None:
                return _finish(miss_trace, scheme, controller, *replay)
            # Rare full-buffer stall: fall through to the reference loop.
        elif type(controller) is UnprotectedController:
            replay = _replay_unprotected(
                miss_trace, controller, write_buffer_entries, record_requests
            )
            return _finish(miss_trace, scheme, controller, *replay)
        elif type(controller) is TimingProtectedController:
            replay = _replay_slotted(
                miss_trace, controller, write_buffer_entries, record_requests
            )
            return _finish(miss_trace, scheme, controller, *replay)
        # Unknown controller types replay through the reference loop.
    return _replay_reference(
        miss_trace, scheme, controller, write_buffer_entries,
        record_requests, record_observable_trace,
    )


def run_timing_batch(
    miss_trace: MissTrace,
    schemes,
    write_buffer_entries: int = 8,
    record_requests: bool = True,
    mode: str = "fast",
) -> list:
    """Replay one miss trace under many schemes with one batched kernel.

    The frontier sweep's workhorse: a design-space grid replays the
    *same* arrival stream under every configuration, so the slot-state
    machine carries the configuration axis as a numpy dimension —
    ``(n_configs,)`` arrays for rate, timeline, epoch boundary, and
    counters, advanced in lockstep over the shared requests.  Epoch
    transitions apply as masked per-config updates with the learner
    decisions evaluated by :func:`repro.core.learner.decide_batch`.

    Returns one :class:`SimResult` per scheme, in order, each
    **bit-identical** to ``run_timing(miss_trace, scheme, ...)`` — the
    per-scheme replay stays the oracle, same contract pattern as the
    cache and ORAM kernel pairs (enforced by
    ``tests/sim/test_batch_equivalence.py``).  Schemes without a slot
    controller (``base_dram``/``base_oram``) and degenerate batches of
    one slot scheme replay through their (already fast) single-config
    kernels; ``mode="reference"`` delegates every scheme to the scalar
    reference loop.
    """
    if mode not in ("fast", "reference"):
        raise ValueError(f"mode must be 'fast' or 'reference', got {mode!r}")
    schemes = list(schemes)
    if mode == "reference":
        return [
            run_timing(
                miss_trace, scheme, write_buffer_entries,
                record_requests, mode="reference",
            )
            for scheme in schemes
        ]
    results: list = [None] * len(schemes)
    slotted: list[int] = []
    controllers: dict[int, TimingProtectedController] = {}
    for index, scheme in enumerate(schemes):
        controller = scheme.build_controller()
        if type(controller) is TimingProtectedController:
            slotted.append(index)
            controllers[index] = controller
        else:
            results[index] = run_timing(
                miss_trace, scheme, write_buffer_entries,
                record_requests, mode="fast",
            )
    if len(slotted) == 1:
        index = slotted[0]
        results[index] = run_timing(
            miss_trace, schemes[index], write_buffer_entries,
            record_requests, mode="fast",
        )
    elif slotted:
        batch = _replay_slotted_batch(
            miss_trace, [controllers[i] for i in slotted],
            write_buffer_entries, record_requests,
        )
        for index, (end_time, completions) in zip(slotted, batch):
            results[index] = _finish(
                miss_trace, schemes[index], controllers[index],
                end_time, completions,
            )
    return results


# ----------------------------------------------------------------------
# Reference kernel
# ----------------------------------------------------------------------

def _replay_reference(
    miss_trace, scheme, controller, write_buffer_entries,
    record_requests, record_observable_trace,
) -> SimResult:
    """The original scalar replay: one ``serve`` call per request."""
    buffer = WriteBuffer(entries=write_buffer_entries)

    gaps = miss_trace.gap_cycles
    blocking = miss_trace.is_blocking
    n_requests = len(gaps)

    completions = np.zeros(n_requests, dtype=np.float64) if record_requests else None

    core_time = 0.0
    serve = controller.serve
    admit = buffer.admit

    for index in range(n_requests):
        issue = core_time + gaps[index]
        completion = serve(issue)
        if blocking[index]:
            core_time = completion
        else:
            core_time = admit(issue, completion)
        if completions is not None:
            completions[index] = completion

    # Tail: the core's final compute and any still-draining stores.
    end_time = core_time + miss_trace.total_compute_cycles
    end_time = max(end_time, buffer.drain_all())
    controller.finalize(end_time)

    return _build_result(
        miss_trace, scheme, controller, end_time, completions,
        record_requests, record_observable_trace,
    )


# ----------------------------------------------------------------------
# Fast kernels
# ----------------------------------------------------------------------

def _replay_flat_dram(miss_trace, controller, entries, record_requests):
    """Vectorized base_dram replay; ``None`` if the write buffer stalls.

    The scalar recurrence is ``core += gap`` then, for blocking requests,
    ``core += latency`` (the admit path returns ``now`` when the buffer
    never fills).  Interleaving those terms and taking ``np.cumsum`` —
    a sequential recurrence — reproduces the float chain exactly.
    """
    gaps = miss_trace.gap_cycles
    blocking = miss_trace.is_blocking
    n = len(gaps)
    latency = controller.latency
    if n == 0:
        controller.stats.real_accesses = 0
        end_time = 0.0 + miss_trace.total_compute_cycles
        end_time = max(end_time, 0.0)
        return end_time, (np.zeros(0) if record_requests else None)

    inter = np.empty(2 * n)
    inter[0::2] = gaps
    inter[1::2] = np.where(blocking, float(latency), 0.0)
    prefix = np.cumsum(inter)
    issues = prefix[0::2]
    core_after = prefix[1::2]
    completions = issues + latency

    nb = completions[~blocking]
    if len(nb) > entries:
        # k-th non-blocking admit stalls iff the (k - entries)-th is
        # still in flight at its issue time.
        if (nb[:-entries] > issues[~blocking][entries:]).any():
            return None  # reference fallback

    controller.stats.real_accesses = n
    core_end = float(core_after[-1])
    end_time = core_end + miss_trace.total_compute_cycles
    drain = float(nb[-1]) if len(nb) else 0.0
    end_time = max(end_time, drain)
    return end_time, (completions if record_requests else None)


def _replay_unprotected(miss_trace, controller, entries, record_requests):
    """Lean base_oram replay: single-ported ORAM, no slots, no dummies."""
    gaps = miss_trace.gap_cycles.tolist()
    blocking = miss_trace.is_blocking.tolist()
    n = len(gaps)
    latency = controller.latency
    completions = np.zeros(n, dtype=np.float64) if record_requests else None

    core = 0.0
    prev = 0.0
    real = 0
    buffer: deque = deque()
    buf_pop = buffer.popleft
    buf_push = buffer.append

    for i in range(n):
        issue = core + gaps[i]
        start = issue if issue > prev else prev
        completion = start + latency
        prev = completion
        real += 1
        if blocking[i]:
            core = completion
        else:
            while buffer and buffer[0] <= issue:
                buf_pop()
            proceed = issue
            while len(buffer) >= entries:
                oldest = buf_pop()
                if oldest > proceed:
                    proceed = oldest
            buf_push(completion)
            core = proceed
        if completions is not None:
            completions[i] = completion

    controller.stats.real_accesses = real
    end_time = core + miss_trace.total_compute_cycles
    drain = buffer[-1] if buffer else 0.0
    end_time = max(end_time, drain)
    return float(end_time), completions


def _replay_slotted(miss_trace, controller, entries, record_requests):
    """Slot-controller replay with closed-form dummy-slot arithmetic.

    The controller timeline (slots, dummies, epochs) is integer-valued:
    every quantity is a sum of ``rate``/``latency`` integers, and arrival
    times only enter *comparisons*, never the arithmetic.  Keeping the
    timeline in exact Python integers therefore reproduces the
    reference's float timeline bit for bit (integer-valued doubles are
    exact), while an idle window of k dummy slots costs O(1) arithmetic
    instead of k loop iterations.

    The advance/transition machinery is inlined into two specialized
    request loops (static schemes skip every epoch check; dynamic
    schemes only enter the slow path when a dummy or boundary is
    actually pending), so the common request — arriving inside the
    current slot window — costs a handful of local operations instead
    of a closure call.
    """
    if controller.schedule is None:
        return _replay_slotted_static(miss_trace, controller, entries, record_requests)
    return _replay_slotted_dynamic(miss_trace, controller, entries, record_requests)


def _replay_slotted_static(miss_trace, controller, entries, record_requests):
    """Static-rate slot controller: no epochs, no learner, one rate forever."""
    gaps = miss_trace.gap_cycles.tolist()
    blocking = miss_trace.is_blocking.tolist()
    n = len(gaps)
    latency = controller.latency
    rate = controller.rate
    rate_f = float(rate)
    step = rate + latency

    prev = 0  # _completion_prev, exact integer timeline
    last_was_real = False
    total_dummy = 0
    total_waste = 0.0

    completions = np.zeros(n, dtype=np.float64) if record_requests else None

    core = 0.0
    buffer: deque = deque()
    buf_pop = buffer.popleft
    buf_push = buffer.append

    for i in range(n):
        arrival = core + gaps[i]
        # ---- inline advance(arrival): fire dummies before the arrival ----
        if prev + rate < arrival:
            # Count of dummy slots before `arrival`: j in [0, k) with
            # prev + j*step + rate < arrival.  Estimate with float
            # division, correct with exact integer/float comparisons.
            k = int((arrival - prev - rate) // step) + 1
            if k < 1:
                k = 1
            while k > 0 and prev + (k - 1) * step + rate >= arrival:
                k -= 1
            while prev + k * step + rate < arrival:
                k += 1
            prev += k * step
            total_dummy += k
            last_was_real = False
        # ---- serve(arrival) ----
        slot = prev + rate
        if arrival <= prev:
            if last_was_real:
                waste = rate_f  # Req 3
            else:
                waste = slot - arrival  # Req 2: dummy remainder + gap
        else:
            waste = slot - arrival  # Req 1: idle wait, <= rate
        total_waste += waste
        completion = slot + latency
        prev = completion
        last_was_real = True
        # ---- core/write-buffer reaction ----
        if blocking[i]:
            core = completion
        else:
            while buffer and buffer[0] <= arrival:
                buf_pop()
            proceed = arrival
            while len(buffer) >= entries:
                oldest = buf_pop()
                if oldest > proceed:
                    proceed = oldest
            buf_push(completion)
            core = proceed
        if completions is not None:
            completions[i] = completion

    end_time = core + miss_trace.total_compute_cycles
    drain = buffer[-1] if buffer else 0.0
    end_time = float(max(end_time, drain))
    # Finalize: trailing dummies up to program termination.
    if prev + rate < end_time:
        k = int((end_time - prev - rate) // step) + 1
        if k < 1:
            k = 1
        while k > 0 and prev + (k - 1) * step + rate >= end_time:
            k -= 1
        while prev + k * step + rate < end_time:
            k += 1
        prev += k * step
        total_dummy += k

    # Publish the final state back onto the controller.  The epoch
    # counters never reset (no transitions), so they equal the run
    # totals; oram_cycles is n exact integer additions of `latency`,
    # which is n * latency exactly.
    counters = controller.counters
    counters.access_count = n
    counters.oram_cycles = float(n * latency)
    counters.waste = total_waste
    controller.stats.real_accesses = n
    controller.stats.dummy_accesses = total_dummy
    controller.stats.total_waste = total_waste
    return end_time, completions


def _replay_slotted_dynamic(miss_trace, controller, entries, record_requests):
    """Epoch-driven slot controller: learner transitions at boundaries."""
    gaps = miss_trace.gap_cycles.tolist()
    blocking = miss_trace.is_blocking.tolist()
    n = len(gaps)
    latency = controller.latency
    schedule = controller.schedule
    epoch_len = schedule.epoch_length
    learner = controller.learner
    counters = controller.counters
    epochs = controller.epochs

    rate = controller.rate
    rate_f = float(rate)
    step = rate + latency
    prev = 0  # _completion_prev, exact integer timeline
    last_was_real = False
    epoch_index = 0
    epoch_end = epoch_len(0)

    # Epoch counters (flushed into `counters` at each learner call).
    # ``oram_cycles`` is derived: the reference accumulates `latency`
    # once per served request, and integer-valued float accumulation is
    # exact, so it always equals access_count * latency.
    ctr_access = 0
    ctr_waste = 0.0
    # Run totals (flushed into controller.stats at the end).
    total_dummy = 0
    total_waste = 0.0

    def advance(until: float) -> None:
        """Fire every dummy slot starting strictly before ``until``,
        processing epoch transitions as the timeline crosses them."""
        nonlocal prev, last_was_real, total_dummy
        nonlocal rate, rate_f, step, epoch_index, epoch_end
        nonlocal ctr_access, ctr_waste
        while True:
            while prev >= epoch_end:
                # ---- epoch transition ----
                epoch_cycles = float(epoch_len(epoch_index))
                counters.access_count = ctr_access
                counters.oram_cycles = float(ctr_access * latency)
                counters.waste = ctr_waste
                decision = learner.decide(counters, epoch_cycles)
                counters.reset()
                ctr_access = 0
                ctr_waste = 0.0
                epoch_index += 1
                epoch_start = epoch_end
                rate = decision.chosen_rate
                rate_f = float(rate)
                step = rate + latency
                epochs.append(
                    EpochRecord(
                        index=epoch_index,
                        start_cycle=float(epoch_start),
                        rate=rate,
                        raw_estimate=decision.raw_estimate,
                    )
                )
                epoch_end = epoch_start + epoch_len(epoch_index)
            if prev + rate >= until:
                return
            # Count of dummy slots before `until`: j in [0, k) with
            # prev + j*step + rate < until.  Estimate with float division
            # and correct with exact integer/float comparisons.
            k = int((until - prev - rate) // step) + 1
            if k < 1:
                k = 1
            while k > 0 and prev + (k - 1) * step + rate >= until:
                k -= 1
            while prev + k * step + rate < until:
                k += 1
            # Dummies may only fire while prev stays inside the epoch;
            # the transition at the boundary can change the rate.
            span = epoch_end - prev
            k2 = -(-span // step)
            if k2 < k:
                k = k2
            if k <= 0:
                continue  # epoch boundary first; transition and retry
            prev += k * step
            total_dummy += k
            last_was_real = False

    completions = np.zeros(n, dtype=np.float64) if record_requests else None

    core = 0.0
    buffer: deque = deque()
    buf_pop = buffer.popleft
    buf_push = buffer.append

    for i in range(n):
        arrival = core + gaps[i]
        # ---- serve(arrival) ----
        if prev >= epoch_end or prev + rate < arrival:
            advance(arrival)
        slot = prev + rate
        if arrival <= prev:
            if last_was_real:
                waste = rate_f  # Req 3
            else:
                waste = slot - arrival  # Req 2: dummy remainder + gap
        else:
            waste = slot - arrival  # Req 1: idle wait, <= rate
        ctr_waste += waste
        total_waste += waste
        completion = slot + latency
        ctr_access += 1
        prev = completion
        last_was_real = True
        # ---- core/write-buffer reaction ----
        if blocking[i]:
            core = completion
        else:
            while buffer and buffer[0] <= arrival:
                buf_pop()
            proceed = arrival
            while len(buffer) >= entries:
                oldest = buf_pop()
                if oldest > proceed:
                    proceed = oldest
            buf_push(completion)
            core = proceed
        if completions is not None:
            completions[i] = completion

    end_time = core + miss_trace.total_compute_cycles
    drain = buffer[-1] if buffer else 0.0
    end_time = float(max(end_time, drain))
    advance(end_time)  # finalize: trailing dummies

    # Publish the final state back onto the controller.
    controller.rate = rate
    counters.access_count = ctr_access
    counters.oram_cycles = float(ctr_access * latency)
    counters.waste = ctr_waste
    controller.stats.real_accesses = n
    controller.stats.dummy_accesses = total_dummy
    controller.stats.total_waste = total_waste
    return end_time, completions


# ----------------------------------------------------------------------
# Config-batched slotted kernel
# ----------------------------------------------------------------------

def _replay_slotted_batch(miss_trace, controllers, entries, record_requests):
    """Advance many slot controllers in lockstep over one arrival stream.

    Per-config state lives in ``(n_configs,)`` float64 arrays.  Every
    quantity on the controller timeline is an integer-valued double
    (sums and small products of ``rate``/``latency`` integers stay well
    below 2**53), so the arithmetic is exact and each config's timeline
    matches its scalar replay bit for bit; arrival times enter only
    comparisons, exactly as in the single-config kernels.  The dummy
    counts per idle window use the same estimate-then-correct scheme as
    the scalar kernel — the correction comparisons pin a unique exact
    count, so the float estimate never leaks into the result.

    The write buffer is a per-config ring of the last ``entries``
    non-blocking completions: completions are strictly increasing, so
    draining is a vectorized count of live entries at or before the
    arrival, and the blocking flag is shared by every config (it comes
    from the trace), keeping the core-reaction branch uniform across
    the batch.

    Returns ``[(end_time, completions-or-None), ...]`` in controller
    order, with final rate/counter/stat state published back onto each
    controller (same contract as the single-config kernels).
    """
    n_cfg = len(controllers)
    # MissTrace.__post_init__ canonicalizes (contiguous float64/bool).
    gaps_np = miss_trace.gap_cycles
    blocking_np = miss_trace.is_blocking
    gaps = gaps_np.tolist()
    blocking = blocking_np.tolist()
    n = len(gaps)

    lat = np.array([float(c.latency) for c in controllers])
    rate = np.array([float(c.rate) for c in controllers])
    step = rate + lat
    schedules = [c.schedule for c in controllers]
    learners = [c.learner for c in controllers]
    has_sched = np.array([s is not None for s in schedules])
    any_sched = bool(has_sched.any())
    # Static configs park their boundary at +inf: `prev >= epoch_end`
    # is then never true and the transition machinery skips them.
    epoch_end = np.array(
        [float(s.epoch_length(0)) if s is not None else np.inf for s in schedules]
    )
    epoch_index = np.zeros(n_cfg, dtype=np.int64)

    prev = np.zeros(n_cfg)
    slot = prev + rate
    last_real = np.zeros(n_cfg, dtype=bool)
    all_real = False  # fast-path mirror of last_real.all()

    # Epoch counters: access counts derive from the shared served count
    # (every config serves every request), oram_cycles from the exact
    # identity `access_count * latency`; only waste needs a per-request
    # float accumulator (reset at transitions, so the run total is a
    # second, never-reset accumulator — float addition order matters).
    ctr_waste = np.zeros(n_cfg)
    served_at_reset = np.zeros(n_cfg, dtype=np.int64)
    total_waste = np.zeros(n_cfg)
    dummies = np.zeros(n_cfg)
    served = 0

    core = np.zeros(n_cfg)
    wb = np.zeros((n_cfg, entries))
    wb_count = np.zeros(n_cfg, dtype=np.int64)
    wb_cols = np.arange(entries)

    completions_out = np.zeros((n_cfg, n)) if record_requests else None

    def transition(mask) -> None:
        """One epoch transition for every config in ``mask``."""
        idx = np.flatnonzero(mask)
        access = (served - served_at_reset[idx]).astype(np.float64)
        oram_cycles = access * lat[idx]
        epoch_cycles = np.array(
            [float(schedules[c].epoch_length(int(epoch_index[c]))) for c in idx]
        )
        raw, chosen = decide_batch(
            [learners[c] for c in idx],
            served - served_at_reset[idx],
            ctr_waste[idx],
            oram_cycles,
            epoch_cycles,
        )
        served_at_reset[idx] = served
        ctr_waste[idx] = 0.0
        epoch_index[idx] += 1
        epoch_start = epoch_end[idx]
        rate[idx] = chosen
        step[idx] = rate[idx] + lat[idx]
        next_length = np.array(
            [float(schedules[c].epoch_length(int(epoch_index[c]))) for c in idx]
        )
        epoch_end[idx] = epoch_start + next_length
        for j, c in enumerate(idx):
            controllers[c].epochs.append(
                EpochRecord(
                    index=int(epoch_index[c]),
                    start_cycle=float(epoch_start[j]),
                    rate=int(chosen[j]),
                    raw_estimate=float(raw[j]),
                )
            )

    def advance(until) -> None:
        """Fire every dummy slot starting strictly before ``until``.

        ``until`` broadcasts over configs (scalar or per-config array);
        the loop rounds are bounded by epoch boundaries crossed, not by
        dummy counts — each round fires a closed-form batch of dummies
        capped at each config's boundary.
        """
        nonlocal prev, last_real, all_real, dummies
        while True:
            if any_sched:
                crossing = prev >= epoch_end
                while crossing.any():
                    transition(crossing)
                    crossing = prev >= epoch_end
            pending = (prev + rate) < until
            if not pending.any():
                return
            # Count of dummy slots before `until`: j in [0, k) with
            # prev + j*step + rate < until.  Estimate with float
            # division, then pin the unique exact count with integer-
            # exact comparisons (all quantities are integer-valued
            # doubles, so >=/< are exact).
            k = np.floor((until - prev - rate) / step) + 1.0
            np.maximum(k, 1.0, out=k)
            while True:
                over = pending & (k > 0.0) & ((prev + (k - 1.0) * step + rate) >= until)
                if not over.any():
                    break
                k -= over
            while True:
                under = pending & ((prev + k * step + rate) < until)
                if not under.any():
                    break
                k += under
            if any_sched:
                # Dummies may only fire while prev stays inside the
                # epoch; the boundary transition can change the rate.
                span = epoch_end - prev
                capped = pending & has_sched
                k2 = np.where(capped, np.ceil(span / step), np.inf)
                while True:
                    m = capped & (k2 > 0.0) & (((k2 - 1.0) * step) >= span)
                    if not m.any():
                        break
                    k2 -= m
                while True:
                    m = capped & ((k2 * step) < span)
                    if not m.any():
                        break
                    k2 += m
                k = np.where(capped & (k2 < k), k2, k)
            fire = pending & (k > 0.0)
            if fire.any():
                fired = np.where(fire, k, 0.0)
                prev = prev + fired * step
                dummies += fired
                last_real = last_real & ~fire
                all_real = False
            if not any_sched:
                return  # the uncapped count always reaches `until`

    def try_run(start: int, m: int) -> int:
        """Replay up to ``m`` requests from ``start`` as one closed form.

        In a stretch where no config fires a dummy or crosses an epoch
        boundary, the controller timeline of *every* request — blocking
        or not — is affine: ``prev + j*step`` per config, exactly (all
        integer-valued).  The core's position is then determined too: a
        blocking serve locks it to the (affine) completion, and in the
        controller-bound regime a non-blocking serve drains the whole
        write buffer (the arrival has passed every older completion)
        without popping, leaving ``core = arrival``.  Arrivals chain
        from the nearest completion anchor — one float rounding per
        request, evaluated matrix-wise in chain-depth passes, exactly
        as the scalar replay rounds them.

        Every assumption is *certified* per (config, request) cell with
        the same comparisons the scalar replay would make — no dummy
        pending (``arrival <= slot``), no boundary due
        (``prev < epoch_end``), stores fully draining at each stretch
        start and not draining inside one — and the run is truncated at
        the first request where any config fails.  The per-config waste
        accumulators are threaded through seeded ``np.cumsum`` calls
        (sequential recurrences), so float addition order matches the
        scalar replay bit for bit.

        Returns ``(consumed, next_attempt)``: the number of requests
        replayed (0: fall back to per-request stepping) and the first
        index where attempting another run can possibly pay off.
        """
        nonlocal prev, slot, core, ctr_waste, total_waste, served, wb, wb_count
        margin_capped = False
        if any_sched:
            # Cheap pre-bound: no column can clear certification past
            # the earliest epoch boundary, so don't build matrices for
            # it.  Columns up to margin-1 are safe by a float-slack
            # argument (the quotient's error is << 1); only the capped
            # tail column needs the exact comparison below.
            margin = float(((epoch_end - prev) / step).min())
            if margin < m:
                m = int(margin) + 1
                margin_capped = True
                if m < run_min:
                    return 0, start + 1
        g_row = gaps_np[start:start + m]
        blk_row = blocking_np[start:start + m]
        nb_row = ~blk_row
        idx_row = np.arange(m)

        slot_mat = slot[:, None] + np.multiply.outer(step, np.arange(0.0, m))
        comp_mat = slot_mat + lat[:, None]

        # Arrival chains: a column whose predecessor was *blocking* is
        # anchored on that completion; a column whose predecessor was
        # non-blocking continues from its arrival.  Depth = distance to
        # the nearest anchor; pass d resolves every depth-d column from
        # its (already resolved) left neighbour.
        arrival = np.empty((n_cfg, m))
        arrival[:, 0] = core + g_row[0]
        if m > 1:
            arrival[:, 1:] = comp_mat[:, :-1] + g_row[None, 1:]
        chained = np.zeros(m, dtype=bool)
        chained[1:] = nb_row[:-1]
        if chained.any():
            depth_row = idx_row - np.maximum.accumulate(
                np.where(~chained, idx_row, -1)
            )
            for d in range(1, int(depth_row.max()) + 1):
                cols = np.flatnonzero(depth_row == d)
                arrival[:, cols] = arrival[:, cols - 1] + g_row[cols]

        # Certification, folded to one per-column row: the worst config's
        # slot headroom decides the no-dummy condition.  Gap sign is what
        # makes stretch-start stores drain the whole buffer automatically
        # (arrival >= newest completion >= every older one).
        diff = slot_mat - arrival
        col_ok = diff.min(axis=0) >= 0.0
        col_ok &= g_row >= 0.0
        if margin_capped:
            col_ok[m - 1] &= bool(
                ((slot_mat[:, m - 1] - rate) < epoch_end).all()
            )
        if nb_row.any():
            # Store stretches: position within a run of consecutive
            # non-blocking requests.  Position `entries` would pop —
            # break there; positions inside a stretch must not drain
            # (their arrival stays below the stretch-start completion);
            # a stretch-start store at the run head must drain every
            # carried live entry.
            nb_cols = np.flatnonzero(nb_row)
            pos_nb = nb_cols - np.maximum.accumulate(
                np.where(blk_row, idx_row, -1)
            )[nb_cols] - 1
            col_ok[nb_cols[pos_nb >= entries]] = False
            stretch_mask = (pos_nb > 0) & (pos_nb < entries)
            inside = nb_cols[stretch_mask]
            if len(inside):
                col_ok[inside] &= (
                    comp_mat[:, inside - pos_nb[stretch_mask]]
                    > arrival[:, inside]
                ).all(axis=0)
            if nb_row[0]:
                live = wb_cols >= (entries - wb_count)[:, None]
                col_ok[0] &= bool((~live | (wb <= arrival[:, 0:1])).all())
        m_cert = m if col_ok.all() else int(np.argmin(col_ok))
        if m_cert < run_min:
            return 0, start + m_cert + 1
        if m_cert < m:
            blk_row = blk_row[:m_cert]
            nb_row = nb_row[:m_cert]
            comp_mat = comp_mat[:, :m_cert]
            arrival = arrival[:, :m_cert]
            diff = diff[:, :m_cert]

        # waste = rate when the request queued behind real work (Req 3,
        # arrival <= prev, i.e. diff >= rate up to a value-preserving
        # rounding tie), else the wait for the next slot (Req 1/2).
        waste_run = np.minimum(diff, rate[:, None])
        seeded = np.empty((n_cfg, m_cert + 1))
        seeded[:, 1:] = waste_run
        seeded[:, 0] = ctr_waste
        ctr_waste = np.cumsum(seeded, axis=1)[:, -1]
        seeded[:, 0] = total_waste
        total_waste = np.cumsum(seeded, axis=1)[:, -1]
        if completions_out is not None:
            completions_out[:, start:start + m_cert] = comp_mat

        # Post-run state: the core sits at the last completion (blocking
        # tail) or the last arrival (store tail); the buffer holds
        # exactly the trailing store stretch's completions.
        last = m_cert - 1
        core = comp_mat[:, last].copy() if blk_row[last] else arrival[:, last].copy()
        nb_cert = np.flatnonzero(nb_row)
        if len(nb_cert):
            tail = int(nb_cert[-1])
            q = tail - int(np.maximum.accumulate(
                np.where(blk_row, idx_row[:m_cert], -1)
            )[tail])
            wb_new = np.zeros((n_cfg, entries))
            wb_new[:, entries - q:] = comp_mat[:, tail - q + 1:tail + 1]
            wb = wb_new
            wb_count = np.full(n_cfg, q, dtype=np.int64)
        prev = prev + m_cert * step
        slot = prev + rate
        served += m_cert
        return m_cert, start + m_cert + (0 if m_cert == m else 1)

    # The serve loop.  Two execution grains: closed-form runs between
    # epoch boundaries (``try_run``), and per-request stepping over
    # ``(n_configs,)`` arrays for everything the certification rejects
    # (dummy windows, boundary crossings, buffer drains).
    run_min = 4  # below this, per-request stepping is cheaper
    run_chunk = 256  # certification window per attempt
    no_attempt_before = 0
    i = 0
    while i < n:
        if all_real and i >= no_attempt_before:
            candidate = n - i
            if candidate > run_chunk:
                candidate = run_chunk
            if candidate >= run_min:
                consumed, no_attempt_before = try_run(i, candidate)
                if consumed:
                    i += consumed
                    continue
        arrival = core + gaps[i]
        # ---- serve(arrival) ----
        stale = bool((slot < arrival).any())
        if not stale and any_sched:
            stale = bool((prev >= epoch_end).any())
        if stale:
            advance(arrival)
            slot = prev + rate
        gap_to_slot = slot - arrival
        if all_real:
            # Req 3 where the request queued behind real work, else the
            # Req 1/2 wait for the next slot.
            waste = np.where(arrival <= prev, rate, gap_to_slot)
        else:
            waste = np.where((arrival <= prev) & last_real, rate, gap_to_slot)
            last_real[:] = True
            all_real = True
        ctr_waste += waste
        total_waste += waste
        completion = slot + lat
        prev = completion
        slot = completion + rate
        served += 1
        # ---- core/write-buffer reaction (blocking flag is shared) ----
        if blocking[i]:
            core = completion
        else:
            live = wb_cols >= (entries - wb_count)[:, None]
            drained = (live & (wb <= arrival[:, None])).sum(axis=1)
            wb_count = wb_count - drained
            full = wb_count >= entries
            if full.any():
                oldest = wb[:, 0]
                core = np.where(full & (oldest > arrival), oldest, arrival)
                wb_count = wb_count - full
            else:
                core = arrival
            wb[:, :-1] = wb[:, 1:]
            wb[:, -1] = completion
            wb_count = wb_count + 1
        if completions_out is not None:
            completions_out[:, i] = completion
        i += 1

    drain = np.where(wb_count > 0, wb[:, -1], 0.0)
    end_time = np.maximum(core + miss_trace.total_compute_cycles, drain)
    advance(end_time)  # finalize: trailing dummies

    # Publish the final state back onto each controller.
    out = []
    for j, controller in enumerate(controllers):
        controller.rate = int(rate[j])
        access = served - int(served_at_reset[j])
        counters = controller.counters
        counters.access_count = access
        counters.oram_cycles = float(access * controller.latency)
        counters.waste = float(ctr_waste[j])
        controller.stats.real_accesses = n
        controller.stats.dummy_accesses = int(dummies[j])
        controller.stats.total_waste = float(total_waste[j])
        out.append((
            float(end_time[j]),
            completions_out[j].copy() if completions_out is not None else None,
        ))
    return out


# ----------------------------------------------------------------------
# Shared result assembly
# ----------------------------------------------------------------------

def _finish(miss_trace, scheme, controller, end_time, completions):
    return _build_result(
        miss_trace, scheme, controller, end_time, completions,
        record_requests=completions is not None,
        record_observable_trace=False,
    )


def _build_result(
    miss_trace, scheme, controller, end_time, completions,
    record_requests, record_observable_trace,
) -> SimResult:
    cycles = float(max(end_time, 1.0))
    if scheme.is_oram:
        memory_nj = oram_memory_energy_nj(
            controller.stats.total_accesses, coefficients=PAPER_COEFFICIENTS
        )
    else:
        memory_nj = dram_memory_energy_nj(
            controller.stats.total_accesses, coefficients=PAPER_COEFFICIENTS
        )
    breakdown = build_breakdown(miss_trace.energy, cycles, memory_nj)

    return SimResult(
        scheme_name=scheme.name,
        benchmark=f"{miss_trace.source_name}/{miss_trace.source_input}",
        cycles=cycles,
        n_instructions=miss_trace.n_instructions,
        controller=controller.stats,
        epochs=controller.rate_history,
        energy=miss_trace.energy,
        breakdown=breakdown,
        request_completion_times=(
            completions if completions is not None else np.empty(0)
        ),
        request_instruction_index=(
            miss_trace.instruction_index if record_requests else np.empty(0, dtype=np.int64)
        ),
        blocking_mask=(
            miss_trace.is_blocking if record_requests else np.empty(0, dtype=bool)
        ),
        observable_access_times=(
            np.asarray(controller.trace, dtype=np.float64)
            if record_observable_trace
            else np.empty(0)
        ),
    )
