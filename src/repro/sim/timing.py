"""Event-driven timing simulation of one benchmark under one scheme.

Replays a :class:`~repro.cpu.trace.MissTrace` (produced once per benchmark
by the functional cache pass) against a memory controller built by a
scheme.  The machine model:

* the in-order core executes compute between LLC requests (the precomputed
  ``gap_cycles``), so the core timeline only interacts with memory at
  request points;
* **blocking** requests (load misses) stall the core until the response;
* **non-blocking** requests (store-miss fills, dirty writebacks) enter the
  8-entry write buffer and drain in the background; the core stalls only
  when the buffer is full (Table 1, Section 9.1.2 — this is what creates
  the Req 3 multiple-outstanding pattern of Figure 4);
* the memory controller is one of
  :class:`~repro.core.controller.FlatDramController` (base_dram),
  :class:`~repro.core.controller.UnprotectedController` (base_oram), or
  :class:`~repro.core.controller.TimingProtectedController`
  (static/dynamic) — the latter inserts dummy accesses and rate waits.
"""

from __future__ import annotations

import numpy as np

from repro.cache.write_buffer import WriteBuffer
from repro.cpu.trace import MissTrace
from repro.power.coefficients import PAPER_COEFFICIENTS
from repro.power.model import (
    build_breakdown,
    dram_memory_energy_nj,
    oram_memory_energy_nj,
)
from repro.sim.result import SimResult


def run_timing(
    miss_trace: MissTrace,
    scheme,
    write_buffer_entries: int = 8,
    record_requests: bool = True,
    record_observable_trace: bool = False,
) -> SimResult:
    """Replay ``miss_trace`` under ``scheme``; return the full result.

    ``scheme`` is any object from :mod:`repro.core.scheme` exposing
    ``build_controller()``, ``name`` and ``is_oram``.

    With ``record_observable_trace``, the result carries the start time of
    every memory access an adversary can observe — including dummies for
    slot-enforced schemes (the Section 4.2 capability).
    """
    controller = scheme.build_controller()
    controller.record_trace = record_observable_trace
    buffer = WriteBuffer(entries=write_buffer_entries)

    gaps = miss_trace.gap_cycles
    blocking = miss_trace.is_blocking
    n_requests = len(gaps)

    completions = np.zeros(n_requests, dtype=np.float64) if record_requests else None

    core_time = 0.0
    serve = controller.serve
    admit = buffer.admit

    for index in range(n_requests):
        issue = core_time + gaps[index]
        completion = serve(issue)
        if blocking[index]:
            core_time = completion
        else:
            core_time = admit(issue, completion)
        if completions is not None:
            completions[index] = completion

    # Tail: the core's final compute and any still-draining stores.
    end_time = core_time + miss_trace.total_compute_cycles
    end_time = max(end_time, buffer.drain_all())
    controller.finalize(end_time)

    cycles = max(end_time, 1.0)
    if scheme.is_oram:
        memory_nj = oram_memory_energy_nj(
            controller.stats.total_accesses, coefficients=PAPER_COEFFICIENTS
        )
    else:
        memory_nj = dram_memory_energy_nj(
            controller.stats.total_accesses, coefficients=PAPER_COEFFICIENTS
        )
    breakdown = build_breakdown(miss_trace.energy, cycles, memory_nj)

    return SimResult(
        scheme_name=scheme.name,
        benchmark=f"{miss_trace.source_name}/{miss_trace.source_input}",
        cycles=cycles,
        n_instructions=miss_trace.n_instructions,
        controller=controller.stats,
        epochs=controller.rate_history,
        energy=miss_trace.energy,
        breakdown=breakdown,
        request_completion_times=(
            completions if completions is not None else np.empty(0)
        ),
        request_instruction_index=(
            miss_trace.instruction_index if record_requests else np.empty(0, dtype=np.int64)
        ),
        blocking_mask=(
            miss_trace.is_blocking if record_requests else np.empty(0, dtype=bool)
        ),
        observable_access_times=(
            np.asarray(controller.trace, dtype=np.float64)
            if record_observable_trace
            else np.empty(0)
        ),
    )
