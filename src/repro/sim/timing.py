"""Event-driven timing simulation of one benchmark under one scheme.

Replays a :class:`~repro.cpu.trace.MissTrace` (produced once per benchmark
by the functional cache pass) against a memory controller built by a
scheme.  The machine model:

* the in-order core executes compute between LLC requests (the precomputed
  ``gap_cycles``), so the core timeline only interacts with memory at
  request points;
* **blocking** requests (load misses) stall the core until the response;
* **non-blocking** requests (store-miss fills, dirty writebacks) enter the
  8-entry write buffer and drain in the background; the core stalls only
  when the buffer is full (Table 1, Section 9.1.2 — this is what creates
  the Req 3 multiple-outstanding pattern of Figure 4);
* the memory controller is one of
  :class:`~repro.core.controller.FlatDramController` (base_dram),
  :class:`~repro.core.controller.UnprotectedController` (base_oram), or
  :class:`~repro.core.controller.TimingProtectedController`
  (static/dynamic) — the latter inserts dummy accesses and rate waits.

Two replay kernels produce **bit-identical** :class:`SimResult`\\ s:

* ``mode="reference"`` — the original scalar loop calling
  ``controller.serve`` once per request (and, for slot controllers, once
  per *dummy slot* inside ``_advance``).
* ``mode="fast"`` (default) — per-controller kernels that do the same
  arithmetic in bulk.  ``base_dram`` replays as a handful of numpy array
  ops (the interleaved gap/latency ``np.cumsum`` reproduces the scalar
  ``+=`` chain exactly, because cumsum is a sequential recurrence) with a
  vectorized write-buffer-stall check and a reference fallback on the
  rare full-buffer stall.  Slot controllers (static/dynamic) keep the
  per-request loop but replace the per-dummy-slot ``_advance`` iteration
  with closed-form integer slot arithmetic per idle window — the
  controller timeline never depends on fractional arrival times, only on
  comparisons against them, so the whole slot/dummy/epoch state machine
  runs on exact Python integers whose float images match the reference's
  accumulated floats bit for bit.

``record_observable_trace`` runs always use the reference kernel: the
adversary-view trace wants one append per access, which is exactly the
per-event work the fast kernels eliminate.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.cache.write_buffer import WriteBuffer
from repro.core.controller import (
    EpochRecord,
    FlatDramController,
    TimingProtectedController,
    UnprotectedController,
)
from repro.cpu.trace import MissTrace
from repro.power.coefficients import PAPER_COEFFICIENTS
from repro.power.model import (
    build_breakdown,
    dram_memory_energy_nj,
    oram_memory_energy_nj,
)
from repro.sim.result import SimResult


def run_timing(
    miss_trace: MissTrace,
    scheme,
    write_buffer_entries: int = 8,
    record_requests: bool = True,
    record_observable_trace: bool = False,
    mode: str = "fast",
) -> SimResult:
    """Replay ``miss_trace`` under ``scheme``; return the full result.

    ``scheme`` is any object from :mod:`repro.core.scheme` exposing
    ``build_controller()``, ``name`` and ``is_oram``.

    With ``record_observable_trace``, the result carries the start time of
    every memory access an adversary can observe — including dummies for
    slot-enforced schemes (the Section 4.2 capability).

    ``mode`` selects the replay kernel (``"fast"``/``"reference"``); both
    are bit-identical, enforced by
    ``tests/sim/test_timing_equivalence.py``.
    """
    if mode not in ("fast", "reference"):
        raise ValueError(f"mode must be 'fast' or 'reference', got {mode!r}")
    controller = scheme.build_controller()
    controller.record_trace = record_observable_trace
    if mode == "fast" and not record_observable_trace:
        if type(controller) is FlatDramController:
            replay = _replay_flat_dram(
                miss_trace, controller, write_buffer_entries, record_requests
            )
            if replay is not None:
                return _finish(miss_trace, scheme, controller, *replay)
            # Rare full-buffer stall: fall through to the reference loop.
        elif type(controller) is UnprotectedController:
            replay = _replay_unprotected(
                miss_trace, controller, write_buffer_entries, record_requests
            )
            return _finish(miss_trace, scheme, controller, *replay)
        elif type(controller) is TimingProtectedController:
            replay = _replay_slotted(
                miss_trace, controller, write_buffer_entries, record_requests
            )
            return _finish(miss_trace, scheme, controller, *replay)
        # Unknown controller types replay through the reference loop.
    return _replay_reference(
        miss_trace, scheme, controller, write_buffer_entries,
        record_requests, record_observable_trace,
    )


# ----------------------------------------------------------------------
# Reference kernel
# ----------------------------------------------------------------------

def _replay_reference(
    miss_trace, scheme, controller, write_buffer_entries,
    record_requests, record_observable_trace,
) -> SimResult:
    """The original scalar replay: one ``serve`` call per request."""
    buffer = WriteBuffer(entries=write_buffer_entries)

    gaps = miss_trace.gap_cycles
    blocking = miss_trace.is_blocking
    n_requests = len(gaps)

    completions = np.zeros(n_requests, dtype=np.float64) if record_requests else None

    core_time = 0.0
    serve = controller.serve
    admit = buffer.admit

    for index in range(n_requests):
        issue = core_time + gaps[index]
        completion = serve(issue)
        if blocking[index]:
            core_time = completion
        else:
            core_time = admit(issue, completion)
        if completions is not None:
            completions[index] = completion

    # Tail: the core's final compute and any still-draining stores.
    end_time = core_time + miss_trace.total_compute_cycles
    end_time = max(end_time, buffer.drain_all())
    controller.finalize(end_time)

    return _build_result(
        miss_trace, scheme, controller, end_time, completions,
        record_requests, record_observable_trace,
    )


# ----------------------------------------------------------------------
# Fast kernels
# ----------------------------------------------------------------------

def _replay_flat_dram(miss_trace, controller, entries, record_requests):
    """Vectorized base_dram replay; ``None`` if the write buffer stalls.

    The scalar recurrence is ``core += gap`` then, for blocking requests,
    ``core += latency`` (the admit path returns ``now`` when the buffer
    never fills).  Interleaving those terms and taking ``np.cumsum`` —
    a sequential recurrence — reproduces the float chain exactly.
    """
    gaps = miss_trace.gap_cycles
    blocking = miss_trace.is_blocking
    n = len(gaps)
    latency = controller.latency
    if n == 0:
        controller.stats.real_accesses = 0
        end_time = 0.0 + miss_trace.total_compute_cycles
        end_time = max(end_time, 0.0)
        return end_time, (np.zeros(0) if record_requests else None)

    inter = np.empty(2 * n)
    inter[0::2] = gaps
    inter[1::2] = np.where(blocking, float(latency), 0.0)
    prefix = np.cumsum(inter)
    issues = prefix[0::2]
    core_after = prefix[1::2]
    completions = issues + latency

    nb = completions[~blocking]
    if len(nb) > entries:
        # k-th non-blocking admit stalls iff the (k - entries)-th is
        # still in flight at its issue time.
        if (nb[:-entries] > issues[~blocking][entries:]).any():
            return None  # reference fallback

    controller.stats.real_accesses = n
    core_end = float(core_after[-1])
    end_time = core_end + miss_trace.total_compute_cycles
    drain = float(nb[-1]) if len(nb) else 0.0
    end_time = max(end_time, drain)
    return end_time, (completions if record_requests else None)


def _replay_unprotected(miss_trace, controller, entries, record_requests):
    """Lean base_oram replay: single-ported ORAM, no slots, no dummies."""
    gaps = miss_trace.gap_cycles.tolist()
    blocking = miss_trace.is_blocking.tolist()
    n = len(gaps)
    latency = controller.latency
    completions = np.zeros(n, dtype=np.float64) if record_requests else None

    core = 0.0
    prev = 0.0
    real = 0
    buffer: deque = deque()
    buf_pop = buffer.popleft
    buf_push = buffer.append

    for i in range(n):
        issue = core + gaps[i]
        start = issue if issue > prev else prev
        completion = start + latency
        prev = completion
        real += 1
        if blocking[i]:
            core = completion
        else:
            while buffer and buffer[0] <= issue:
                buf_pop()
            proceed = issue
            while len(buffer) >= entries:
                oldest = buf_pop()
                if oldest > proceed:
                    proceed = oldest
            buf_push(completion)
            core = proceed
        if completions is not None:
            completions[i] = completion

    controller.stats.real_accesses = real
    end_time = core + miss_trace.total_compute_cycles
    drain = buffer[-1] if buffer else 0.0
    end_time = max(end_time, drain)
    return float(end_time), completions


def _replay_slotted(miss_trace, controller, entries, record_requests):
    """Slot-controller replay with closed-form dummy-slot arithmetic.

    The controller timeline (slots, dummies, epochs) is integer-valued:
    every quantity is a sum of ``rate``/``latency`` integers, and arrival
    times only enter *comparisons*, never the arithmetic.  Keeping the
    timeline in exact Python integers therefore reproduces the
    reference's float timeline bit for bit (integer-valued doubles are
    exact), while an idle window of k dummy slots costs O(1) arithmetic
    instead of k loop iterations.
    """
    gaps = miss_trace.gap_cycles.tolist()
    blocking = miss_trace.is_blocking.tolist()
    n = len(gaps)
    latency = controller.latency
    schedule = controller.schedule
    learner = controller.learner
    counters = controller.counters
    epochs = controller.epochs

    rate = controller.rate
    prev = 0  # _completion_prev, exact integer timeline
    last_was_real = False
    epoch_index = 0
    if schedule is not None:
        epoch_end: int | None = schedule.epoch_length(0)
    else:
        epoch_end = None

    # Epoch counters (flushed into `counters` at each learner call).
    ctr_access = 0
    ctr_oram = 0.0
    ctr_waste = 0.0
    # Run totals (flushed into controller.stats at the end).
    total_real = 0
    total_dummy = 0
    total_waste = 0.0

    def transition() -> None:
        nonlocal rate, epoch_index, epoch_end, ctr_access, ctr_oram, ctr_waste
        epoch_cycles = float(schedule.epoch_length(epoch_index))
        counters.access_count = ctr_access
        counters.oram_cycles = ctr_oram
        counters.waste = ctr_waste
        decision = learner.decide(counters, epoch_cycles)
        counters.reset()
        ctr_access = 0
        ctr_oram = 0.0
        ctr_waste = 0.0
        epoch_index += 1
        epoch_start = epoch_end
        rate = decision.chosen_rate
        epochs.append(
            EpochRecord(
                index=epoch_index,
                start_cycle=float(epoch_start),
                rate=decision.chosen_rate,
                raw_estimate=decision.raw_estimate,
            )
        )
        nonlocal_epoch_end = epoch_start + schedule.epoch_length(epoch_index)
        epoch_end = nonlocal_epoch_end

    def advance(until: float) -> None:
        """Fire every dummy slot starting strictly before ``until``."""
        nonlocal prev, last_was_real, total_dummy
        while True:
            if epoch_end is not None:
                while prev >= epoch_end:
                    transition()
            if prev + rate >= until:
                return
            step = rate + latency
            # Count of dummy slots before `until`: j in [0, k1) with
            # prev + j*step + rate < until.  Estimate with float division
            # and correct with exact integer/float comparisons.
            k1 = int((until - prev - rate) // step) + 1
            if k1 < 1:
                k1 = 1
            while k1 > 0 and prev + (k1 - 1) * step + rate >= until:
                k1 -= 1
            while prev + k1 * step + rate < until:
                k1 += 1
            if epoch_end is not None:
                # Dummies may only fire while prev stays inside the
                # epoch; the transition at the boundary can change rate.
                span = epoch_end - prev
                k2 = -(-span // step)
                if k2 < k1:
                    k1 = k2
            if k1 <= 0:
                continue  # epoch boundary first; transition and retry
            prev += k1 * step
            total_dummy += k1
            last_was_real = False

    completions = np.zeros(n, dtype=np.float64) if record_requests else None

    core = 0.0
    buffer: deque = deque()
    buf_pop = buffer.popleft
    buf_push = buffer.append

    for i in range(n):
        arrival = core + gaps[i]
        # ---- serve(arrival) ----
        advance(arrival)
        if epoch_end is not None:
            while prev >= epoch_end:
                transition()
        slot = prev + rate
        if arrival <= prev:
            if last_was_real:
                waste = float(rate)  # Req 3
            else:
                waste = slot - arrival  # Req 2: dummy remainder + gap
        else:
            waste = slot - arrival  # Req 1: idle wait, <= rate
        ctr_waste += waste
        total_waste += waste
        completion = slot + latency
        ctr_access += 1
        ctr_oram += latency
        total_real += 1
        prev = completion
        last_was_real = True
        # ---- core/write-buffer reaction ----
        if blocking[i]:
            core = completion
        else:
            while buffer and buffer[0] <= arrival:
                buf_pop()
            proceed = arrival
            while len(buffer) >= entries:
                oldest = buf_pop()
                if oldest > proceed:
                    proceed = oldest
            buf_push(completion)
            core = proceed
        if completions is not None:
            completions[i] = completion

    end_time = core + miss_trace.total_compute_cycles
    drain = buffer[-1] if buffer else 0.0
    end_time = float(max(end_time, drain))
    advance(end_time)  # finalize: trailing dummies

    # Publish the final state back onto the controller.
    controller.rate = rate
    counters.access_count = ctr_access
    counters.oram_cycles = ctr_oram
    counters.waste = ctr_waste
    controller.stats.real_accesses = total_real
    controller.stats.dummy_accesses = total_dummy
    controller.stats.total_waste = total_waste
    return end_time, completions


# ----------------------------------------------------------------------
# Shared result assembly
# ----------------------------------------------------------------------

def _finish(miss_trace, scheme, controller, end_time, completions):
    return _build_result(
        miss_trace, scheme, controller, end_time, completions,
        record_requests=completions is not None,
        record_observable_trace=False,
    )


def _build_result(
    miss_trace, scheme, controller, end_time, completions,
    record_requests, record_observable_trace,
) -> SimResult:
    cycles = float(max(end_time, 1.0))
    if scheme.is_oram:
        memory_nj = oram_memory_energy_nj(
            controller.stats.total_accesses, coefficients=PAPER_COEFFICIENTS
        )
    else:
        memory_nj = dram_memory_energy_nj(
            controller.stats.total_accesses, coefficients=PAPER_COEFFICIENTS
        )
    breakdown = build_breakdown(miss_trace.energy, cycles, memory_nj)

    return SimResult(
        scheme_name=scheme.name,
        benchmark=f"{miss_trace.source_name}/{miss_trace.source_input}",
        cycles=cycles,
        n_instructions=miss_trace.n_instructions,
        controller=controller.stats,
        epochs=controller.rate_history,
        energy=miss_trace.energy,
        breakdown=breakdown,
        request_completion_times=(
            completions if completions is not None else np.empty(0)
        ),
        request_instruction_index=(
            miss_trace.instruction_index if record_requests else np.empty(0, dtype=np.int64)
        ),
        blocking_mask=(
            miss_trace.is_blocking if record_requests else np.empty(0, dtype=bool)
        ),
        observable_access_times=(
            np.asarray(controller.trace, dtype=np.float64)
            if record_observable_trace
            else np.empty(0)
        ),
    )
