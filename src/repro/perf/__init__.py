"""Performance tracking: microbenchmarks, reports, and baseline gating.

``python -m repro perf`` times the repository's three kernel pairs — the
functional cache pass, the timing replay, and the functional Path ORAM
access burst — plus an end-to-end engine sweep, on pinned deterministic
workloads.  Every timed fast-path run is byte-equivalence-checked
against the scalar reference path, so a perf report doubles as a
correctness certificate for the vectorized kernels.

Reports serialize to ``BENCH_perf.json``; :func:`check_against_baseline`
gates a report against the committed ``benchmarks/baselines.json`` (CI
fails on throughput regressions beyond the tolerance, broken
equivalence, or a headline speedup below its floor — 5x for the cache
pass, 10x for the ORAM burst).
"""

from repro.perf.bench import (
    PERF_WORKLOADS,
    bench_oram,
    build_oram_trace,
    build_perf_trace,
    run_perf_suite,
)
from repro.perf.report import (
    check_against_baseline,
    load_baseline,
    write_baseline,
)

__all__ = [
    "PERF_WORKLOADS",
    "bench_oram",
    "build_oram_trace",
    "build_perf_trace",
    "run_perf_suite",
    "check_against_baseline",
    "load_baseline",
    "write_baseline",
]
