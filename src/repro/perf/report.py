"""Perf report serialization and baseline gating.

``benchmarks/baselines.json`` freezes the throughput of each pinned
microbenchmark.  :func:`check_against_baseline` compares a fresh
:class:`~repro.perf.bench.PerfReport` against it and returns the list of
failures; CI fails the perf job when that list is non-empty.

Gating rules:

* every fast-path measurement must be byte-equivalent to its reference
  (a mismatch is a correctness bug, never tolerated) — for the ORAM
  tier the contract is the ``state_checksum()`` over position map,
  stash, and tree;
* throughput must stay within ``tolerance`` (default 30%) of the
  committed baseline, metric by metric;
* the functional-pass speedup on the headline workload must stay above
  ``min_functional_speedup``, the ORAM-burst speedup above
  ``min_oram_speedup`` (the batched engine's 10x acceptance floor), the
  config-batched frontier-cell speedup above
  ``min_frontier_cell_speedup`` (the 16-config batch's 5x floor), and
  the batched tenancy scheduler above ``min_tenancy_step_speedup``
  (>= 3x over round-robin at 16 tenants);
* **no functional tier may ship with a speedup below 1.0** — a fast
  kernel slower than its own oracle on any pinned workload is a
  regression, full stop (``min_functional_speedup_all``).

Updating the baseline after an intentional change:

    python -m repro perf --update-baseline benchmarks/baselines.json
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.perf.bench import PerfReport

#: Throughput may drop at most this fraction below baseline before CI fails.
DEFAULT_TOLERANCE = 0.30

#: The headline functional-pass workload and its required speedup.
HEADLINE_WORKLOAD = "kernel_stream"
DEFAULT_MIN_SPEEDUP = 5.0

#: The ORAM access-burst workload and the batched engine's speedup floor.
ORAM_HEADLINE_WORKLOAD = "oram_burst"
DEFAULT_MIN_ORAM_SPEEDUP = 10.0

#: Every functional workload must at least match its scalar oracle.
DEFAULT_MIN_FUNCTIONAL_SPEEDUP_ALL = 1.0

#: The frontier-cell headline workload and the batched replay's floor:
#: a 16-config batch must beat 16 sequential reference replays >= 5x.
FRONTIER_CELL_HEADLINE_WORKLOAD = "libquantum"
DEFAULT_MIN_FRONTIER_CELL_SPEEDUP = 5.0

#: The tenancy headline workload and the batched scheduler's floor:
#: packing 16 tenants per bank call must beat round-robin >= 3x.
TENANCY_STEP_HEADLINE_WORKLOAD = "tenants_16"
DEFAULT_MIN_TENANCY_STEP_SPEEDUP = 3.0


def save_report(report: PerfReport, path: str | Path) -> None:
    """Write a report as pretty-printed JSON (BENCH_perf.json)."""
    Path(path).write_text(json.dumps(report.to_dict(), indent=2) + "\n")


def report_to_baseline(report: PerfReport) -> dict:
    """Distill a report into the committed baseline payload."""
    return {
        "tolerance": DEFAULT_TOLERANCE,
        "min_functional_speedup": DEFAULT_MIN_SPEEDUP,
        "headline_workload": HEADLINE_WORKLOAD,
        "min_functional_speedup_all": DEFAULT_MIN_FUNCTIONAL_SPEEDUP_ALL,
        "min_oram_speedup": DEFAULT_MIN_ORAM_SPEEDUP,
        "oram_headline_workload": ORAM_HEADLINE_WORKLOAD,
        "min_frontier_cell_speedup": DEFAULT_MIN_FRONTIER_CELL_SPEEDUP,
        "frontier_cell_headline_workload": FRONTIER_CELL_HEADLINE_WORKLOAD,
        "min_tenancy_step_speedup": DEFAULT_MIN_TENANCY_STEP_SPEEDUP,
        "tenancy_step_headline_workload": TENANCY_STEP_HEADLINE_WORKLOAD,
        "functional": {
            b.workload: {
                "refs_per_sec": round(b.refs_per_sec_fast),
                "speedup": round(b.speedup, 2),
            }
            for b in report.functional
        },
        "timing": {
            f"{b.workload}/{b.scheme}": {
                "requests_per_sec": round(b.requests_per_sec_fast),
                "speedup": round(b.speedup, 2),
            }
            for b in report.timing
        },
        "oram": {
            b.workload: {
                "accesses_per_sec": round(b.accesses_per_sec_fast),
                "speedup": round(b.speedup, 2),
            }
            for b in report.oram
        },
        "frontier_cell": {
            b.workload: {
                "requests_per_sec": round(b.requests_per_sec_fast),
                "speedup": round(b.speedup, 2),
            }
            for b in report.frontier_cell
        },
        "tenancy_step": {
            b.workload: {
                "requests_per_sec": round(b.requests_per_sec_fast),
                "speedup": round(b.speedup, 2),
            }
            for b in report.tenancy_step
        },
        "sweep": {"cells_per_sec": round(report.sweep.cells_per_sec, 2)}
        if report.sweep
        else {},
    }


def write_baseline(report: PerfReport, path: str | Path) -> None:
    """Write ``benchmarks/baselines.json`` from a fresh report."""
    Path(path).write_text(json.dumps(report_to_baseline(report), indent=2) + "\n")


def load_baseline(path: str | Path) -> dict:
    """Load a committed baseline file."""
    return json.loads(Path(path).read_text())


def check_against_baseline(report: PerfReport, baseline: dict) -> list[str]:
    """Compare a report against a baseline; return failure descriptions.

    Empty list == gate passes.
    """
    failures: list[str] = []
    tolerance = float(baseline.get("tolerance", DEFAULT_TOLERANCE))
    floor = 1.0 - tolerance

    for bench in report.functional:
        if not bench.equivalent:
            failures.append(
                f"functional[{bench.workload}]: fast kernel output diverges "
                "from the scalar reference (correctness bug)"
            )
    for bench in report.timing:
        if not bench.equivalent:
            failures.append(
                f"timing[{bench.workload}/{bench.scheme}]: fast replay "
                "diverges from the reference (correctness bug)"
            )
    for bench in report.oram:
        if not bench.equivalent:
            failures.append(
                f"oram[{bench.workload}]: batched engine state diverges "
                "from the reference controller (correctness bug)"
            )
    for bench in report.frontier_cell:
        if not bench.equivalent:
            failures.append(
                f"frontier_cell[{bench.workload}]: batched replay diverges "
                "from the per-scheme reference (correctness bug)"
            )
    for bench in report.tenancy_step:
        if not bench.equivalent:
            failures.append(
                f"tenancy_step[{bench.workload}]: batched-scheduler tenant "
                "digests diverge from round-robin (correctness bug)"
            )

    for bench in report.functional:
        base = baseline.get("functional", {}).get(bench.workload)
        if base is None:
            continue
        required = base["refs_per_sec"] * floor
        if bench.refs_per_sec_fast < required:
            failures.append(
                f"functional[{bench.workload}]: {bench.refs_per_sec_fast:,.0f} refs/s "
                f"is more than {tolerance:.0%} below baseline "
                f"{base['refs_per_sec']:,} refs/s"
            )
    for bench in report.timing:
        key = f"{bench.workload}/{bench.scheme}"
        base = baseline.get("timing", {}).get(key)
        if base is None:
            continue
        required = base["requests_per_sec"] * floor
        if bench.requests_per_sec_fast < required:
            failures.append(
                f"timing[{key}]: {bench.requests_per_sec_fast:,.0f} req/s is more "
                f"than {tolerance:.0%} below baseline {base['requests_per_sec']:,} req/s"
            )

    for bench in report.oram:
        base = baseline.get("oram", {}).get(bench.workload)
        if base is None:
            continue
        required = base["accesses_per_sec"] * floor
        if bench.accesses_per_sec_fast < required:
            failures.append(
                f"oram[{bench.workload}]: {bench.accesses_per_sec_fast:,.0f} acc/s "
                f"is more than {tolerance:.0%} below baseline "
                f"{base['accesses_per_sec']:,} acc/s"
            )

    for bench in report.frontier_cell:
        base = baseline.get("frontier_cell", {}).get(bench.workload)
        if base is None:
            continue
        required = base["requests_per_sec"] * floor
        if bench.requests_per_sec_fast < required:
            failures.append(
                f"frontier_cell[{bench.workload}]: "
                f"{bench.requests_per_sec_fast:,.0f} config-req/s is more "
                f"than {tolerance:.0%} below baseline "
                f"{base['requests_per_sec']:,} config-req/s"
            )

    for bench in report.tenancy_step:
        base = baseline.get("tenancy_step", {}).get(bench.workload)
        if base is None:
            continue
        required = base["requests_per_sec"] * floor
        if bench.requests_per_sec_fast < required:
            failures.append(
                f"tenancy_step[{bench.workload}]: "
                f"{bench.requests_per_sec_fast:,.0f} req/s is more than "
                f"{tolerance:.0%} below baseline "
                f"{base['requests_per_sec']:,} req/s"
            )

    sweep_base = baseline.get("sweep", {}).get("cells_per_sec")
    if sweep_base is not None and report.sweep is not None:
        if report.sweep.cells_per_sec < sweep_base * floor:
            failures.append(
                f"sweep: {report.sweep.cells_per_sec:.2f} cells/s is more than "
                f"{tolerance:.0%} below baseline {sweep_base} cells/s"
            )

    min_speedup = float(baseline.get("min_functional_speedup", 0.0))
    headline = baseline.get("headline_workload", HEADLINE_WORKLOAD)
    if min_speedup > 0 and report.functional:
        measured = report.functional_speedup(headline)
        if measured is None:
            failures.append(f"functional[{headline}]: headline workload not measured")
        elif measured < min_speedup:
            failures.append(
                f"functional[{headline}]: speedup {measured:.1f}x is below the "
                f"required {min_speedup:.1f}x floor"
            )

    min_oram = float(baseline.get("min_oram_speedup", 0.0))
    oram_headline = baseline.get("oram_headline_workload", ORAM_HEADLINE_WORKLOAD)
    if min_oram > 0 and report.oram:
        measured = report.oram_speedup(oram_headline)
        if measured is None:
            failures.append(f"oram[{oram_headline}]: headline workload not measured")
        elif measured < min_oram:
            failures.append(
                f"oram[{oram_headline}]: speedup {measured:.1f}x is below the "
                f"required {min_oram:.1f}x floor"
            )

    # No functional tier may ship slower than its own scalar oracle.
    min_all = float(
        baseline.get(
            "min_functional_speedup_all", DEFAULT_MIN_FUNCTIONAL_SPEEDUP_ALL
        )
    )
    for bench in report.functional:
        if bench.speedup < min_all:
            failures.append(
                f"functional[{bench.workload}]: speedup {bench.speedup:.2f}x "
                f"is below the {min_all:.1f}x ship floor (fast kernel slower "
                "than its oracle)"
            )

    min_cell = float(baseline.get("min_frontier_cell_speedup", 0.0))
    cell_headline = baseline.get(
        "frontier_cell_headline_workload", FRONTIER_CELL_HEADLINE_WORKLOAD
    )
    if min_cell > 0 and report.frontier_cell:
        measured = report.frontier_cell_speedup(cell_headline)
        if measured is None:
            failures.append(
                f"frontier_cell[{cell_headline}]: headline workload not measured"
            )
        elif measured < min_cell:
            failures.append(
                f"frontier_cell[{cell_headline}]: speedup {measured:.1f}x is "
                f"below the required {min_cell:.1f}x floor"
            )

    min_tenancy = float(baseline.get("min_tenancy_step_speedup", 0.0))
    tenancy_headline = baseline.get(
        "tenancy_step_headline_workload", TENANCY_STEP_HEADLINE_WORKLOAD
    )
    if min_tenancy > 0 and report.tenancy_step:
        measured = report.tenancy_step_speedup(tenancy_headline)
        if measured is None:
            failures.append(
                f"tenancy_step[{tenancy_headline}]: headline workload not measured"
            )
        elif measured < min_tenancy:
            failures.append(
                f"tenancy_step[{tenancy_headline}]: speedup {measured:.1f}x is "
                f"below the required {min_tenancy:.1f}x floor"
            )
    return failures
