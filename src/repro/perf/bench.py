"""Microbenchmark runner for the simulation kernels.

Five tiers, mirroring the layers this repository's runtime is spent in:

* **functional** — :func:`repro.cache.hierarchy.simulate_hierarchy` on a
  pinned trace, fast kernel vs scalar reference, with a
  :meth:`~repro.cpu.trace.MissTrace.checksum` equivalence check;
* **timing** — :func:`repro.sim.timing.run_timing` replays of that trace
  under representative schemes, fast vs reference, with a
  :class:`~repro.sim.result.SimResult` equivalence check;
* **oram** — a functional Path ORAM access burst (2^14 blocks, null
  cipher, mixed reads/writes/dummies): the batched array engine
  (:class:`repro.oram.engine.BatchedPathORAM`) vs the scalar reference
  controller, with a ``state_checksum()`` equivalence check over
  position map + stash + tree;
* **frontier_cell** — one frontier cell's replay workload: a 16-config
  dynamic-grid slice replayed by one
  :func:`repro.sim.timing.run_timing_batch` call versus 16 sequential
  reference replays, with per-config SimResult equivalence checks;
* **tenancy_step** — the multi-tenant service step: 16 closed-loop
  tenants on one shared bank, the batched scheduler (one
  ``access_batch`` call per round) versus round-robin (one call per
  request), with per-tenant result-digest equivalence checks;
* **sweep** — an end-to-end :class:`repro.api.engine.Engine` sweep
  (trace build + functional pass + timing replays), timed as cells/sec.

Workloads are pinned and deterministic (fixed seeds, fixed sizes) so
throughput numbers are comparable across commits; the committed
``benchmarks/baselines.json`` freezes them into a CI gate.

The headline workload is ``kernel_stream`` — an L1-resident streaming
kernel (16 KB region, 8-byte stride) that measures the vectorized
pass at full tilt.  The other entries keep the report honest across the
memory-behaviour spectrum: ``libquantum`` streams through DRAM (misses
dominate), ``mcf`` pointer-chases (the pathological all-miss case where
the kernels can only match the reference), and ``h264ref`` is the
compute-bound paper workload.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.cache.hierarchy import (
    simulate_hierarchy,
    simulate_hierarchy_reference,
)
from repro.cpu.trace import MemoryTrace, MissTrace
from repro.sim.timing import run_timing, run_timing_batch
from repro.core.scheme import expand_scheme_grid, scheme_from_spec
from repro.util.rng import make_rng
from repro.workloads.patterns import stream
from repro.workloads.registry import build_trace

#: Pinned perf workloads: name -> builder kwargs.  ``kernel_stream`` is
#: synthetic (built here); the rest come from the workload registry.
PERF_WORKLOADS: tuple[str, ...] = (
    "kernel_stream",
    "libquantum",
    "mcf",
    "h264ref",
)

#: Schemes the timing tier replays (one per controller kernel).
PERF_SCHEMES: tuple[str, ...] = ("base_dram", "base_oram", "static:300", "dynamic:4x4")

#: The pinned frontier-cell batch: a 16-config slice of the dynamic
#: design-space grid (4 rate-set sizes x 4 epoch growths), replayed by
#: one ``run_timing_batch`` call per (workload, repeat).
FRONTIER_CELL_GRID = "grid:dynamic:{rates=2,4,6,8}x{epochs=2,4,6,9}:{learner=avg}"

#: Workloads the frontier-cell tier replays (request-dense streams).
FRONTIER_CELL_WORKLOADS: tuple[str, ...] = ("libquantum", "mcf")

#: The perf-suite tiers, in execution order.
PERF_TIERS: tuple[str, ...] = (
    "functional", "timing", "oram", "frontier_cell", "tenancy_step", "sweep"
)

#: Post-warm-up instruction budgets.
FULL_INSTRUCTIONS = 1_000_000
QUICK_INSTRUCTIONS = 300_000

#: The pinned ORAM access-burst workload: 2^14 addressable blocks, Z=4,
#: 64-byte lines, uniform addresses with 10% dummies and 1/3 writes.
ORAM_WORKLOAD = "oram_burst"
ORAM_BLOCKS = 1 << 14
ORAM_FULL_ACCESSES = 4_000
ORAM_QUICK_ACCESSES = 1_200

#: The pinned tenancy-step workload: 16 closed-loop tenants saturating
#: the shared bank (every round batches all 16 head-of-line requests).
TENANCY_TENANTS = 16
TENANCY_FULL_REQUESTS = 256
TENANCY_QUICK_REQUESTS = 96


def build_perf_trace(name: str, n_instructions: int, seed: int = 0) -> MemoryTrace:
    """Build one pinned perf workload trace.

    ``kernel_stream`` is an L1-resident 8-byte-stride stream over 16 KB
    with short compute gaps — after the first lap every reference hits
    L1, which is exactly the regime the vectorized hit path targets.
    Registry names delegate to the normal workload builders.
    """
    if name != "kernel_stream":
        return build_trace(name, seed=seed, n_instructions=n_instructions)
    rng = make_rng(seed, "perf.kernel_stream")
    mean_gap = 2.0
    n_refs = int(n_instructions / (mean_gap + 1.0))
    segment = stream(
        rng,
        n_refs=n_refs,
        base=1 << 20,
        region_bytes=16 * 1024,
        stride_bytes=8,
        mean_gap=mean_gap,
        store_fraction=0.2,
    )
    return MemoryTrace(
        name="kernel_stream",
        input_name="l1_resident",
        addresses=segment.addresses,
        is_store=segment.is_store,
        gap_instructions=segment.gap_instructions,
    )


@dataclass
class FunctionalBench:
    """One functional-pass measurement (fast vs reference)."""

    workload: str
    n_instructions: int
    n_refs: int
    n_requests: int
    reference_s: float
    fast_s: float
    speedup: float
    refs_per_sec_fast: float
    refs_per_sec_reference: float
    checksum: str
    equivalent: bool


@dataclass
class TimingBench:
    """One timing-replay measurement (fast vs reference)."""

    workload: str
    scheme: str
    n_requests: int
    reference_s: float
    fast_s: float
    speedup: float
    requests_per_sec_fast: float
    requests_per_sec_reference: float
    equivalent: bool


@dataclass
class OramBench:
    """One functional-ORAM burst measurement (batched engine vs reference)."""

    workload: str
    n_blocks: int
    levels: int
    z: int
    n_accesses: int
    reference_s: float
    fast_s: float
    speedup: float
    accesses_per_sec_fast: float
    accesses_per_sec_reference: float
    checksum: str
    equivalent: bool


@dataclass
class FrontierCellBench:
    """One frontier-cell measurement: batched replay vs sequential oracle.

    ``reference_s`` times ``n_configs`` sequential ``mode="reference"``
    replays (the per-scheme oracle, consistent with every other tier);
    ``fast_s`` times the single ``run_timing_batch`` call that replaces
    them in a frontier sweep.
    """

    workload: str
    grid: str
    n_configs: int
    n_requests: int
    reference_s: float
    fast_s: float
    speedup: float
    #: Config-requests per second: n_configs * n_requests / wall.
    requests_per_sec_fast: float
    requests_per_sec_reference: float
    equivalent: bool


@dataclass
class TenancyBench:
    """One multi-tenant service-step measurement (batched vs round-robin).

    Both schedulers run the identical tenant set to completion on the
    shared bank; ``equivalent`` checks the scheduler-invariance contract
    (per-tenant result digests identical between the two runs).
    """

    workload: str
    n_tenants: int
    requests_per_tenant: int
    n_requests: int
    reference_s: float
    fast_s: float
    speedup: float
    requests_per_sec_fast: float
    requests_per_sec_reference: float
    equivalent: bool


@dataclass
class SweepBench:
    """End-to-end engine sweep measurement."""

    benchmarks: tuple[str, ...]
    schemes: tuple[str, ...]
    n_instructions: int
    cells: int
    wall_s: float
    cells_per_sec: float


@dataclass
class PerfReport:
    """Full perf-suite output (serializes to BENCH_perf.json)."""

    version: int
    quick: bool
    n_instructions: int
    repeats: int
    functional: list[FunctionalBench] = field(default_factory=list)
    timing: list[TimingBench] = field(default_factory=list)
    oram: list[OramBench] = field(default_factory=list)
    frontier_cell: list[FrontierCellBench] = field(default_factory=list)
    tenancy_step: list[TenancyBench] = field(default_factory=list)
    sweep: SweepBench | None = None

    @property
    def all_equivalent(self) -> bool:
        """True when every fast-path run matched its reference bit-for-bit."""
        return (
            all(b.equivalent for b in self.functional)
            and all(b.equivalent for b in self.timing)
            and all(b.equivalent for b in self.oram)
            and all(b.equivalent for b in self.frontier_cell)
            and all(b.equivalent for b in self.tenancy_step)
        )

    def functional_speedup(self, workload: str) -> float | None:
        """Measured functional-pass speedup for one workload."""
        for bench in self.functional:
            if bench.workload == workload:
                return bench.speedup
        return None

    def oram_speedup(self, workload: str) -> float | None:
        """Measured ORAM-burst speedup for one workload."""
        for bench in self.oram:
            if bench.workload == workload:
                return bench.speedup
        return None

    def frontier_cell_speedup(self, workload: str) -> float | None:
        """Measured batched-replay speedup for one workload."""
        for bench in self.frontier_cell:
            if bench.workload == workload:
                return bench.speedup
        return None

    def tenancy_step_speedup(self, workload: str) -> float | None:
        """Measured batched-scheduler speedup for one tenancy workload."""
        for bench in self.tenancy_step:
            if bench.workload == workload:
                return bench.speedup
        return None

    def to_dict(self) -> dict:
        """JSON-ready payload."""
        payload = asdict(self)
        if self.sweep is not None:
            payload["sweep"]["benchmarks"] = list(self.sweep.benchmarks)
            payload["sweep"]["schemes"] = list(self.sweep.schemes)
        return payload

    def render(self) -> str:
        """Human-readable summary table."""
        lines = [
            f"perf suite ({'quick' if self.quick else 'full'}, "
            f"{self.n_instructions} instructions, best of {self.repeats})",
            "",
            "functional pass (refs/sec):",
        ]
        for b in self.functional:
            flag = "ok" if b.equivalent else "MISMATCH"
            lines.append(
                f"  {b.workload:>14}: {b.refs_per_sec_fast:>12,.0f} fast"
                f"  {b.refs_per_sec_reference:>12,.0f} ref"
                f"  {b.speedup:5.1f}x  [{flag}]"
            )
        lines.append("timing replay (requests/sec):")
        for b in self.timing:
            flag = "ok" if b.equivalent else "MISMATCH"
            lines.append(
                f"  {b.workload:>14} {b.scheme:>12}: {b.requests_per_sec_fast:>12,.0f} fast"
                f"  {b.requests_per_sec_reference:>12,.0f} ref"
                f"  {b.speedup:5.1f}x  [{flag}]"
            )
        lines.append("functional ORAM (accesses/sec):")
        for b in self.oram:
            flag = "ok" if b.equivalent else "MISMATCH"
            lines.append(
                f"  {b.workload:>14}: {b.accesses_per_sec_fast:>12,.0f} fast"
                f"  {b.accesses_per_sec_reference:>12,.0f} ref"
                f"  {b.speedup:5.1f}x  [{flag}]"
            )
        if self.frontier_cell:
            lines.append("frontier cell (config-requests/sec):")
        for b in self.frontier_cell:
            flag = "ok" if b.equivalent else "MISMATCH"
            lines.append(
                f"  {b.workload:>14} x{b.n_configs} configs:"
                f" {b.requests_per_sec_fast:>12,.0f} batched"
                f"  {b.requests_per_sec_reference:>12,.0f} ref"
                f"  {b.speedup:5.1f}x  [{flag}]"
            )
        if self.tenancy_step:
            lines.append("tenancy step (requests/sec):")
        for b in self.tenancy_step:
            flag = "ok" if b.equivalent else "MISMATCH"
            lines.append(
                f"  {b.workload:>14}: {b.requests_per_sec_fast:>12,.0f} batched"
                f"  {b.requests_per_sec_reference:>12,.0f} rr"
                f"  {b.speedup:5.1f}x  [{flag}]"
            )
        if self.sweep is not None:
            lines.append(
                f"end-to-end sweep: {self.sweep.cells} cells in "
                f"{self.sweep.wall_s:.2f}s = {self.sweep.cells_per_sec:.1f} cells/sec"
            )
        return "\n".join(lines)


def _best_of(fn, repeats: int) -> tuple[float, object]:
    """Minimum wall time over ``repeats`` calls, plus the last value."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        elapsed = time.perf_counter() - t0
        if elapsed < best:
            best = elapsed
    return best, value


def _results_equivalent(fast, ref) -> bool:
    """Bit-level SimResult comparison (the timing equivalence contract)."""
    return (
        fast.cycles == ref.cycles
        and fast.n_instructions == ref.n_instructions
        and fast.controller.real_accesses == ref.controller.real_accesses
        and fast.controller.dummy_accesses == ref.controller.dummy_accesses
        and fast.controller.total_waste == ref.controller.total_waste
        and fast.epochs == ref.epochs
        and np.asarray(fast.request_completion_times, dtype=np.float64).tobytes()
        == np.asarray(ref.request_completion_times, dtype=np.float64).tobytes()
        and fast.power_watts == ref.power_watts
    )


def bench_functional(
    workload: str, n_instructions: int, repeats: int, warmup_fraction: float = 0.30
) -> tuple[FunctionalBench, MissTrace]:
    """Time the functional pass on one workload, fast vs reference."""
    warmup = int(n_instructions * warmup_fraction)
    trace = build_perf_trace(workload, n_instructions + warmup)
    ref_s, ref_mt = _best_of(
        lambda: simulate_hierarchy_reference(trace, warmup_instructions=warmup),
        max(1, repeats // 2),
    )
    fast_s, fast_mt = _best_of(
        lambda: simulate_hierarchy(trace, warmup_instructions=warmup, mode="fast"),
        repeats,
    )
    checksum = fast_mt.checksum()
    bench = FunctionalBench(
        workload=workload,
        n_instructions=n_instructions,
        n_refs=trace.n_references,
        n_requests=fast_mt.n_requests,
        reference_s=ref_s,
        fast_s=fast_s,
        speedup=ref_s / fast_s,
        refs_per_sec_fast=trace.n_references / fast_s,
        refs_per_sec_reference=trace.n_references / ref_s,
        checksum=checksum,
        equivalent=checksum == ref_mt.checksum(),
    )
    return bench, fast_mt


def bench_timing(
    workload: str, miss_trace: MissTrace, scheme_spec: str, repeats: int
) -> TimingBench:
    """Time the replay of one miss trace under one scheme."""
    scheme = scheme_from_spec(scheme_spec)
    ref_s, ref_result = _best_of(
        lambda: run_timing(miss_trace, scheme, mode="reference"),
        max(1, repeats // 2),
    )
    fast_s, fast_result = _best_of(
        lambda: run_timing(miss_trace, scheme, mode="fast"), repeats
    )
    n = miss_trace.n_requests
    return TimingBench(
        workload=workload,
        scheme=scheme_spec,
        n_requests=n,
        reference_s=ref_s,
        fast_s=fast_s,
        speedup=ref_s / fast_s,
        requests_per_sec_fast=n / fast_s if fast_s > 0 else 0.0,
        requests_per_sec_reference=n / ref_s if ref_s > 0 else 0.0,
        equivalent=_results_equivalent(fast_result, ref_result),
    )


def build_oram_trace(
    n_accesses: int,
    n_blocks: int = ORAM_BLOCKS,
    seed: int = 0,
    rng_label: str = "perf.oram_burst",
) -> tuple[np.ndarray, np.ndarray]:
    """Pinned ORAM access mix: uniform addresses, 10% dummies, 1/3 writes.

    The one canonical mix for ORAM throughput/stash measurement; other
    harnesses (``repro.analysis.stash_scaling``) reuse it under their
    own ``rng_label`` to keep their streams independent but the mix
    definition single-sourced.
    """
    rng = make_rng(seed, rng_label)
    addresses = rng.integers(0, n_blocks, size=n_accesses).astype(np.int64)
    addresses[rng.random(n_accesses) < 0.10] = -1
    is_write = rng.random(n_accesses) < (1.0 / 3.0)
    return addresses, is_write


def bench_oram(n_accesses: int, repeats: int) -> OramBench:
    """Time the functional ORAM burst, batched engine vs scalar reference.

    Both kernels run the identical pinned trace from a fresh controller
    (accesses mutate state, so each repeat rebuilds; construction is
    outside the timed region) under the null cipher, and the final
    position-map/stash/tree state must hash identically.
    """
    from repro.oram.config import TreeGeometry
    from repro.oram.encryption import NullCipher
    from repro.oram.engine import BatchedPathORAM
    from repro.oram.path_oram import PathORAM

    geometry = TreeGeometry.for_block_count(
        n_blocks=ORAM_BLOCKS, blocks_per_bucket=4, block_bytes=64
    )
    addresses, is_write = build_oram_trace(n_accesses)

    def time_kernel(build, runs: int) -> tuple[float, object]:
        best = float("inf")
        oram = None
        for _ in range(runs):
            oram = build()
            t0 = time.perf_counter()
            oram.run_trace(addresses, is_write)
            elapsed = time.perf_counter() - t0
            best = min(best, elapsed)
        return best, oram

    ref_s, reference = time_kernel(
        lambda: PathORAM(geometry, ORAM_BLOCKS, seed=1, cipher=NullCipher()),
        max(1, repeats // 2),
    )
    fast_s, batched = time_kernel(
        lambda: BatchedPathORAM(geometry, ORAM_BLOCKS, seed=1), repeats
    )
    checksum = batched.state_checksum()
    return OramBench(
        workload=ORAM_WORKLOAD,
        n_blocks=ORAM_BLOCKS,
        levels=geometry.levels,
        z=geometry.blocks_per_bucket,
        n_accesses=n_accesses,
        reference_s=ref_s,
        fast_s=fast_s,
        speedup=ref_s / fast_s,
        accesses_per_sec_fast=n_accesses / fast_s,
        accesses_per_sec_reference=n_accesses / ref_s,
        checksum=checksum,
        equivalent=checksum == reference.state_checksum(),
    )


def bench_frontier_cell(
    workload: str, miss_trace: MissTrace, repeats: int,
    grid: str = FRONTIER_CELL_GRID,
) -> FrontierCellBench:
    """Time one frontier cell: a batched grid replay vs sequential oracle.

    The fast path is exactly what a frontier sweep dispatches per
    (benchmark, seed): one ``run_timing_batch`` call over the grid
    slice.  The reference is the per-scheme scalar oracle, replayed
    sequentially — the same fast-vs-reference contract as every other
    tier.  Every per-config result must be bit-identical.
    """
    schemes = [scheme_from_spec(spec) for spec in expand_scheme_grid(grid)]
    ref_s, ref_results = _best_of(
        lambda: run_timing_batch(miss_trace, schemes, mode="reference"),
        max(1, repeats // 2),
    )
    fast_s, fast_results = _best_of(
        lambda: run_timing_batch(miss_trace, schemes, mode="fast"), repeats
    )
    n = miss_trace.n_requests
    total = n * len(schemes)
    return FrontierCellBench(
        workload=workload,
        grid=grid,
        n_configs=len(schemes),
        n_requests=n,
        reference_s=ref_s,
        fast_s=fast_s,
        speedup=ref_s / fast_s,
        requests_per_sec_fast=total / fast_s if fast_s > 0 else 0.0,
        requests_per_sec_reference=total / ref_s if ref_s > 0 else 0.0,
        equivalent=all(
            _results_equivalent(fast, ref)
            for fast, ref in zip(fast_results, ref_results)
        ),
    )


def bench_tenancy_step(
    requests_per_tenant: int, repeats: int, n_tenants: int = TENANCY_TENANTS
) -> TenancyBench:
    """Time the multi-tenant service step, batched vs round-robin.

    Both runs use the identical pinned closed-loop workload (every
    tenant saturates, so each batched round packs all ``n_tenants`` head
    requests into one ``access_batch`` call, while round-robin issues
    one call per request).  Simulated service capacity is identical by
    construction; the measured difference is pure kernel amortization.
    Per-tenant result digests must match between the two runs — the
    scheduler-invariance contract.
    """
    from repro.tenancy import TenancyConfig, run_tenancy, with_overrides

    config = TenancyConfig(
        n_tenants=n_tenants,
        requests_per_tenant=requests_per_tenant,
        mean_gap_slots=0.0,
        seed=0,
    )

    def run(scheduler: str):
        return run_tenancy(with_overrides(config, scheduler=scheduler))

    ref_s, ref_report = _best_of(lambda: run("round_robin"), max(1, repeats // 2))
    fast_s, fast_report = _best_of(lambda: run("batched"), repeats)
    n = n_tenants * requests_per_tenant
    return TenancyBench(
        workload=f"tenants_{n_tenants}",
        n_tenants=n_tenants,
        requests_per_tenant=requests_per_tenant,
        n_requests=n,
        reference_s=ref_s,
        fast_s=fast_s,
        speedup=ref_s / fast_s,
        requests_per_sec_fast=n / fast_s if fast_s > 0 else 0.0,
        requests_per_sec_reference=n / ref_s if ref_s > 0 else 0.0,
        equivalent=[t.digest for t in fast_report.tenants]
        == [t.digest for t in ref_report.tenants],
    )


def bench_sweep(n_instructions: int) -> SweepBench:
    """Time an end-to-end engine sweep (fast kernels, serial backend)."""
    from repro.api.engine import Engine
    from repro.api.execution import reset_local_sims
    from repro.api.spec import ExperimentSpec

    benchmarks = ("libquantum", "h264ref")
    spec = ExperimentSpec(
        name="perf sweep",
        benchmarks=benchmarks,
        schemes=PERF_SCHEMES,
        n_instructions=n_instructions,
    )
    reset_local_sims()  # cold caches: measure real work, not dict hits
    t0 = time.perf_counter()
    Engine().run(spec, use_cache=False)
    wall = time.perf_counter() - t0
    reset_local_sims()
    return SweepBench(
        benchmarks=benchmarks,
        schemes=PERF_SCHEMES,
        n_instructions=n_instructions,
        cells=spec.n_cells,
        wall_s=wall,
        cells_per_sec=spec.n_cells / wall,
    )


def run_perf_suite(
    quick: bool = False,
    repeats: int | None = None,
    tiers: tuple[str, ...] | None = None,
) -> PerfReport:
    """Run the suite: functional x workloads, timing x schemes, ORAM,
    frontier cell, sweep.

    ``tiers`` restricts the run to a subset of :data:`PERF_TIERS`
    (``repro perf --tier frontier_cell``); miss traces that restricted
    tiers need are still computed, just not timed.
    """
    n_instructions = QUICK_INSTRUCTIONS if quick else FULL_INSTRUCTIONS
    if repeats is None:
        repeats = 3 if quick else 5
    if tiers is None:
        tiers = PERF_TIERS
    unknown = set(tiers) - set(PERF_TIERS)
    if unknown:
        raise ValueError(
            f"unknown perf tiers {sorted(unknown)}; accepted: {', '.join(PERF_TIERS)}"
        )
    report = PerfReport(
        version=4, quick=quick, n_instructions=n_instructions, repeats=repeats
    )
    miss_traces: dict[str, MissTrace] = {}

    def miss_trace_for(workload: str) -> MissTrace:
        trace = miss_traces.get(workload)
        if trace is None:
            warmup = int(n_instructions * 0.30)
            trace = simulate_hierarchy(
                build_perf_trace(workload, n_instructions + warmup),
                warmup_instructions=warmup, mode="fast",
            )
            miss_traces[workload] = trace
        return trace

    if "functional" in tiers:
        for workload in PERF_WORKLOADS:
            bench, miss_trace = bench_functional(workload, n_instructions, repeats)
            report.functional.append(bench)
            miss_traces[workload] = miss_trace
    # Timing tier: libquantum exercises the request-dense path, mcf the
    # blocking-heavy one.  (kernel_stream produces no LLC requests at
    # all, so there is nothing for the replay to measure there.)
    if "timing" in tiers:
        for workload in ("libquantum", "mcf"):
            for scheme_spec in PERF_SCHEMES:
                report.timing.append(
                    bench_timing(
                        workload, miss_trace_for(workload), scheme_spec, repeats
                    )
                )
    if "oram" in tiers:
        oram_accesses = ORAM_QUICK_ACCESSES if quick else ORAM_FULL_ACCESSES
        report.oram.append(bench_oram(oram_accesses, repeats))
    if "frontier_cell" in tiers:
        for workload in FRONTIER_CELL_WORKLOADS:
            report.frontier_cell.append(
                bench_frontier_cell(workload, miss_trace_for(workload), repeats)
            )
    if "tenancy_step" in tiers:
        tenancy_requests = TENANCY_QUICK_REQUESTS if quick else TENANCY_FULL_REQUESTS
        report.tenancy_step.append(bench_tenancy_step(tenancy_requests, repeats))
    if "sweep" in tiers:
        report.sweep = bench_sweep(n_instructions)
    return report
