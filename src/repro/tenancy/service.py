"""The shared-bank service loop: N tenant sessions, one ORAM bank.

The simulation clock is integer *service slots*: one slot is one ORAM
bank access time (``slot_cycles``, the paper's 1488-cycle path access by
default).  Every scheduler shares the same capacity model — a batch of k
requests occupies k slots and completes when the batch does — so
per-tenant *results* are scheduler-invariant (digests match serial
execution) while latency distributions, fairness, and simulator
wall-clock differ by policy.  The batched scheduler's entire advantage
is kernel-side: one vectorized ``access_batch`` call services a whole
round, which is what the ``tenancy_step`` perf tier measures.

Address isolation: tenant ``t`` owns global blocks
``[t * blocks_per_tenant, (t+1) * blocks_per_tenant)``.  Write payloads
are always stamped from the *local* address, so a tenant's observable
values are identical whether its trace runs on the shared bank or alone
on a private bank (:func:`serial_tenant_digests` is that oracle).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field, replace

import numpy as np

from repro.oram.config import TreeGeometry
from repro.oram.engine import BatchedPathORAM
from repro.oram.path_oram import default_payload
from repro.oram.timing import PAPER_ORAM_TIMING
from repro.tenancy.arrivals import generate_trace
from repro.tenancy.report import TenancyReport, build_report
from repro.tenancy.scheduler import SCHEDULERS, make_scheduler
from repro.tenancy.tenant import EXHAUSTION_POLICIES, Tenant
from repro.util.rng import derive_seed


@dataclass(frozen=True)
class TenancyConfig:
    """One multi-tenant service run, fully determined by its fields.

    Attributes:
        n_tenants: Client sessions sharing the bank.
        blocks_per_tenant: Size of each tenant's private address slice.
        requests_per_tenant: Trace length per tenant.
        scheduler: Registry name ("round_robin", "weighted_fair",
            "batched").
        scheme_spec: Leakage scheme charged to every tenant (per-tenant
            overrides via ``build_tenants``'s returned list if needed).
        budget_bits: Per-tenant leakage budget; ``inf`` disables.
        exhaustion_policy: "terminate" or "degrade" on budget exhaustion.
        seed: Master seed; tenant traces, bank randomness, and session
            identities all derive from it.
        mean_gap_slots: Mean inter-arrival gap per tenant (0 = closed
            loop: all requests pending at slot 0).
        write_fraction: Probability each request is a write.
        block_bytes / blocks_per_bucket: Bank geometry parameters.
        slot_cycles: Cycles one service slot represents.
        weights: Optional per-tenant weighted-fair shares (defaults to
            uniform 1.0).
        stash_capacity: Optional hard stash bound for the shared bank.
    """

    n_tenants: int = 4
    blocks_per_tenant: int = 64
    requests_per_tenant: int = 128
    scheduler: str = "batched"
    scheme_spec: str = "dynamic:4x4"
    budget_bits: float = math.inf
    exhaustion_policy: str = "terminate"
    seed: int = 0
    mean_gap_slots: float = 2.0
    write_fraction: float = 0.5
    block_bytes: int = 32
    blocks_per_bucket: int = 4
    slot_cycles: int = PAPER_ORAM_TIMING.latency_cycles
    weights: tuple[float, ...] | None = None
    stash_capacity: int | None = None

    def __post_init__(self) -> None:
        if self.n_tenants < 1:
            raise ValueError(f"n_tenants must be >= 1, got {self.n_tenants}")
        if self.blocks_per_tenant < 1:
            raise ValueError(
                f"blocks_per_tenant must be >= 1, got {self.blocks_per_tenant}"
            )
        if self.requests_per_tenant < 1:
            raise ValueError(
                f"requests_per_tenant must be >= 1, got {self.requests_per_tenant}"
            )
        if self.scheduler not in SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {self.scheduler!r}; "
                f"accepted: {', '.join(sorted(SCHEDULERS))}"
            )
        if self.exhaustion_policy not in EXHAUSTION_POLICIES:
            raise ValueError(
                f"unknown exhaustion_policy {self.exhaustion_policy!r}; "
                f"accepted: {', '.join(EXHAUSTION_POLICIES)}"
            )
        if self.weights is not None and len(self.weights) != self.n_tenants:
            raise ValueError(
                f"weights must have one entry per tenant "
                f"({self.n_tenants}), got {len(self.weights)}"
            )

    @property
    def total_blocks(self) -> int:
        """Shared-bank block count across all tenant slices."""
        return self.n_tenants * self.blocks_per_tenant

    def build_tenants(self) -> list[Tenant]:
        """Construct the tenant set (traces, sessions, budgets)."""
        weights = self.weights or (1.0,) * self.n_tenants
        return [
            Tenant(
                tenant_id=tenant_id,
                trace=generate_trace(
                    tenant_id,
                    self.requests_per_tenant,
                    self.blocks_per_tenant,
                    seed=self.seed,
                    mean_gap_slots=self.mean_gap_slots,
                    write_fraction=self.write_fraction,
                ),
                scheme_spec=self.scheme_spec,
                budget_bits=self.budget_bits,
                weight=weights[tenant_id],
                exhaustion_policy=self.exhaustion_policy,
                slot_cycles=self.slot_cycles,
                session_seed=self.seed,
            )
            for tenant_id in range(self.n_tenants)
        ]


def build_bank(
    n_blocks: int, config: TenancyConfig, seed_label: str
) -> BatchedPathORAM:
    """Size and construct an ORAM bank for ``n_blocks`` program blocks."""
    geometry = TreeGeometry.for_block_count(
        n_blocks,
        blocks_per_bucket=config.blocks_per_bucket,
        block_bytes=config.block_bytes,
    )
    return BatchedPathORAM(
        geometry,
        n_blocks,
        seed=derive_seed(config.seed, seed_label),
        stash_capacity=config.stash_capacity,
    )


@dataclass
class _BatchBuffers:
    """Reused per-round batch arrays (avoid reallocating every round)."""

    addresses: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    writes: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=bool))
    payloads: np.ndarray = field(
        default_factory=lambda: np.empty((0, 0), dtype=np.uint8)
    )

    def ensure(self, k: int, block_bytes: int) -> None:
        if self.addresses.size < k or self.payloads.shape[1] != block_bytes:
            self.addresses = np.empty(k, dtype=np.int64)
            self.writes = np.empty(k, dtype=bool)
            self.payloads = np.zeros((k, block_bytes), dtype=np.uint8)


def run_tenancy(config: TenancyConfig) -> TenancyReport:
    """Run one multi-tenant service simulation to completion.

    Deterministic for everything except wall-clock fields: same config,
    same report (including every tenant digest), on any machine.
    """
    tenants = config.build_tenants()
    bank = build_bank(config.total_blocks, config, "tenancy.bank")
    scheduler = make_scheduler(config.scheduler)
    buffers = _BatchBuffers()
    block_bytes = config.block_bytes
    slot = 0
    started = time.perf_counter()
    while True:
        active = [t for t in tenants if t.active]
        if not active:
            break
        eligible = [t for t in active if t.next_arrival_slot <= slot]
        if not eligible:
            slot = min(t.next_arrival_slot for t in active)
            continue
        chosen = scheduler.select(eligible)
        k = len(chosen)
        buffers.ensure(k, block_bytes)
        addresses = buffers.addresses[:k]
        writes = buffers.writes[:k]
        payloads = buffers.payloads[:k]
        arrivals = []
        for row, tenant in enumerate(chosen):
            local, is_write = tenant.peek()
            addresses[row] = tenant.tenant_id * config.blocks_per_tenant + local
            writes[row] = is_write
            # Stamp the *local* address so values are bank-placement
            # independent (the serial-equivalence contract).
            payloads[row] = np.frombuffer(
                default_payload(local, block_bytes), dtype=np.uint8
            )
            arrivals.append(tenant.next_arrival_slot)
        values = bank.access_batch(addresses, is_write=writes, payloads=payloads)
        slot += k  # a k-request batch occupies k service slots
        for row, tenant in enumerate(chosen):
            tenant.record_service(slot - arrivals[row], values[row].tobytes())
            tenant.virtual_time += 1.0 / tenant.weight
    wall = time.perf_counter() - started
    return build_report(tenants, scheduler.name, slot, wall, config.slot_cycles)


def serial_tenant_digests(config: TenancyConfig) -> dict[int, str]:
    """Oracle: each tenant's digest from running *alone* on a private bank.

    Replays every tenant's trace in order, one request per slot, on a
    fresh bank sized for just that tenant's slice, with the same budget
    accounting.  The shared-bank service must reproduce these digests
    exactly, under every scheduler — the tenancy equivalence contract.
    """
    digests: dict[int, str] = {}
    for tenant in config.build_tenants():
        bank = build_bank(
            config.blocks_per_tenant, config, f"tenancy.serial.t{tenant.tenant_id}"
        )
        slot = 0
        while tenant.active:
            arrival = tenant.next_arrival_slot
            slot = max(slot, arrival)
            local, is_write = tenant.peek()
            value = bank.access_batch(
                np.asarray([local], dtype=np.int64),
                is_write=np.asarray([is_write]),
                payloads=np.frombuffer(
                    default_payload(local, config.block_bytes), dtype=np.uint8
                ).reshape(1, -1),
            )
            slot += 1
            tenant.record_service(slot - arrival, value[0].tobytes())
        digests[tenant.tenant_id] = tenant.digest
    return digests


def with_overrides(config: TenancyConfig, **overrides) -> TenancyConfig:
    """Dataclass ``replace`` with validation re-run (convenience)."""
    return replace(config, **overrides)
