"""Tenant-count x scheduler sweep: the throughput/p99 scaling curves.

Produces the data behind ``benchmarks/BENCH_tenancy.json``: for each
(tenant count, scheduler) cell, run the service and record the
deterministic SLO/fairness/leakage fields plus the machine-dependent
simulator throughput.  Cells are independent, so the sweep optionally
fans out over a process pool (reusing the api layer's platform
start-method selection).
"""

from __future__ import annotations

import hashlib
import json
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from multiprocessing import get_context
from pathlib import Path

from repro.analysis.tables import Table
from repro.api.backends import default_start_method
from repro.tenancy.service import TenancyConfig, run_tenancy

#: The pinned sweep axes: tenant counts from the bench artifact spec.
DEFAULT_TENANT_COUNTS = (1, 4, 16, 64)
DEFAULT_SCHEDULERS = ("batched", "round_robin")


def _run_cell(config: TenancyConfig) -> dict:
    """One sweep cell -> flat record (deterministic + wall fields)."""
    report = run_tenancy(config)
    return {
        "n_tenants": report.n_tenants,
        "scheduler": report.scheduler,
        "makespan_slots": report.makespan_slots,
        "requests_serviced": report.requests_serviced,
        "requests_dropped": report.requests_dropped,
        "throughput_per_slot": report.throughput_per_slot,
        "latency_p50_slots": report.latency_p50_slots,
        "latency_p95_slots": report.latency_p95_slots,
        "latency_p99_slots": report.latency_p99_slots,
        "fairness_ratio": report.fairness_ratio,
        "requests_per_second": report.requests_per_second,
        "tenant_digests": [t.digest for t in report.tenants],
    }


#: Record keys that are machine-dependent (excluded from pinned digests).
WALL_CLOCK_KEYS = ("requests_per_second",)


def deterministic_records(records: list[dict]) -> list[dict]:
    """Strip machine-dependent fields; what BENCH_tenancy.json pins."""
    return [
        {k: v for k, v in record.items() if k not in WALL_CLOCK_KEYS}
        for record in records
    ]


def records_digest(records: list[dict]) -> str:
    """Canonical digest over the deterministic sweep records."""
    payload = json.dumps(
        sorted(
            deterministic_records(records),
            key=lambda r: (r["n_tenants"], r["scheduler"]),
        ),
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


@dataclass(frozen=True)
class TenancySweepResult:
    """Sweep output: one record per (tenant count, scheduler) cell."""

    base: TenancyConfig
    records: tuple[dict, ...]

    def digest(self) -> str:
        """Digest of the deterministic record fields."""
        return records_digest(list(self.records))

    def to_dict(self, deterministic: bool = False) -> dict:
        """JSON payload; ``deterministic=True`` is the pinned shape."""
        records = (
            deterministic_records(list(self.records))
            if deterministic
            else list(self.records)
        )
        return {
            "base_config": {
                "blocks_per_tenant": self.base.blocks_per_tenant,
                "requests_per_tenant": self.base.requests_per_tenant,
                "scheme_spec": self.base.scheme_spec,
                "seed": self.base.seed,
                "mean_gap_slots": self.base.mean_gap_slots,
                "write_fraction": self.base.write_fraction,
                "slot_cycles": self.base.slot_cycles,
            },
            "digest": self.digest(),
            "records": records,
        }

    def save_json(self, path: str | Path, deterministic: bool = False) -> None:
        """Write the sweep as sorted-key JSON."""
        Path(path).write_text(
            json.dumps(self.to_dict(deterministic=deterministic), indent=1, sort_keys=True)
            + "\n"
        )

    def render(self) -> str:
        """Scaling table: throughput and p99 per cell."""
        rows = [
            [
                str(r["n_tenants"]),
                r["scheduler"],
                f"{r['throughput_per_slot']:.3f}",
                str(r["latency_p50_slots"]),
                str(r["latency_p99_slots"]),
                f"{r['fairness_ratio']:.2f}",
                f"{r['requests_per_second']:,.0f}",
            ]
            for r in self.records
        ]
        return Table(
            title="Tenancy scaling: throughput and tail latency vs tenant count",
            columns=["tenants", "scheduler", "req/slot", "p50", "p99", "fair", "req/s"],
            rows=rows,
        ).render()


def run_tenancy_sweep(
    base: TenancyConfig | None = None,
    tenant_counts: tuple[int, ...] = DEFAULT_TENANT_COUNTS,
    schedulers: tuple[str, ...] = DEFAULT_SCHEDULERS,
    parallel: bool = False,
    max_workers: int | None = None,
) -> TenancySweepResult:
    """Run the tenant-count x scheduler grid.

    Cell order is tenant-count-major then scheduler, and records are
    deterministic per cell, so serial and pooled sweeps produce
    digest-identical results.
    """
    base = base or TenancyConfig()
    configs = [
        replace(base, n_tenants=n, scheduler=scheduler)
        for n in tenant_counts
        for scheduler in schedulers
    ]
    if parallel and len(configs) > 1:
        with ProcessPoolExecutor(
            max_workers=max_workers,
            mp_context=get_context(default_start_method()),
        ) as pool:
            records = list(pool.map(_run_cell, configs))
    else:
        records = [_run_cell(config) for config in configs]
    return TenancySweepResult(base=base, records=tuple(records))
