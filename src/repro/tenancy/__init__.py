"""Multi-tenant ORAM service simulation (ROADMAP item 1).

The paper models one secure processor; its motivating deployment is a
cloud bank multiplexed across many mutually distrusting clients.  This
package simulates that regime: N :class:`Tenant` sessions — each with
its own trace slice, Section 8 session-key lifecycle, and leakage budget
drawn from the scheme grammar — share one
:class:`~repro.oram.engine.BatchedPathORAM` bank under a pluggable
cross-tenant scheduler (round-robin, weighted-fair, or batched, which
packs each round into a single vectorized ``access_batch`` call).

Contracts the tests pin:

* **serial equivalence** — per-tenant result digests are identical
  between any shared-bank schedule and serial private-bank execution;
* **deterministic budgets** — leakage charging depends only on a
  tenant's own serviced count, so exhaustion (terminate or degrade)
  lands on the same request under every scheduler and seed;
* **one percentile implementation** — SLO math defers to
  :func:`repro.oram.path_oram.percentiles_from_histogram`.

Entry points: ``repro tenants`` (CLI), :func:`run_tenancy`,
:func:`run_tenancy_sweep`, ``examples/multi_tenant_service.py``.
"""

from repro.tenancy.arrivals import TenantTrace, generate_trace
from repro.tenancy.report import (
    TenancyReport,
    TenantReport,
    aggregate_latency_percentiles,
    build_report,
)
from repro.tenancy.scheduler import (
    SCHEDULERS,
    BatchedScheduler,
    RoundRobinScheduler,
    WeightedFairScheduler,
    make_scheduler,
)
from repro.tenancy.service import (
    TenancyConfig,
    run_tenancy,
    serial_tenant_digests,
    with_overrides,
)
from repro.tenancy.sweep import (
    DEFAULT_SCHEDULERS,
    DEFAULT_TENANT_COUNTS,
    TenancySweepResult,
    run_tenancy_sweep,
)
from repro.tenancy.tenant import EXHAUSTION_POLICIES, Tenant

__all__ = [
    "TenantTrace",
    "generate_trace",
    "TenancyReport",
    "TenantReport",
    "aggregate_latency_percentiles",
    "build_report",
    "SCHEDULERS",
    "BatchedScheduler",
    "RoundRobinScheduler",
    "WeightedFairScheduler",
    "make_scheduler",
    "TenancyConfig",
    "run_tenancy",
    "serial_tenant_digests",
    "with_overrides",
    "DEFAULT_SCHEDULERS",
    "DEFAULT_TENANT_COUNTS",
    "TenancySweepResult",
    "run_tenancy_sweep",
    "EXHAUSTION_POLICIES",
    "Tenant",
]
