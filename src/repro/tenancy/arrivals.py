"""Deterministic per-tenant request-arrival generation.

Each tenant's workload is an open-loop trace: request ``i`` becomes
eligible for service at ``arrival_slots[i]`` (integer service slots, one
slot = one ORAM bank access time) and targets a *tenant-local* block
address.  Traces are derived from ``make_rng(seed, "tenancy.arrivals.t<id>")``
so every tenant's stream is independent, stable under code motion, and
exactly reproducible — the property the budget-exhaustion determinism
tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import make_rng


@dataclass(frozen=True)
class TenantTrace:
    """One tenant's request stream against its own block slice.

    Attributes:
        arrival_slots: Non-decreasing int64 arrival times in service
            slots; request ``i`` cannot be scheduled before slot
            ``arrival_slots[i]``.
        addresses: Tenant-*local* block addresses (the service maps them
            into the shared bank's global address space).
        is_write: Write flags; writes carry the canonical
            ``default_payload`` of their local address.
    """

    arrival_slots: np.ndarray
    addresses: np.ndarray
    is_write: np.ndarray

    def __post_init__(self) -> None:
        arrivals = np.asarray(self.arrival_slots, dtype=np.int64)
        addresses = np.asarray(self.addresses, dtype=np.int64)
        writes = np.asarray(self.is_write, dtype=bool)
        if not (arrivals.shape == addresses.shape == writes.shape) or arrivals.ndim != 1:
            raise ValueError("trace arrays must be 1-D and equally long")
        if arrivals.size == 0:
            raise ValueError("a tenant trace needs at least one request")
        if arrivals[0] < 0 or np.any(np.diff(arrivals) < 0):
            raise ValueError("arrival_slots must be non-negative and non-decreasing")
        if addresses.size and int(addresses.min()) < 0:
            raise ValueError("trace addresses must be non-negative (tenant-local)")
        object.__setattr__(self, "arrival_slots", arrivals)
        object.__setattr__(self, "addresses", addresses)
        object.__setattr__(self, "is_write", writes)

    @property
    def n_requests(self) -> int:
        """Number of requests in the trace."""
        return int(self.arrival_slots.size)

    def __len__(self) -> int:
        return self.n_requests


def generate_trace(
    tenant_id: int,
    n_requests: int,
    n_blocks: int,
    seed: int = 0,
    mean_gap_slots: float = 2.0,
    write_fraction: float = 0.5,
) -> TenantTrace:
    """Generate one tenant's deterministic arrival trace.

    Inter-arrival gaps are geometric with mean ``mean_gap_slots`` (0
    means every request is pending at slot 0 — a closed-loop saturation
    workload); addresses are uniform over the tenant's ``n_blocks``-block
    slice; each request is a write with probability ``write_fraction``.

    >>> trace = generate_trace(0, 4, 16, seed=7)
    >>> trace.n_requests
    4
    >>> generate_trace(0, 4, 16, seed=7).arrival_slots.tolist() == \
        trace.arrival_slots.tolist()
    True
    """
    if n_requests < 1:
        raise ValueError(f"n_requests must be >= 1, got {n_requests}")
    if n_blocks < 1:
        raise ValueError(f"n_blocks must be >= 1, got {n_blocks}")
    if mean_gap_slots < 0:
        raise ValueError(f"mean_gap_slots must be >= 0, got {mean_gap_slots}")
    if not 0.0 <= write_fraction <= 1.0:
        raise ValueError(f"write_fraction must be in [0, 1], got {write_fraction}")
    rng = make_rng(seed, f"tenancy.arrivals.t{tenant_id}")
    if mean_gap_slots == 0:
        gaps = np.zeros(n_requests, dtype=np.int64)
    else:
        # Geometric on {1, 2, ...} shifted to {0, 1, ...} has mean 1/p - 1;
        # solve for p so the gap mean is mean_gap_slots.
        p = 1.0 / (1.0 + mean_gap_slots)
        gaps = rng.geometric(p, size=n_requests).astype(np.int64) - 1
    return TenantTrace(
        arrival_slots=np.cumsum(gaps),
        addresses=rng.integers(0, n_blocks, size=n_requests, dtype=np.int64),
        is_write=rng.random(n_requests) < write_fraction,
    )
