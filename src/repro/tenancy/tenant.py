"""The tenant model: workload slice, session lifecycle, leakage budget.

A :class:`Tenant` owns one contiguous slice of the shared ORAM bank's
address space, a deterministic arrival trace over *local* addresses, a
Section 8 session (negotiated key register, forgotten on termination),
and a leakage budget expressed through the existing scheme grammar: the
tenant's scheme knows ``expended_leakage_bits(n_epochs)``, and the
tenant charges itself after every serviced access as if it were running
alone at the bank's access latency.

Budget accounting is deliberately *scheduler-invariant*: the charge is a
function of the tenant's own serviced-request count only, never of wall
position or of other tenants' progress.  That is what makes budget
exhaustion deterministic under any interleaving — the property the
tenancy equivalence tests pin — and mirrors the paper's accounting,
where leakage is bounded by epochs *entered*, not by what was observed.
"""

from __future__ import annotations

import hashlib
import math

from repro.core.scheme import scheme_from_spec
from repro.oram.path_oram import AccessStats
from repro.oram.timing import PAPER_ORAM_TIMING
from repro.security.session import ProcessorIdentity, negotiate_session
from repro.tenancy.arrivals import TenantTrace
from repro.util.rng import derive_seed

#: What happens when a tenant's leakage budget runs out.
EXHAUSTION_POLICIES = ("terminate", "degrade")


class Tenant:
    """One client session multiplexed onto the shared ORAM bank.

    Args:
        tenant_id: Dense index; also selects the tenant's bank slice.
        trace: Arrival trace over tenant-local addresses.
        scheme_spec: Scheme-grammar string; its ``expended_leakage_bits``
            drives budget accounting ("static:300" never spends,
            "dynamic:4x4" spends lg|R| bits per epoch entered,
            "base_oram" exhausts any finite budget immediately).
        budget_bits: Leakage budget; ``inf`` disables enforcement.
        weight: Weighted-fair-queueing share (higher = more service).
        exhaustion_policy: ``"terminate"`` drops the tenant's remaining
            requests and forgets its session key (run-once, Section 8);
            ``"degrade"`` freezes expended leakage at the budget and
            keeps serving (the scheme stops adapting — modeled as the
            budget cap, since bits are charged per epoch entered).
        slot_cycles: Cycles one service slot represents (the bank's
            per-access latency; defaults to the paper's 1488).
        session_seed: Deterministic seed for the processor identity, so
            fixtures are reproducible; the negotiated session key itself
            is random, which no result depends on.
    """

    def __init__(
        self,
        tenant_id: int,
        trace: TenantTrace,
        scheme_spec: str = "dynamic:4x4",
        budget_bits: float = math.inf,
        weight: float = 1.0,
        exhaustion_policy: str = "terminate",
        slot_cycles: int = PAPER_ORAM_TIMING.latency_cycles,
        session_seed: int = 0,
    ) -> None:
        if tenant_id < 0:
            raise ValueError(f"tenant_id must be >= 0, got {tenant_id}")
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        if budget_bits < 0:
            raise ValueError(f"budget_bits must be >= 0, got {budget_bits}")
        if exhaustion_policy not in EXHAUSTION_POLICIES:
            raise ValueError(
                f"unknown exhaustion_policy {exhaustion_policy!r}; "
                f"accepted: {', '.join(EXHAUSTION_POLICIES)}"
            )
        if slot_cycles < 1:
            raise ValueError(f"slot_cycles must be >= 1, got {slot_cycles}")
        self.tenant_id = tenant_id
        self.trace = trace
        self.scheme = scheme_from_spec(scheme_spec)
        self.budget_bits = float(budget_bits)
        self.weight = float(weight)
        self.exhaustion_policy = exhaustion_policy
        self.slot_cycles = int(slot_cycles)
        identity_seed = derive_seed(session_seed, f"tenancy.identity.t{tenant_id}")
        self.session_keys, self.register = negotiate_session(
            ProcessorIdentity(seed=identity_seed.to_bytes(8, "little"))
        )
        self.stats = AccessStats()
        self.next_request = 0
        self.serviced = 0
        self.expended_leakage_bits = 0.0
        self.terminated = False
        self.degraded = False
        self.virtual_time = 0.0
        self._digest = hashlib.sha256()

    # -- Scheduling surface ---------------------------------------------

    @property
    def active(self) -> bool:
        """Whether the tenant still has schedulable requests."""
        return not self.terminated and self.next_request < len(self.trace)

    @property
    def next_arrival_slot(self) -> int:
        """Arrival slot of the tenant's next unserviced request."""
        return int(self.trace.arrival_slots[self.next_request])

    def peek(self) -> tuple[int, bool]:
        """(local address, is_write) of the next unserviced request."""
        index = self.next_request
        return int(self.trace.addresses[index]), bool(self.trace.is_write[index])

    # -- Service accounting ---------------------------------------------

    def record_service(self, latency_slots: int, value: bytes) -> None:
        """Account one serviced request: digest, latency, leakage charge.

        The digest folds in (request order, local address, write flag,
        returned block value) — everything an interleaving could corrupt
        but must not — so a tenant's digest after a shared-bank run is
        bit-identical to the same trace run serially on a private bank.
        """
        address, is_write = self.peek()
        self._digest.update(address.to_bytes(8, "little"))
        self._digest.update(b"\x01" if is_write else b"\x00")
        self._digest.update(value)
        self.stats.record_latency(latency_slots)
        if is_write:
            self.stats.writes += 1
        else:
            self.stats.reads += 1
        self.next_request += 1
        self.serviced += 1
        self._charge_leakage()

    def _charge_leakage(self) -> None:
        """Recompute expended leakage from the serviced count alone."""
        runtime_cycles = self.serviced * self.slot_cycles
        schedule = getattr(self.scheme, "schedule", None)
        if schedule is None:
            n_epochs = 1
        else:
            n_epochs = schedule.epochs_until(runtime_cycles)
        expended = self.scheme.expended_leakage_bits(n_epochs)
        if expended > self.budget_bits:
            self.expended_leakage_bits = self.budget_bits
            if self.exhaustion_policy == "terminate":
                self.terminated = True
                self.register.forget()
            else:
                self.degraded = True
        else:
            self.expended_leakage_bits = expended

    @property
    def exhausted(self) -> bool:
        """Whether the leakage budget ran out (terminated or degraded)."""
        return self.terminated or self.degraded

    @property
    def digest(self) -> str:
        """Hex digest of every serviced (address, flag, value) so far."""
        return self._digest.hexdigest()
