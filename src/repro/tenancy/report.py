"""Tenancy results: per-tenant and aggregate SLO/fairness/leakage reports.

Percentile math is *not* implemented here: per-tenant percentiles come
from :meth:`repro.oram.path_oram.AccessStats.latency_percentiles` and the
aggregate merges the tenants' exact latency histograms through the same
:func:`repro.oram.path_oram.percentiles_from_histogram` helper — one
implementation, every consumer.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from repro.analysis.tables import Table
from repro.oram.path_oram import (
    AccessStats,
    DEFAULT_PERCENTILES,
    percentiles_from_histogram,
)


def _finite_or_none(value: float) -> float | None:
    """JSON-safe float: non-finite values become None."""
    return float(value) if math.isfinite(value) else None


@dataclass(frozen=True)
class TenantReport:
    """One tenant's outcome: service, latency SLOs, leakage, lifecycle."""

    tenant_id: int
    scheme_spec: str
    weight: float
    requests_total: int
    requests_serviced: int
    latency_p50_slots: int
    latency_p95_slots: int
    latency_p99_slots: int
    latency_mean_slots: float
    expended_leakage_bits: float
    budget_bits: float
    exhausted: bool
    terminated: bool
    degraded: bool
    digest: str

    def to_dict(self) -> dict:
        """JSON-safe dict (infinite budgets serialize as None)."""
        payload = asdict(self)
        payload["budget_bits"] = _finite_or_none(self.budget_bits)
        payload["expended_leakage_bits"] = _finite_or_none(self.expended_leakage_bits)
        return payload


def aggregate_latency_percentiles(
    stats: list[AccessStats], qs=DEFAULT_PERCENTILES
) -> dict[float, int]:
    """Exact percentiles over the union of several latency streams.

    Merges the tenants' exact latency histograms (pad to the widest,
    sum) and delegates to the shared nearest-rank helper.
    """
    hists = [s.latency_histogram() for s in stats]
    width = max((h.size for h in hists), default=1)
    merged = np.zeros(width, dtype=np.int64)
    for hist in hists:
        merged[: hist.size] += hist
    return percentiles_from_histogram(merged, qs)


@dataclass(frozen=True)
class TenancyReport:
    """Whole-service outcome for one multi-tenant run.

    Deterministic fields (everything except ``wall_seconds`` and
    ``requests_per_second``) are reproducible bit-for-bit from the
    config, which is what lets ``BENCH_tenancy.json`` pin them.

    Attributes:
        scheduler: Scheduler registry name the run used.
        n_tenants: Number of tenant sessions sharing the bank.
        slot_cycles: Cycles one service slot represents.
        makespan_slots: Simulated slots until the last request finished.
        requests_serviced: Total serviced across all tenants.
        requests_dropped: Requests never serviced (budget terminations).
        throughput_per_slot: Serviced requests per simulated slot — the
            bank-utilization metric (1.0 = saturated).
        latency_p50_slots / p95 / p99: Aggregate SLO percentiles.
        fairness_ratio: Max/min per-tenant mean latency among tenants
            that were serviced at all (1.0 = perfectly fair).
        wall_seconds / requests_per_second: Simulator wall-clock cost —
            machine-dependent, excluded from pinned artifacts.
        tenants: Per-tenant reports, tenant-id order.
    """

    scheduler: str
    n_tenants: int
    slot_cycles: int
    makespan_slots: int
    requests_serviced: int
    requests_dropped: int
    throughput_per_slot: float
    latency_p50_slots: int
    latency_p95_slots: int
    latency_p99_slots: int
    fairness_ratio: float
    wall_seconds: float
    requests_per_second: float
    tenants: tuple[TenantReport, ...]

    def to_dict(self, deterministic: bool = False) -> dict:
        """JSON-safe dict; ``deterministic=True`` drops wall-clock fields
        so pinned artifacts stay byte-stable across machines."""
        payload = {
            "scheduler": self.scheduler,
            "n_tenants": self.n_tenants,
            "slot_cycles": self.slot_cycles,
            "makespan_slots": self.makespan_slots,
            "requests_serviced": self.requests_serviced,
            "requests_dropped": self.requests_dropped,
            "throughput_per_slot": self.throughput_per_slot,
            "latency_p50_slots": self.latency_p50_slots,
            "latency_p95_slots": self.latency_p95_slots,
            "latency_p99_slots": self.latency_p99_slots,
            "fairness_ratio": self.fairness_ratio,
            "tenants": [tenant.to_dict() for tenant in self.tenants],
        }
        if not deterministic:
            payload["wall_seconds"] = self.wall_seconds
            payload["requests_per_second"] = self.requests_per_second
        return payload

    def save_json(self, path: str | Path, deterministic: bool = False) -> None:
        """Write the report as sorted-key JSON."""
        Path(path).write_text(
            json.dumps(self.to_dict(deterministic=deterministic), indent=1, sort_keys=True)
            + "\n"
        )

    def render(self) -> str:
        """Paper-style text table: one row per tenant plus an aggregate."""
        rows = []
        for t in self.tenants:
            state = "terminated" if t.terminated else ("degraded" if t.degraded else "ok")
            budget = "inf" if not math.isfinite(t.budget_bits) else f"{t.budget_bits:.0f}"
            rows.append([
                str(t.tenant_id),
                t.scheme_spec,
                f"{t.requests_serviced}/{t.requests_total}",
                str(t.latency_p50_slots),
                str(t.latency_p95_slots),
                str(t.latency_p99_slots),
                f"{t.latency_mean_slots:.2f}",
                f"{t.expended_leakage_bits:.1f}/{budget}",
                state,
            ])
        rows.append([
            "all",
            "-",
            str(self.requests_serviced),
            str(self.latency_p50_slots),
            str(self.latency_p95_slots),
            str(self.latency_p99_slots),
            "-",
            "-",
            f"fair={self.fairness_ratio:.2f}",
        ])
        table = Table(
            title=(
                f"Multi-tenant ORAM service: {self.n_tenants} tenants, "
                f"{self.scheduler} scheduler, {self.makespan_slots} slots "
                f"({self.throughput_per_slot:.3f} req/slot, "
                f"{self.requests_per_second:,.0f} req/s wall)"
            ),
            columns=[
                "tenant", "scheme", "served", "p50", "p95", "p99",
                "mean", "leak/budget", "state",
            ],
            rows=rows,
        )
        return table.render()


def build_tenant_report(tenant) -> TenantReport:
    """Snapshot one :class:`~repro.tenancy.tenant.Tenant` after a run."""
    percentiles = tenant.stats.latency_percentiles()
    return TenantReport(
        tenant_id=tenant.tenant_id,
        scheme_spec=tenant.scheme.spec,
        weight=tenant.weight,
        requests_total=len(tenant.trace),
        requests_serviced=tenant.serviced,
        latency_p50_slots=percentiles[50.0],
        latency_p95_slots=percentiles[95.0],
        latency_p99_slots=percentiles[99.0],
        latency_mean_slots=tenant.stats.latency_mean,
        expended_leakage_bits=tenant.expended_leakage_bits,
        budget_bits=tenant.budget_bits,
        exhausted=tenant.exhausted,
        terminated=tenant.terminated,
        degraded=tenant.degraded,
        digest=tenant.digest,
    )


def build_report(
    tenants: list,
    scheduler_name: str,
    makespan_slots: int,
    wall_seconds: float,
    slot_cycles: int,
) -> TenancyReport:
    """Assemble the whole-service report from finished tenants."""
    tenant_reports = tuple(
        build_tenant_report(t) for t in sorted(tenants, key=lambda t: t.tenant_id)
    )
    serviced = sum(t.requests_serviced for t in tenant_reports)
    total = sum(t.requests_total for t in tenant_reports)
    aggregate = aggregate_latency_percentiles([t.stats for t in tenants])
    means = [
        t.latency_mean_slots for t in tenant_reports if t.requests_serviced > 0
    ]
    fairness = (max(means) / min(means)) if means and min(means) > 0 else 1.0
    return TenancyReport(
        scheduler=scheduler_name,
        n_tenants=len(tenant_reports),
        slot_cycles=slot_cycles,
        makespan_slots=makespan_slots,
        requests_serviced=serviced,
        requests_dropped=total - serviced,
        throughput_per_slot=serviced / makespan_slots if makespan_slots else 0.0,
        latency_p50_slots=aggregate[50.0],
        latency_p95_slots=aggregate[95.0],
        latency_p99_slots=aggregate[99.0],
        fairness_ratio=fairness,
        wall_seconds=wall_seconds,
        requests_per_second=serviced / wall_seconds if wall_seconds > 0 else 0.0,
        tenants=tenant_reports,
    )
