"""Cross-tenant schedulers for the shared ORAM bank.

A scheduler picks, each round, which pending tenants' head-of-line
requests the bank services next.  All three policies are deterministic
given the tenant set, which keeps whole-service runs reproducible:

* **round_robin** — one tenant per round, rotating over tenant ids;
  the classic baseline, one ``access_batch`` call per request.
* **weighted_fair** — one tenant per round by smallest virtual finish
  time (service advances a tenant's virtual time by ``1/weight``), ties
  broken by tenant id; approximates per-weight bank shares.
* **batched** — every eligible tenant's head request each round, packed
  into a *single* ``BatchedPathORAM.access_batch`` call (the vectorized
  kernel amortizes RNG, heap walks, and scatter/gather across tenants).
  Simulated service capacity is identical — a k-request batch still
  occupies k service slots — so the speedup is in simulator wall-clock,
  which is what the ``tenancy_step`` perf tier gates.

Schedulers only *pick*; the service loop owns the clock, the bank call,
and per-tenant accounting, so per-tenant results are policy-invariant
(the trace-equivalence property the tenancy tests pin).
"""

from __future__ import annotations

from repro.tenancy.tenant import Tenant


class RoundRobinScheduler:
    """Serve one tenant per round, rotating over tenant ids."""

    name = "round_robin"
    batching = False

    def __init__(self) -> None:
        self._next_id = 0

    def select(self, eligible: list[Tenant]) -> list[Tenant]:
        """Pick the first eligible tenant at or after the rotation point."""
        chosen = min(
            eligible,
            key=lambda t: (t.tenant_id < self._next_id, t.tenant_id),
        )
        self._next_id = chosen.tenant_id + 1
        return [chosen]


class WeightedFairScheduler:
    """Serve the eligible tenant with the smallest virtual finish time."""

    name = "weighted_fair"
    batching = False

    def select(self, eligible: list[Tenant]) -> list[Tenant]:
        """Pick by (virtual time, tenant id); the service loop advances
        the winner's virtual time by ``1/weight`` after completion."""
        return [min(eligible, key=lambda t: (t.virtual_time, t.tenant_id))]


class BatchedScheduler:
    """Pack every eligible tenant's head request into one bank batch."""

    name = "batched"
    batching = True

    def select(self, eligible: list[Tenant]) -> list[Tenant]:
        """All eligible tenants, in tenant-id order (at most one request
        each — a tenant's own requests stay strictly ordered)."""
        return sorted(eligible, key=lambda t: t.tenant_id)


#: Scheduler registry keyed by CLI/spec name.
SCHEDULERS = {
    RoundRobinScheduler.name: RoundRobinScheduler,
    WeightedFairScheduler.name: WeightedFairScheduler,
    BatchedScheduler.name: BatchedScheduler,
}


def make_scheduler(name: str):
    """Instantiate a scheduler by registry name.

    >>> make_scheduler("batched").batching
    True
    """
    try:
        return SCHEDULERS[name]()
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; accepted: {', '.join(sorted(SCHEDULERS))}"
        )
