"""``python -m repro`` dispatches to the CLI."""

from repro.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
