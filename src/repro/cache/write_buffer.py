"""Non-blocking write buffer model (Table 1: 8 entries).

The paper notes (Section 9.1.2) that despite the simple in-order core, the
simulator "models a non-blocking write buffer which can generate multiple,
concurrent outstanding LLC misses (like Req 3 in Section 7.1.1)".  This
class tracks the completion times of in-flight non-blocking requests so
the timing simulator can decide when the core must stall (buffer full).
"""

from __future__ import annotations

from collections import deque


class WriteBuffer:
    """FIFO of in-flight non-blocking request completion times."""

    def __init__(self, entries: int = 8) -> None:
        if entries <= 0:
            raise ValueError(f"entries must be positive, got {entries}")
        self.entries = entries
        self._completions: deque[float] = deque()
        self.full_stalls = 0
        self.total_stall_cycles = 0.0

    def __len__(self) -> int:
        return len(self._completions)

    def drain_until(self, now: float) -> None:
        """Retire all requests that completed at or before ``now``."""
        completions = self._completions
        while completions and completions[0] <= now:
            completions.popleft()

    def admit(self, now: float, completion_time: float) -> float:
        """Admit a request; return the time the core may proceed.

        If the buffer is full at ``now``, the core stalls until the oldest
        in-flight request completes, freeing an entry.
        """
        self.drain_until(now)
        proceed_at = now
        while len(self._completions) >= self.entries:
            oldest = self._completions.popleft()
            if oldest > proceed_at:
                self.full_stalls += 1
                self.total_stall_cycles += oldest - proceed_at
                proceed_at = oldest
        self._completions.append(completion_time)
        return proceed_at

    def drain_all(self) -> float:
        """Return the completion time of the last in-flight request (or 0)."""
        return self._completions[-1] if self._completions else 0.0

    def reset(self) -> None:
        """Clear all state."""
        self._completions.clear()
        self.full_stalls = 0
        self.total_stall_cycles = 0.0
