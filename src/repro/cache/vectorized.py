"""Vectorized functional cache pass (the fast kernel behind
:func:`repro.cache.hierarchy.simulate_hierarchy`).

Produces a :class:`~repro.cpu.trace.MissTrace` **bit-identical** to the
scalar reference loop in :mod:`repro.cache.hierarchy` — every float in
``gap_cycles``/``total_compute_cycles`` is built from the same IEEE-754
operations in the same order — while doing the per-reference work in
numpy and C-level bulk operations wherever the cache state allows it.

The kernel exploits three structural facts about the hierarchy pass:

1. **Same-line runs are guaranteed L1 hits.**  Consecutive references to
   one cache line cannot miss after the first (nothing else touches the
   set in between), so the trace is run-compressed up front with array
   ops and only *run heads* enter the state machine.  The trailing
   references of a run contribute one boolean OR (the run's dirty bit,
   precomputed per run with ``np.logical_or.reduceat``).

2. **L1 membership is constant between L1 misses.**  Hits reorder the
   LRU stack and merge dirty bits but never change *which* lines are
   resident.  The kernel therefore scans ahead with a vectorized
   membership test (``np.searchsorted`` against a sorted snapshot of the
   ≤ sets*ways resident lines) and commits whole hit prefixes at C speed:
   LRU positions via one ``dict.update`` (timestamp LRU, see below) and
   dirty bits via one bulk update of the stored lines.  Only the first
   non-member — a true L1 miss — drops to the scalar slow path, which
   runs the exact reference eviction/back-invalidation machinery.  After
   a miss the snapshot is stale, so the rest of the window steps through
   a lean scalar loop before the next vectorized scan; the window size
   adapts so miss-dense phases spend no time on doomed vector scans.

3. **Insertion-order LRU ≡ timestamp LRU.**  The reference models each
   set as an insertion-ordered dict whose first key is the victim.  A
   key's position in that order is exactly the index of its last touch,
   so keeping ``line -> last-touch index`` and evicting the resident
   line of the set with the smallest timestamp selects the identical
   victim.  Timestamps are what make bulk hit commits possible: a single
   ``dict.update`` with "last write wins" reproduces any sequence of
   move-to-MRU operations.

The cycle/instruction accounting is reconstructed after the fact from
the per-reference outcome levels: interleaving ``gap * cpi`` and
per-level hit costs into one array and summing each inter-miss segment
left-to-right (``np.cumsum`` is a sequential recurrence, and builtin
``sum`` over a list slice is a sequential C loop — both bit-identical to
the reference's running ``+=``; ``np.add.reduce``/``reduceat`` are
pairwise and are deliberately **not** used).

The L2 side keeps the reference's insertion-ordered dicts verbatim: every
L2 access is already a rare scalar event (an L1 miss), so there is
nothing to vectorize there.
"""

from __future__ import annotations

from itertools import repeat

import numpy as np

from repro.cpu.core import CoreModel
from repro.cpu.trace import EnergyEvents, MemoryTrace, MissTrace
from repro.util.bitops import floor_lg

#: Default number of references per processing chunk.  Bounds the size of
#: the per-chunk Python lists the bulk commits consume; the numpy
#: precompute is whole-trace either way.
DEFAULT_CHUNK_REFS = 1 << 15

#: Adaptive window bounds for the vectorized membership scan (in run
#: heads).  The window doubles after a fully-hit scan and halves after a
#: scan that dies early, so miss-dense phases degrade to the scalar loop
#: without paying for vector scans that cannot run ahead.
_WINDOW_MIN = 128
_WINDOW_MAX = 1 << 16
#: Scalar-mode burst bounds (in run heads).  Bursts double while the
#: observed hit rate stays below the vector-mode re-entry threshold.
_SCALAR_BURST_MIN = 256
_SCALAR_BURST_MAX = 1 << 14
#: Rebuild the membership snapshot after this many installs/removals;
#: below it, the removed-lines correction is cheaper than a rebuild.
_SNAPSHOT_DRIFT_MAX = 64
#: Hit ranges shorter than this step through the scalar loop — a
#: dict.update round-trip costs more than a few inline hits.
_BULK_RANGE_MIN = 16


def hierarchy_pass_vectorized(
    trace: MemoryTrace,
    config,
    core: CoreModel,
    warmup_instructions: int = 0,
    chunk_refs: int = DEFAULT_CHUNK_REFS,
) -> MissTrace:
    """Run the vectorized hierarchy pass; bit-identical to the reference.

    Parameters mirror :func:`repro.cache.hierarchy.simulate_hierarchy`;
    ``chunk_refs`` bounds the per-chunk working lists.
    """
    if chunk_refs <= 0:
        raise ValueError(f"chunk_refs must be positive, got {chunk_refs}")

    line_shift = floor_lg(config.line_bytes)
    l1_sets_count = config.l1d_bytes // config.line_bytes // config.l1d_ways
    l2_sets_count = config.l2_bytes // config.line_bytes // config.l2_ways
    l1_mask = l1_sets_count - 1
    l2_mask = l2_sets_count - 1
    l2_bits = floor_lg(l2_sets_count)
    l1_ways = config.l1d_ways
    l2_ways = config.l2_ways

    l1_hit_cycles = core.load_hit_cycles(1)
    l2_hit_cycles = core.load_hit_cycles(2)
    miss_onchip_cycles = core.load_miss_onchip_cycles()
    store_issue = core.store_issue_cycles
    local_fraction = trace.local_ref_fraction
    cpi = (
        (1.0 - local_fraction) * core.nonmem_cpi(trace.mix)
        + local_fraction * l1_hit_cycles
    )

    # ------------------------------------------------------------------
    # Whole-trace numpy precompute
    # ------------------------------------------------------------------
    # MemoryTrace.__post_init__ canonicalizes (contiguous uint64/bool/
    # int64), so the arrays are consumed as-is.
    addresses = trace.addresses
    stores_np = trace.is_store
    gaps_np = trace.gap_instructions
    n_refs = len(addresses)

    if n_refs == 0:
        return _empty_result(trace, config)

    lines_np = (addresses >> np.uint64(line_shift)).astype(np.int64)
    cum_instr = np.cumsum(gaps_np + 1)

    if warmup_instructions > 0:
        i_warm = int(np.searchsorted(cum_instr, warmup_instructions, side="left"))
    else:
        i_warm = 0
    if warmup_instructions > 0 and i_warm >= n_refs:
        # Entire trace is warm-up: the reference never resets its
        # counters, so instructions and compute cycles cover everything
        # and no requests are emitted.
        gap_costs = gaps_np.astype(np.float64) * cpi
        return _full_warm_result(trace, config, float(np.cumsum(gap_costs)[-1]),
                                 int(cum_instr[-1]))

    # Run compression: a head is any reference whose line differs from
    # its predecessor's.  Non-head references are guaranteed L1 hits.
    head_mask = np.empty(n_refs, dtype=bool)
    head_mask[0] = True
    np.not_equal(lines_np[1:], lines_np[:-1], out=head_mask[1:])
    head_idx = np.flatnonzero(head_mask)
    # Dirty contribution of each run: OR of its references' store flags
    # (boolean reduceat is exact; order is irrelevant for OR).
    run_any_store = np.logical_or.reduceat(stores_np, head_idx)
    head_lines_np = lines_np[head_idx]

    # ------------------------------------------------------------------
    # Cache state
    # ------------------------------------------------------------------
    # L1: timestamp LRU keyed by line number.  Membership == key in
    # l1_stamp; victim of a set == resident line with the smallest stamp.
    # l1_dirty holds only *dirty* lines (absence == clean).
    l1_stamp: dict[int, int] = {}
    l1_dirty: dict[int, bool] = {}
    l1_rows: list[list[int]] = [[] for _ in range(l1_sets_count)]
    # L2: the reference's insertion-ordered dicts, tag -> dirty.
    l2_sets: list[dict[int, bool]] = [dict() for _ in range(l2_sets_count)]

    # Outcome event streams (counted region only), in head order.
    l2_hit_refs: list[int] = []
    miss_refs: list[int] = []
    miss_wb: list[bool] = []
    writebacks = 0

    l2h_append = l2_hit_refs.append
    miss_append = miss_refs.append
    wb_append = miss_wb.append
    stamp = l1_stamp
    #: Lines removed from L1 since the last snapshot rebuild.  The
    #: snapshot may be arbitrarily stale and classification stays exact:
    #: a snapshot member is resident unless it appears here (checked with
    #: one vectorized isin per window), and a non-member head always
    #: re-checks live state before being treated as a miss.
    removed_log: list[int] = []
    removed_append = removed_log.append

    # Sorted snapshot of resident lines for the vectorized membership
    # scan.  Rebuilt only when enough installs/removals have accumulated
    # that correcting for them costs more than a rebuild.
    snapshot = np.empty(0, dtype=np.int64)
    snapshot_drift = 0
    window = 1024
    # Start in scalar mode: a cheap probe burst decides whether the
    # trace is hit-dense enough for vector scans to pay for themselves.
    # Hit-heavy workloads promote after one burst; pathological all-miss
    # traces (mcf) never pay for a doomed vector scan.
    vector_mode = False
    vector_fails = 0
    scalar_burst = _SCALAR_BURST_MIN

    n_heads = len(head_idx)

    def process_miss(line: int, ref_i: int, dirty_in: bool) -> None:
        """One L1 miss through the exact reference machinery.

        ``dirty_in`` is the run's OR of store flags — the dirty bit the
        install leaves behind (head store, then run-hit ORs).
        """
        nonlocal writebacks, snapshot_drift
        snapshot_drift += 1
        counted = ref_i >= i_warm
        l2_set = l2_sets[line & l2_mask]
        l2_tag = line >> l2_bits
        if l2_tag in l2_set:
            l2_set[l2_tag] = l2_set.pop(l2_tag)
            if counted:
                l2h_append(ref_i)
        else:
            if counted:
                miss_append(ref_i)
            if len(l2_set) >= l2_ways:
                victim_tag = next(iter(l2_set))
                victim_dirty = l2_set.pop(victim_tag)
                victim_line = (victim_tag << l2_bits) | (line & l2_mask)
                # Inclusive hierarchy: back-invalidate L1.
                if victim_line in stamp:
                    del stamp[victim_line]
                    l1_rows[victim_line & l1_mask].remove(victim_line)
                    removed_append(victim_line)
                    if l1_dirty.pop(victim_line, False):
                        victim_dirty = True
                if counted:
                    if victim_dirty:
                        writebacks += 1
                        wb_append(True)
                    else:
                        wb_append(False)
            elif counted:
                wb_append(False)
            l2_set[l2_tag] = False
        # ---- Fill L1 ----
        row = l1_rows[line & l1_mask]
        if len(row) >= l1_ways:
            victim_line = row[0]
            best = stamp[victim_line]
            for cand in row:
                cand_stamp = stamp[cand]
                if cand_stamp < best:
                    best = cand_stamp
                    victim_line = cand
            row.remove(victim_line)
            del stamp[victim_line]
            removed_append(victim_line)
            if l1_dirty.pop(victim_line, False) and counted:
                # Dirty L1 victim writes back into L2 (on-chip).  The
                # reference's warm-up replay drops the dirty bit instead.
                wb_l2_set = l2_sets[victim_line & l2_mask]
                wb_l2_tag = victim_line >> l2_bits
                if wb_l2_tag in wb_l2_set:
                    wb_l2_set[wb_l2_tag] = True
        row.append(line)
        stamp[line] = ref_i
        if dirty_in:
            l1_dirty[line] = True
        else:
            l1_dirty.pop(line, None)

    def commit_hits(lo: int, hi: int, seg_lo: int, seg_hi: int,
                    c_lines, c_pos, seg, c_base) -> None:
        """Bulk-commit the hit heads [lo, hi) (chunk-relative)."""
        l1_stamp.update(zip(c_lines[lo:hi], c_pos[lo:hi]))
        stored = seg[seg_lo:seg_hi][
            run_any_store[c_base + lo:c_base + hi]
        ]
        if len(stored):
            l1_dirty.update(zip(stored.tolist(), repeat(True)))

    h = 0  # index into head arrays
    while h < n_heads:
        chunk_end = min(h + chunk_refs, n_heads)
        # Per-chunk Python lists for bulk commits and the scalar loop.
        c_lines = head_lines_np[h:chunk_end].tolist()
        c_pos = head_idx[h:chunk_end].tolist()
        c_store = run_any_store[h:chunk_end].tolist()
        c_base = h
        c_len = chunk_end - h
        j = 0
        while j < c_len:
            if not vector_mode:
                # ---- scalar mode: miss-dense phases ----
                # The miss path is inlined (a function call per miss is
                # what made the all-miss pointer chase slower than the
                # reference) and skips removal logging: the snapshot is
                # rebuilt wholesale at vector re-entry, so the removed
                # log has nothing to correct.
                burst_end = min(j + scalar_burst, c_len)
                burst_len = burst_end - j
                hits = 0
                while j < burst_end:
                    line = c_lines[j]
                    if line in stamp:
                        stamp[line] = c_pos[j]
                        if c_store[j]:
                            l1_dirty[line] = True
                        hits += 1
                        j += 1
                        continue
                    pos_j = c_pos[j]
                    counted = pos_j >= i_warm
                    l2_set = l2_sets[line & l2_mask]
                    l2_tag = line >> l2_bits
                    if l2_tag in l2_set:
                        l2_set[l2_tag] = l2_set.pop(l2_tag)
                        if counted:
                            l2h_append(pos_j)
                    else:
                        if counted:
                            miss_append(pos_j)
                        if len(l2_set) >= l2_ways:
                            victim_tag = next(iter(l2_set))
                            victim_dirty = l2_set.pop(victim_tag)
                            victim_line = (victim_tag << l2_bits) | (line & l2_mask)
                            # Inclusive hierarchy: back-invalidate L1.
                            if victim_line in stamp:
                                del stamp[victim_line]
                                l1_rows[victim_line & l1_mask].remove(victim_line)
                                if l1_dirty.pop(victim_line, False):
                                    victim_dirty = True
                            if counted:
                                if victim_dirty:
                                    writebacks += 1
                                    wb_append(True)
                                else:
                                    wb_append(False)
                        elif counted:
                            wb_append(False)
                        l2_set[l2_tag] = False
                    # ---- Fill L1 ----
                    row = l1_rows[line & l1_mask]
                    if len(row) >= l1_ways:
                        victim_line = row[0]
                        best = stamp[victim_line]
                        for cand in row:
                            cand_stamp = stamp[cand]
                            if cand_stamp < best:
                                best = cand_stamp
                                victim_line = cand
                        row.remove(victim_line)
                        del stamp[victim_line]
                        if l1_dirty.pop(victim_line, False) and counted:
                            # Dirty L1 victim writes back into L2 (on-chip).
                            wb_l2_set = l2_sets[victim_line & l2_mask]
                            wb_l2_tag = victim_line >> l2_bits
                            if wb_l2_tag in wb_l2_set:
                                wb_l2_set[wb_l2_tag] = True
                    row.append(line)
                    stamp[line] = pos_j
                    if c_store[j]:
                        l1_dirty[line] = True
                    else:
                        l1_dirty.pop(line, None)
                    j += 1
                if hits * 32 >= burst_len * 31:  # >= ~97% hits
                    vector_mode = True
                    vector_fails = 0
                    window = 1024
                    # Scalar-mode misses skip the removal log, so the
                    # membership snapshot must be rebuilt from live
                    # state before the next vectorized scan.
                    snapshot_drift = _SNAPSHOT_DRIFT_MAX + 1
                else:
                    scalar_burst = min(scalar_burst * 2, _SCALAR_BURST_MAX)
                continue

            # ---- vector mode: membership scan over a window of heads ----
            if snapshot_drift > _SNAPSHOT_DRIFT_MAX:
                if stamp:
                    snapshot = np.sort(np.fromiter(
                        stamp.keys(), dtype=np.int64, count=len(stamp)
                    ))
                else:
                    snapshot = np.empty(0, dtype=np.int64)
                removed_log.clear()
                snapshot_drift = 0
            w_end = min(j + window, c_len)
            w_len = w_end - j
            seg = head_lines_np[c_base + j:c_base + w_end]
            if len(snapshot):
                pos = np.searchsorted(snapshot, seg)
                member = snapshot[np.minimum(pos, len(snapshot) - 1)] == seg
                if removed_log:
                    # A snapshot member removed since the rebuild would be
                    # a false hit: route it through the scalar path, which
                    # consults live state and classifies exactly.
                    member &= ~np.isin(
                        seg, np.asarray(removed_log, dtype=np.int64)
                    )
                scalar_pos = np.flatnonzero(~member)
            else:
                scalar_pos = np.arange(w_len)

            if not len(scalar_pos):
                # Fully-hit window: one bulk commit.  Last-write-wins
                # timestamps reproduce any move-to-MRU sequence; dirty
                # bits OR in each stored run.
                commit_hits(j, w_end, 0, w_len, c_lines, c_pos, seg, c_base)
                j = w_end
                if window < _WINDOW_MAX:
                    window <<= 1
                vector_fails = 0
                continue

            # Mixed window: bulk-commit the guaranteed-hit ranges between
            # scalar positions; step everything else through live state.
            # Short ranges go scalar too — a dict.update round-trip costs
            # more than a few inline hits.  Misses processed *inside* this
            # window evict lines the top-of-window mask knows nothing
            # about, so once the removed log grows, later ranges are
            # validated against the delta before committing.
            win_removed = len(removed_log)
            delta: set[int] = set()
            prev = 0
            n_scalar = len(scalar_pos)
            for sp in scalar_pos.tolist():
                if sp - prev >= _BULK_RANGE_MIN:
                    if len(removed_log) != win_removed:
                        delta.update(removed_log[win_removed:])
                        win_removed = len(removed_log)
                    if not delta or delta.isdisjoint(c_lines[j + prev:j + sp]):
                        commit_hits(j + prev, j + sp, prev, sp,
                                    c_lines, c_pos, seg, c_base)
                        prev = sp
                for k in range(j + prev, j + sp + 1):
                    line = c_lines[k]
                    if line in stamp:
                        stamp[line] = c_pos[k]
                        if c_store[k]:
                            l1_dirty[line] = True
                    else:
                        process_miss(line, c_pos[k], c_store[k])
                prev = sp + 1
            # Trailing hit range after the last scalar position.
            if prev < w_len:
                bulk = w_len - prev >= _BULK_RANGE_MIN
                if bulk and len(removed_log) != win_removed:
                    delta.update(removed_log[win_removed:])
                    win_removed = len(removed_log)
                if bulk and (not delta or delta.isdisjoint(c_lines[j + prev:w_end])):
                    commit_hits(j + prev, w_end, prev, w_len,
                                c_lines, c_pos, seg, c_base)
                else:
                    for k in range(j + prev, w_end):
                        line = c_lines[k]
                        if line in stamp:
                            stamp[line] = c_pos[k]
                            if c_store[k]:
                                l1_dirty[line] = True
                        else:
                            process_miss(line, c_pos[k], c_store[k])
            j = w_end
            # Adapt: shrink on missy windows, drop to scalar mode when
            # vector scans stop paying for themselves.
            if n_scalar * 8 >= w_len:  # >= 12.5% scalar heads
                vector_fails += 1
                if window > _WINDOW_MIN:
                    window >>= 1
                if vector_fails >= 2:
                    vector_mode = False
                    scalar_burst = _SCALAR_BURST_MIN
            else:
                vector_fails = 0
        h = chunk_end

    # ------------------------------------------------------------------
    # Vectorized reconstruction of the request stream and accounting
    # ------------------------------------------------------------------
    return _reconstruct(
        trace, config, n_refs, i_warm, warmup_instructions > 0,
        gaps_np, stores_np, cum_instr, head_idx,
        l2_hit_refs, miss_refs, miss_wb, writebacks,
        cpi, l1_hit_cycles, l2_hit_cycles, miss_onchip_cycles, store_issue,
        local_fraction,
    )


def _reconstruct(
    trace, config, n_refs, i_warm, had_warmup,
    gaps_np, stores_np, cum_instr, head_idx,
    l2_hit_refs, miss_refs, miss_wb, writebacks,
    cpi, l1_hit_cycles, l2_hit_cycles, miss_onchip_cycles, store_issue,
    local_fraction,
) -> MissTrace:
    """Rebuild the MissTrace arrays from the outcome event streams."""
    n_counted = n_refs - i_warm
    base = int(cum_instr[i_warm]) if had_warmup else 0
    n_instructions = int(cum_instr[-1]) - base

    miss_arr = np.asarray(miss_refs, dtype=np.int64)
    l2h_arr = np.asarray(l2_hit_refs, dtype=np.int64)
    wb_arr = np.asarray(miss_wb, dtype=bool)
    n_miss = len(miss_arr)
    n_l2h = len(l2h_arr)

    # Per-reference cost terms, interleaved exactly as the reference
    # accumulates them: gap cycles first, then the level-dependent cost.
    gap_costs = gaps_np[i_warm:].astype(np.float64) * cpi
    levels = np.zeros(n_counted, dtype=np.int64)
    if n_l2h:
        levels[l2h_arr - i_warm] = 1
    if n_miss:
        levels[miss_arr - i_warm] = 2
    lvl_costs = np.array([l1_hit_cycles, l2_hit_cycles, miss_onchip_cycles])
    op_cost = np.where(stores_np[i_warm:], store_issue, lvl_costs[levels])
    inter = np.empty(2 * n_counted)
    inter[0::2] = gap_costs
    inter[1::2] = op_cost
    if had_warmup:
        # The reference resets its accumulator right after adding the
        # first post-warm-up reference's gap cycles, discarding them.
        inter[0] = 0.0

    # Left-to-right segment sums between misses.  Long segments go
    # through np.cumsum (a sequential recurrence — bit-identical to the
    # running +=); many short segments are grouped by length and summed
    # with one strictly left-to-right vectorized add per element
    # position (the first operand carries no 0.0 seed, which is exact
    # anyway); the remainder goes through builtin sum on list slices (a
    # sequential C loop).  None of these is the pairwise np.add.reduce.
    seg_ends_arr = 2 * (miss_arr - i_warm) + 2
    seg_sums: list[float] = []
    if n_miss == 0 or (2 * n_counted) // max(n_miss, 1) > 512:
        append_seg = seg_sums.append
        prev = 0
        for end in seg_ends_arr.tolist():
            chunk = inter[prev:end]
            append_seg(float(np.cumsum(chunk)[-1]) if len(chunk) else 0.0)
            prev = end
        tail = inter[prev:]
        total_compute = float(np.cumsum(tail)[-1]) if len(tail) else 0.0
    else:
        starts = np.empty(n_miss, dtype=np.int64)
        starts[0] = 0
        starts[1:] = seg_ends_arr[:-1]
        lengths = seg_ends_arr - starts
        max_len = int(lengths.max())
        if n_miss >= 4096 and max_len <= 64:
            # Miss-dense trace: the segments are short and of few
            # distinct lengths, so each length class sums with
            # ``max_len`` sequential elementwise adds.
            sums = np.empty(n_miss)
            for length in np.unique(lengths).tolist():
                rows = np.flatnonzero(lengths == length)
                row_starts = starts[rows]
                acc = inter[row_starts]
                for offset in range(1, length):
                    acc = acc + inter[row_starts + offset]
                sums[rows] = acc
            seg_sums = sums.tolist()
            total_compute = float(sum(inter[int(seg_ends_arr[-1]):].tolist()))
        else:
            append_seg = seg_sums.append
            inter_list = inter.tolist()
            prev = 0
            for end in seg_ends_arr.tolist():
                append_seg(sum(inter_list[prev:end]))
                prev = end
            # float() keeps the empty-tail case a float like the
            # reference's accumulator (sum of an empty slice is int 0).
            total_compute = float(sum(inter_list[prev:]))

    # Interleave miss requests with their writebacks (gap 0.0, non-
    # blocking, same instruction index).
    counts = 1 + wb_arr.astype(np.int64)
    slots = np.cumsum(counts) - counts
    n_out = int(counts.sum()) if n_miss else 0
    gap_out = np.zeros(n_out)
    blocking_out = np.zeros(n_out, dtype=bool)
    inst_out = (
        np.repeat(cum_instr[miss_arr] - base, counts)
        if n_miss else np.empty(0, dtype=np.int64)
    )
    if n_miss:
        gap_out[slots] = seg_sums
        blocking_out[slots] = ~stores_np[miss_arr]

    l1_misses = n_miss + n_l2h
    energy = _energy_events(
        trace, config, n_instructions, n_refs, local_fraction,
        l1d_hits=n_counted - l1_misses, l1d_refills=l1_misses,
        l2_hits=n_l2h, l2_refills=n_miss, llc_misses=n_miss,
        writebacks=writebacks,
    )

    return MissTrace(
        gap_cycles=gap_out,
        is_blocking=blocking_out,
        instruction_index=inst_out,
        total_compute_cycles=total_compute,
        n_instructions=n_instructions,
        energy=energy,
        source_name=trace.name,
        source_input=trace.input_name,
    )


def _energy_events(
    trace, config, n_instructions, n_refs, local_fraction,
    l1d_hits, l1d_refills, l2_hits, l2_refills, llc_misses, writebacks,
) -> EnergyEvents:
    """The reference's energy bookkeeping, verbatim.

    Note ``n_refs`` is the *total* reference count (warm-up included):
    the reference mixes it with the post-warm-up instruction count, and
    byte-equivalence means reproducing that accounting exactly.
    """
    energy = EnergyEvents()
    n_gap_instructions = n_instructions - n_refs
    implicit_l1_refs = int(n_gap_instructions * local_fraction)
    n_nonmem = n_gap_instructions - implicit_l1_refs
    energy.n_instructions = n_instructions
    energy.n_memory_refs = n_refs + implicit_l1_refs
    energy.alu_fpu_ops = n_nonmem
    fp_fraction = trace.mix.fp_fraction
    energy.regfile_fp_ops = int(n_nonmem * fp_fraction)
    energy.regfile_int_ops = n_nonmem - energy.regfile_fp_ops + energy.n_memory_refs
    energy.fetch_buffer_accesses = n_instructions // 8
    energy.l1i_hits = n_instructions // (config.line_bytes // 4)
    energy.l1i_refills = trace.n_phases * (
        trace.icache_footprint_bytes // config.line_bytes
    )
    energy.l1d_hits = l1d_hits + implicit_l1_refs
    energy.l1d_refills = l1d_refills
    energy.l2_hits = l2_hits + energy.l1i_refills
    energy.l2_refills = l2_refills
    energy.llc_misses = llc_misses
    energy.writebacks = writebacks
    return energy


def _empty_result(trace, config) -> MissTrace:
    """MissTrace for a zero-reference trace (matches the reference)."""
    return MissTrace(
        gap_cycles=np.empty(0),
        is_blocking=np.empty(0, dtype=bool),
        instruction_index=np.empty(0, dtype=np.int64),
        total_compute_cycles=0.0,
        n_instructions=0,
        energy=_energy_events(
            trace, config, 0, 0, trace.local_ref_fraction,
            l1d_hits=0, l1d_refills=0, l2_hits=0, l2_refills=0,
            llc_misses=0, writebacks=0,
        ),
        source_name=trace.name,
        source_input=trace.input_name,
    )


def _full_warm_result(trace, config, total_compute, n_instructions) -> MissTrace:
    """MissTrace when the warm-up budget swallows the whole trace."""
    return MissTrace(
        gap_cycles=np.empty(0),
        is_blocking=np.empty(0, dtype=bool),
        instruction_index=np.empty(0, dtype=np.int64),
        total_compute_cycles=total_compute,
        n_instructions=n_instructions,
        energy=_energy_events(
            trace, config, n_instructions, trace.n_references,
            trace.local_ref_fraction,
            l1d_hits=0, l1d_refills=0, l2_hits=0, l2_refills=0,
            llc_misses=0, writebacks=0,
        ),
        source_name=trace.name,
        source_input=trace.input_name,
    )
