"""Cache substrate: set-associative caches, inclusive hierarchy, write buffer.

The hierarchy pass ships as a kernel pair: ``simulate_hierarchy`` runs
the vectorized kernel (:mod:`repro.cache.vectorized`) by default, and
``simulate_hierarchy_reference`` is the scalar oracle it is
byte-equivalent to.
"""

from repro.cache.cache import CacheStats, EvictedLine, SetAssociativeCache
from repro.cache.hierarchy import (
    HierarchyConfig,
    PAPER_HIERARCHY,
    simulate_hierarchy,
    simulate_hierarchy_reference,
)
from repro.cache.replacement import (
    FIFOPolicy,
    LRUPolicy,
    POLICIES,
    TreePLRUPolicy,
    make_policy,
)
from repro.cache.write_buffer import WriteBuffer

__all__ = [
    "CacheStats",
    "EvictedLine",
    "SetAssociativeCache",
    "HierarchyConfig",
    "PAPER_HIERARCHY",
    "simulate_hierarchy",
    "simulate_hierarchy_reference",
    "FIFOPolicy",
    "LRUPolicy",
    "POLICIES",
    "TreePLRUPolicy",
    "make_policy",
    "WriteBuffer",
]
