"""Cache substrate: set-associative caches, inclusive hierarchy, write buffer."""

from repro.cache.cache import CacheStats, EvictedLine, SetAssociativeCache
from repro.cache.hierarchy import HierarchyConfig, PAPER_HIERARCHY, simulate_hierarchy
from repro.cache.replacement import (
    FIFOPolicy,
    LRUPolicy,
    POLICIES,
    TreePLRUPolicy,
    make_policy,
)
from repro.cache.write_buffer import WriteBuffer

__all__ = [
    "CacheStats",
    "EvictedLine",
    "SetAssociativeCache",
    "HierarchyConfig",
    "PAPER_HIERARCHY",
    "simulate_hierarchy",
    "FIFOPolicy",
    "LRUPolicy",
    "POLICIES",
    "TreePLRUPolicy",
    "make_policy",
    "WriteBuffer",
]
