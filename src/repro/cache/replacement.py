"""Replacement policies for set-associative caches.

The paper's configuration (Table 1) uses LRU; FIFO and a tree-based
pseudo-LRU are provided for ablation and to exercise the cache model more
broadly.  A policy instance manages a single set of ``associativity`` ways.
"""

from __future__ import annotations


class LRUPolicy:
    """Least-recently-used: evict the way untouched the longest."""

    def __init__(self, associativity: int) -> None:
        if associativity <= 0:
            raise ValueError(f"associativity must be positive, got {associativity}")
        self.associativity = associativity
        self._order: list[int] = []

    def touch(self, way: int) -> None:
        """Record a hit/fill on ``way``."""
        if way in self._order:
            self._order.remove(way)
        self._order.append(way)

    def victim(self) -> int:
        """Way to evict next."""
        if len(self._order) < self.associativity:
            # Prefer an unused way.
            used = set(self._order)
            for way in range(self.associativity):
                if way not in used:
                    return way
        return self._order[0]

    def invalidate(self, way: int) -> None:
        """Forget ``way`` (back-invalidation)."""
        if way in self._order:
            self._order.remove(way)


class FIFOPolicy:
    """First-in-first-out: evict in fill order, ignoring hits."""

    def __init__(self, associativity: int) -> None:
        if associativity <= 0:
            raise ValueError(f"associativity must be positive, got {associativity}")
        self.associativity = associativity
        self._queue: list[int] = []

    def touch(self, way: int) -> None:
        """Record a fill on ``way`` (hits do not reorder)."""
        if way not in self._queue:
            self._queue.append(way)

    def victim(self) -> int:
        """Way to evict next."""
        if len(self._queue) < self.associativity:
            used = set(self._queue)
            for way in range(self.associativity):
                if way not in used:
                    return way
        return self._queue.pop(0)

    def invalidate(self, way: int) -> None:
        """Forget ``way``."""
        if way in self._queue:
            self._queue.remove(way)


class TreePLRUPolicy:
    """Tree-based pseudo-LRU over a power-of-two number of ways."""

    def __init__(self, associativity: int) -> None:
        if associativity <= 0 or associativity & (associativity - 1):
            raise ValueError(
                f"TreePLRU requires a power-of-two associativity, got {associativity}"
            )
        self.associativity = associativity
        self._bits = [0] * max(1, associativity - 1)

    def touch(self, way: int) -> None:
        """Flip tree bits away from ``way`` on every access."""
        node = 0
        span = self.associativity
        while span > 1:
            half = span // 2
            go_right = way >= half
            self._bits[node] = 0 if go_right else 1
            node = 2 * node + (2 if go_right else 1)
            if go_right:
                way -= half
            span = half

    def victim(self) -> int:
        """Follow the tree bits to the pseudo-least-recent way."""
        node = 0
        way = 0
        span = self.associativity
        while span > 1:
            half = span // 2
            go_right = self._bits[node] == 1
            node = 2 * node + (2 if go_right else 1)
            if go_right:
                way += half
            span = half
        return way

    def invalidate(self, way: int) -> None:
        """Point the tree at ``way`` so it is the next victim."""
        node = 0
        span = self.associativity
        while span > 1:
            half = span // 2
            go_right = way >= half
            self._bits[node] = 1 if go_right else 0
            node = 2 * node + (2 if go_right else 1)
            if go_right:
                way -= half
            span = half


POLICIES = {
    "lru": LRUPolicy,
    "fifo": FIFOPolicy,
    "plru": TreePLRUPolicy,
}


def make_policy(name: str, associativity: int):
    """Construct a replacement policy by name ('lru', 'fifo', 'plru')."""
    try:
        factory = POLICIES[name]
    except KeyError:
        raise ValueError(f"unknown replacement policy {name!r}; options: {sorted(POLICIES)}")
    return factory(associativity)
