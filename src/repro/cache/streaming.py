"""Chunked/streaming variant of the functional cache pass.

:class:`StreamingHierarchyPass` is the scalar reference loop from
:mod:`repro.cache.hierarchy` refactored into a resumable machine: all
loop state (L1/L2 resident sets, the cycle accumulator, the instruction
counter, the warmup flag, energy tallies) lives on the object, and
:meth:`~StreamingHierarchyPass.feed` advances it over one bounded
:class:`~repro.ingest.formats.TraceChunk` at a time.  Feeding a trace in
*any* chunking — including one reference at a time — produces the exact
per-reference execution the in-memory loop performs, so the emitted
request stream is **bit-identical** to ``simulate_hierarchy`` on the
same trace; only peak memory changes (one chunk plus the cache resident
sets, instead of the whole trace).

Both ``mode="fast"`` and ``mode="reference"`` run this same machine:
the in-memory fast and reference kernels are themselves bit-identical
(the equivalence suite enforces it), so one streaming port serves as
the counterpart of both.  ``tests/ingest/test_streaming_equivalence.py``
pins the digest equality across randomized and pathological chunk
sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro.cpu.core import CoreModel, DEFAULT_CORE
from repro.cpu.trace import EnergyEvents, MemoryTrace, MissTrace
from repro.cache.hierarchy import HierarchyConfig, PAPER_HIERARCHY
from repro.ingest.formats import (
    DEFAULT_CHUNK_REFS,
    TraceChunk,
    TraceHeader,
    header_for,
    trace_chunks,
)
from repro.util.bitops import floor_lg


@dataclass
class MissChunk:
    """The request stream emitted while consuming one input chunk.

    May be empty (every reference hit on chip) and carries no trace-level
    totals — those arrive from :meth:`StreamingHierarchyPass.finish`.
    """

    gap_cycles: np.ndarray
    is_blocking: np.ndarray
    instruction_index: np.ndarray

    def __len__(self) -> int:
        return len(self.gap_cycles)


@dataclass
class FunctionalSummary:
    """Trace-level totals, valid once the whole trace has been fed."""

    total_compute_cycles: float
    n_instructions: int
    energy: EnergyEvents
    source_name: str
    source_input: str


class StreamingHierarchyPass:
    """Resumable functional cache pass (state carried across chunks)."""

    def __init__(
        self,
        header: TraceHeader,
        config: HierarchyConfig | None = None,
        core: CoreModel | None = None,
        warmup_instructions: int = 0,
    ) -> None:
        config = config if config is not None else PAPER_HIERARCHY
        core = core if core is not None else DEFAULT_CORE
        self.header = header
        self.config = config
        self.warmup_instructions = warmup_instructions

        self._line_shift = floor_lg(config.line_bytes)
        l1_sets_count = config.l1d_bytes // config.line_bytes // config.l1d_ways
        l2_sets_count = config.l2_bytes // config.line_bytes // config.l2_ways
        self._l1_mask = l1_sets_count - 1
        self._l2_mask = l2_sets_count - 1
        self._l1_bits = floor_lg(l1_sets_count)
        self._l2_bits = floor_lg(l2_sets_count)
        self._l1_ways = config.l1d_ways
        self._l2_ways = config.l2_ways
        self._l1_sets: list[dict[int, bool]] = [dict() for _ in range(l1_sets_count)]
        self._l2_sets: list[dict[int, bool]] = [dict() for _ in range(l2_sets_count)]

        self._l1_hit_cycles = core.load_hit_cycles(1)
        self._l2_hit_cycles = core.load_hit_cycles(2)
        self._miss_onchip_cycles = core.load_miss_onchip_cycles()
        self._store_issue = core.store_issue_cycles
        local_fraction = header.local_ref_fraction
        self._cpi = (
            (1.0 - local_fraction) * core.nonmem_cpi(header.mix)
            + local_fraction * self._l1_hit_cycles
        )

        self._cycles_acc = 0.0
        self._instructions = 0
        self._warm = warmup_instructions <= 0
        self._n_refs_total = 0  # includes warmup refs (energy denominator)
        self._l1d_hits = 0
        self._l1d_refills = 0
        self._l2_hits = 0
        self._l2_refills = 0
        self._writebacks = 0
        self._llc_misses = 0
        self._finished = False

    def feed(self, chunk: TraceChunk) -> MissChunk:
        """Advance the pass over one chunk; emit its request stream."""
        if self._finished:
            raise RuntimeError("feed() after finish()")
        line_shift = self._line_shift
        l1_mask, l2_mask = self._l1_mask, self._l2_mask
        l1_bits, l2_bits = self._l1_bits, self._l2_bits
        l1_ways, l2_ways = self._l1_ways, self._l2_ways
        l1_sets, l2_sets = self._l1_sets, self._l2_sets
        l1_hit_cycles = self._l1_hit_cycles
        l2_hit_cycles = self._l2_hit_cycles
        miss_onchip_cycles = self._miss_onchip_cycles
        store_issue = self._store_issue
        cpi = self._cpi
        warmup_instructions = self.warmup_instructions

        cycles_acc = self._cycles_acc
        instructions = self._instructions
        warm = self._warm
        l1d_hits, l1d_refills = self._l1d_hits, self._l1d_refills
        l2_hits, l2_refills = self._l2_hits, self._l2_refills
        writebacks, llc_misses = self._writebacks, self._llc_misses

        addresses = chunk.addresses
        stores = chunk.is_store
        gaps = chunk.gap_instructions
        n = len(addresses)
        self._n_refs_total += n

        out_gap_cycles: list[float] = []
        out_blocking: list[bool] = []
        out_inst_index: list[int] = []
        append_gap = out_gap_cycles.append
        append_blocking = out_blocking.append
        append_inst = out_inst_index.append

        for i in range(n):
            gap_instrs = int(gaps[i])
            instructions += gap_instrs + 1
            cycles_acc += gap_instrs * cpi
            if not warm:
                if instructions < warmup_instructions:
                    line = int(addresses[i]) >> line_shift
                    is_store = bool(stores[i])
                    l1_set = l1_sets[line & l1_mask]
                    l1_tag = line >> l1_bits
                    if l1_tag in l1_set:
                        l1_set[l1_tag] = l1_set.pop(l1_tag) or is_store
                    else:
                        l2_set = l2_sets[line & l2_mask]
                        l2_tag = line >> l2_bits
                        if l2_tag in l2_set:
                            l2_set[l2_tag] = l2_set.pop(l2_tag)
                        else:
                            if len(l2_set) >= l2_ways:
                                victim_tag = next(iter(l2_set))
                                del l2_set[victim_tag]
                                victim_line = (victim_tag << l2_bits) | (line & l2_mask)
                                v_l1_set = l1_sets[victim_line & l1_mask]
                                v_l1_set.pop(victim_line >> l1_bits, None)
                            l2_set[l2_tag] = False
                        if len(l1_set) >= l1_ways:
                            del l1_set[next(iter(l1_set))]
                        l1_set[l1_tag] = is_store
                    continue
                warm = True
                instructions = 0
                cycles_acc = 0.0

            line = int(addresses[i]) >> line_shift
            is_store = bool(stores[i])

            l1_set = l1_sets[line & l1_mask]
            l1_tag = line >> l1_bits
            if l1_tag in l1_set:
                dirty = l1_set.pop(l1_tag)
                l1_set[l1_tag] = dirty or is_store
                l1d_hits += 1
                cycles_acc += store_issue if is_store else l1_hit_cycles
                continue

            l2_set = l2_sets[line & l2_mask]
            l2_tag = line >> l2_bits
            l2_hit = l2_tag in l2_set
            if l2_hit:
                l2_set[l2_tag] = l2_set.pop(l2_tag)
                l2_hits += 1
                cycles_acc += store_issue if is_store else l2_hit_cycles
            else:
                llc_misses += 1
                cycles_acc += store_issue if is_store else miss_onchip_cycles
                append_gap(cycles_acc)
                append_blocking(not is_store)
                append_inst(instructions)
                cycles_acc = 0.0
                if len(l2_set) >= l2_ways:
                    victim_tag = next(iter(l2_set))
                    victim_dirty = l2_set.pop(victim_tag)
                    victim_line = (victim_tag << l2_bits) | (line & l2_mask)
                    v_l1_set = l1_sets[victim_line & l1_mask]
                    v_l1_tag = victim_line >> l1_bits
                    if v_l1_tag in v_l1_set:
                        victim_dirty = v_l1_set.pop(v_l1_tag) or victim_dirty
                    if victim_dirty:
                        writebacks += 1
                        append_gap(0.0)
                        append_blocking(False)
                        append_inst(instructions)
                l2_set[l2_tag] = False
                l2_refills += 1

            if len(l1_set) >= l1_ways:
                victim_tag = next(iter(l1_set))
                victim_dirty = l1_set.pop(victim_tag)
                if victim_dirty:
                    victim_line = (victim_tag << l1_bits) | (line & l1_mask)
                    wb_l2_set = l2_sets[victim_line & l2_mask]
                    wb_l2_tag = victim_line >> l2_bits
                    if wb_l2_tag in wb_l2_set:
                        wb_l2_set[wb_l2_tag] = True
            l1_set[l1_tag] = is_store
            l1d_refills += 1

        self._cycles_acc = cycles_acc
        self._instructions = instructions
        self._warm = warm
        self._l1d_hits, self._l1d_refills = l1d_hits, l1d_refills
        self._l2_hits, self._l2_refills = l2_hits, l2_refills
        self._writebacks, self._llc_misses = writebacks, llc_misses

        return MissChunk(
            gap_cycles=np.asarray(out_gap_cycles, dtype=np.float64),
            is_blocking=np.asarray(out_blocking, dtype=bool),
            instruction_index=np.asarray(out_inst_index, dtype=np.int64),
        )

    def finish(self) -> FunctionalSummary:
        """Close the pass and compute the trace-level totals.

        The energy bookkeeping is a verbatim port of the in-memory
        kernel's epilogue — the reference denominator is the *total* ref
        count including warmup, while the instruction count is the
        post-crossover tally, exactly as there.
        """
        if self._finished:
            raise RuntimeError("finish() called twice")
        self._finished = True
        header = self.header
        config = self.config
        n_instructions = self._instructions
        n_refs = self._n_refs_total
        local_fraction = header.local_ref_fraction

        energy = EnergyEvents()
        n_gap_instructions = n_instructions - n_refs
        implicit_l1_refs = int(n_gap_instructions * local_fraction)
        n_nonmem = n_gap_instructions - implicit_l1_refs
        energy.n_instructions = n_instructions
        energy.n_memory_refs = n_refs + implicit_l1_refs
        energy.alu_fpu_ops = n_nonmem
        fp_fraction = header.mix.fp_fraction
        energy.regfile_fp_ops = int(n_nonmem * fp_fraction)
        energy.regfile_int_ops = n_nonmem - energy.regfile_fp_ops + energy.n_memory_refs
        energy.fetch_buffer_accesses = n_instructions // 8
        energy.l1i_hits = n_instructions // (config.line_bytes // 4)
        energy.l1i_refills = header.n_phases * (
            header.icache_footprint_bytes // config.line_bytes
        )
        energy.l1d_hits = self._l1d_hits + implicit_l1_refs
        energy.l1d_refills = self._l1d_refills
        energy.l2_hits = self._l2_hits + energy.l1i_refills
        energy.l2_refills = self._l2_refills
        energy.llc_misses = self._llc_misses
        energy.writebacks = self._writebacks

        return FunctionalSummary(
            total_compute_cycles=self._cycles_acc,
            n_instructions=n_instructions,
            energy=energy,
            source_name=header.name,
            source_input=header.input_name,
        )


def stream_functional(
    header: TraceHeader,
    chunks: Iterable[TraceChunk],
    config: HierarchyConfig | None = None,
    core: CoreModel | None = None,
    warmup_instructions: int = 0,
) -> tuple[Iterator[MissChunk], StreamingHierarchyPass]:
    """Lazy pipeline stage: trace chunks in, miss chunks out.

    Returns the miss-chunk iterator plus the machine itself; call
    ``machine.finish()`` after exhausting the iterator to obtain the
    :class:`FunctionalSummary` the timing replay needs.
    """
    machine = StreamingHierarchyPass(
        header, config, core, warmup_instructions=warmup_instructions
    )

    def emit() -> Iterator[MissChunk]:
        for chunk in chunks:
            yield machine.feed(chunk)

    return emit(), machine


def run_functional_streaming(
    trace: MemoryTrace | TraceHeader,
    config: HierarchyConfig | None = None,
    core: CoreModel | None = None,
    warmup_instructions: int = 0,
    mode: str = "fast",
    chunk_refs: int = DEFAULT_CHUNK_REFS,
    chunks: Iterable[TraceChunk] | None = None,
) -> MissTrace:
    """Streaming counterpart of :func:`repro.cache.hierarchy.simulate_hierarchy`.

    Accepts either an in-memory trace (chunked internally at
    ``chunk_refs``) or a ``TraceHeader`` plus an external chunk iterable
    (the ingest path).  Output is bit-identical to the in-memory kernels
    for every chunking; ``mode`` is accepted for seam compatibility and
    validated, but both values run the single streaming machine (the
    in-memory fast and reference kernels already agree bit-for-bit).
    """
    if mode not in ("fast", "reference"):
        raise ValueError(f"mode must be 'fast' or 'reference', got {mode!r}")
    if isinstance(trace, MemoryTrace):
        if chunks is not None:
            raise ValueError("pass either a MemoryTrace or (header, chunks), not both")
        header = header_for(trace)
        chunks = trace_chunks(trace, chunk_refs)
    else:
        header = trace
        if chunks is None:
            raise ValueError("streaming from a TraceHeader needs a chunk iterable")

    miss_chunks, machine = stream_functional(
        header, chunks, config, core, warmup_instructions=warmup_instructions
    )
    collected = [c for c in miss_chunks if len(c)]
    summary = machine.finish()
    if collected:
        gap_cycles = np.concatenate([c.gap_cycles for c in collected])
        is_blocking = np.concatenate([c.is_blocking for c in collected])
        instruction_index = np.concatenate([c.instruction_index for c in collected])
    else:
        gap_cycles = np.zeros(0, dtype=np.float64)
        is_blocking = np.zeros(0, dtype=bool)
        instruction_index = np.zeros(0, dtype=np.int64)
    return MissTrace(
        gap_cycles=gap_cycles,
        is_blocking=is_blocking,
        instruction_index=instruction_index,
        total_compute_cycles=summary.total_compute_cycles,
        n_instructions=summary.n_instructions,
        energy=summary.energy,
        source_name=summary.source_name,
        source_input=summary.source_input,
    )
