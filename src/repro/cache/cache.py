"""Set-associative write-back/write-allocate cache model.

This is the functional building block for the paper's hierarchy (Table 1:
32 KB 4-way L1 I/D, 1 MB 16-way unified inclusive L2, 64-byte lines).  The
model tracks hits, misses, and dirty evictions; timing is handled by the
separate event-driven simulator, which only needs the *sequence* of LLC
misses this model produces.

The implementation exploits dict insertion order for LRU: a hit reinserts
the tag, so the first key in each set dict is always the LRU way.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.bitops import floor_lg, is_power_of_two
from repro.util.validation import check_positive, check_power_of_two


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one cache."""

    hits: int = 0
    misses: int = 0
    dirty_evictions: int = 0
    clean_evictions: int = 0

    @property
    def accesses(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """Misses / accesses (0.0 when idle)."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses


@dataclass(frozen=True)
class EvictedLine:
    """An evicted line: its full line address and dirtiness."""

    line_address: int
    dirty: bool


class SetAssociativeCache:
    """LRU set-associative cache keyed by 64-byte-line addresses.

    Args:
        capacity_bytes: Total data capacity.
        associativity: Ways per set.
        line_bytes: Cache line size (power of two).
        name: Label used in error messages and reports.
    """

    def __init__(
        self,
        capacity_bytes: int,
        associativity: int,
        line_bytes: int = 64,
        name: str = "cache",
    ) -> None:
        check_positive(capacity_bytes, "capacity_bytes")
        check_positive(associativity, "associativity")
        check_power_of_two(line_bytes, "line_bytes")
        n_lines = capacity_bytes // line_bytes
        if n_lines % associativity:
            raise ValueError(
                f"{name}: {n_lines} lines not divisible by associativity {associativity}"
            )
        n_sets = n_lines // associativity
        if not is_power_of_two(n_sets):
            raise ValueError(f"{name}: set count {n_sets} must be a power of two")
        self.name = name
        self.line_bytes = line_bytes
        self.associativity = associativity
        self.n_sets = n_sets
        self._set_mask = n_sets - 1
        self._set_bits = floor_lg(n_sets)
        # Each set maps tag -> dirty flag; dict order encodes LRU (first=LRU).
        self._sets: list[dict[int, bool]] = [dict() for _ in range(n_sets)]
        self.stats = CacheStats()

    @property
    def capacity_bytes(self) -> int:
        """Total capacity in bytes."""
        return self.n_sets * self.associativity * self.line_bytes

    def line_address(self, byte_address: int) -> int:
        """Convert a byte address to its line address."""
        return byte_address // self.line_bytes

    def access(self, line_address: int, is_write: bool) -> bool:
        """Look up a line; returns True on hit (updating LRU/dirty state).

        Misses do *not* allocate — call :meth:`fill` after fetching the
        line, mirroring how the hierarchy wires allocation to the response.
        """
        target_set = self._sets[line_address & self._set_mask]
        tag = line_address >> self._set_bits
        if tag in target_set:
            dirty = target_set.pop(tag)
            target_set[tag] = dirty or is_write
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        return False

    def fill(self, line_address: int, dirty: bool = False) -> EvictedLine | None:
        """Allocate a line, returning the evicted victim (if the set was full)."""
        target_set = self._sets[line_address & self._set_mask]
        tag = line_address >> self._set_bits
        victim: EvictedLine | None = None
        if tag in target_set:
            # Refill of a resident line just merges dirtiness.
            target_set[tag] = target_set.pop(tag) or dirty
            return None
        if len(target_set) >= self.associativity:
            victim_tag, victim_dirty = next(iter(target_set.items()))
            del target_set[victim_tag]
            victim = EvictedLine(
                line_address=(victim_tag << self._set_bits)
                | (line_address & self._set_mask),
                dirty=victim_dirty,
            )
            if victim_dirty:
                self.stats.dirty_evictions += 1
            else:
                self.stats.clean_evictions += 1
        target_set[tag] = dirty
        return victim

    def contains(self, line_address: int) -> bool:
        """Presence check with no LRU side effects."""
        target_set = self._sets[line_address & self._set_mask]
        return (line_address >> self._set_bits) in target_set

    def mark_dirty(self, line_address: int) -> bool:
        """Set a resident line's dirty bit *without* touching LRU order.

        This is the operation an inner cache's dirty-victim writeback
        performs on its inclusive outer level: the outer line absorbs the
        data but the writeback is not a demand access, so it must not
        refresh recency.  Returns False if the line is not resident.
        """
        target_set = self._sets[line_address & self._set_mask]
        tag = line_address >> self._set_bits
        if tag not in target_set:
            return False
        target_set[tag] = True  # assignment to an existing key keeps order
        return True

    def invalidate(self, line_address: int) -> bool | None:
        """Remove a line (back-invalidation); returns its dirty flag or None."""
        target_set = self._sets[line_address & self._set_mask]
        tag = line_address >> self._set_bits
        if tag in target_set:
            return target_set.pop(tag)
        return None

    def resident_lines(self) -> int:
        """Number of currently valid lines."""
        return sum(len(target_set) for target_set in self._sets)
