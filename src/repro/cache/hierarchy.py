"""Functional simulation of the L1/L2 cache hierarchy.

``simulate_hierarchy`` runs a :class:`~repro.cpu.trace.MemoryTrace` through
the Table 1 hierarchy (32 KB 4-way L1 D, 1 MB 16-way inclusive L2, 64 B
lines, write-back/write-allocate, LRU) and produces the
:class:`~repro.cpu.trace.MissTrace` the timing simulator consumes.

Key property exploited throughout the repository: for an in-order core the
*set* of LLC misses and their program positions do not depend on memory
latency, so this (expensive) pass runs once per benchmark and every timing
configuration (base_dram / base_oram / static / dynamic) replays its output.

The inner loop is deliberately hand-inlined: it processes millions of
references per benchmark, so L1/L2 set lookups use plain dicts with
insertion-order LRU instead of the general :class:`SetAssociativeCache`
(the class is used for unit testing the same logic at small scale).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cpu.core import CoreModel, DEFAULT_CORE
from repro.cpu.trace import EnergyEvents, MemoryTrace, MissTrace
from repro.util.bitops import floor_lg, is_power_of_two
from repro.util.units import KB, MB


@dataclass(frozen=True)
class HierarchyConfig:
    """Cache hierarchy parameters (defaults are the paper's Table 1)."""

    l1i_bytes: int = 32 * KB
    l1i_ways: int = 4
    l1d_bytes: int = 32 * KB
    l1d_ways: int = 4
    l2_bytes: int = 1 * MB
    l2_ways: int = 16
    line_bytes: int = 64

    def __post_init__(self) -> None:
        for label, (size, ways) in {
            "l1i": (self.l1i_bytes, self.l1i_ways),
            "l1d": (self.l1d_bytes, self.l1d_ways),
            "l2": (self.l2_bytes, self.l2_ways),
        }.items():
            sets = size // self.line_bytes // ways
            if sets <= 0 or not is_power_of_two(sets):
                raise ValueError(f"{label}: set count {sets} must be a positive power of two")


#: Table 1 configuration.
PAPER_HIERARCHY = HierarchyConfig()


def simulate_hierarchy(
    trace: MemoryTrace,
    config: HierarchyConfig | None = None,
    core: CoreModel | None = None,
    warmup_instructions: int = 0,
    mode: str = "fast",
) -> MissTrace:
    """Reduce a memory trace to its LLC request stream.

    ``mode`` selects the kernel: ``"fast"`` (default) runs the
    vectorized pass in :mod:`repro.cache.vectorized`; ``"reference"``
    runs the scalar oracle loop below.  The two are bit-identical (the
    equivalence suite in ``tests/cache/test_vectorized_equivalence.py``
    enforces it), so the choice only affects speed.
    """
    if config is None:
        config = PAPER_HIERARCHY
    if core is None:
        core = DEFAULT_CORE
    if mode == "fast":
        from repro.cache.vectorized import hierarchy_pass_vectorized

        return hierarchy_pass_vectorized(
            trace, config, core, warmup_instructions=warmup_instructions
        )
    if mode != "reference":
        raise ValueError(f"mode must be 'fast' or 'reference', got {mode!r}")
    return simulate_hierarchy_reference(
        trace, config, core, warmup_instructions=warmup_instructions
    )


def simulate_hierarchy_reference(
    trace: MemoryTrace,
    config: HierarchyConfig | None = None,
    core: CoreModel | None = None,
    warmup_instructions: int = 0,
) -> MissTrace:
    """The scalar reference pass (oracle for the vectorized kernel).

    Returns a :class:`MissTrace` whose requests are, in program order:
    load-miss fetches (blocking), store-miss fetches (non-blocking,
    write-allocate), and dirty writebacks from L2 evictions (non-blocking).
    The paper's ORAM controller is invoked for both misses and evictions
    (Section 3.1), so writebacks are first-class requests here.

    ``warmup_instructions`` mirrors the paper's fast-forwarding ("each
    benchmark is fast-forwarded 1-20 billion instructions to get out of
    initialization code"): the first part of the trace warms the caches
    but contributes no requests, instructions, or energy.
    """
    if config is None:
        config = PAPER_HIERARCHY
    if core is None:
        core = DEFAULT_CORE

    line_shift = floor_lg(config.line_bytes)
    l1_sets_count = config.l1d_bytes // config.line_bytes // config.l1d_ways
    l2_sets_count = config.l2_bytes // config.line_bytes // config.l2_ways
    l1_mask = l1_sets_count - 1
    l2_mask = l2_sets_count - 1
    l1_bits = floor_lg(l1_sets_count)
    l2_bits = floor_lg(l2_sets_count)
    l1_ways = config.l1d_ways
    l2_ways = config.l2_ways

    l1_sets: list[dict[int, bool]] = [dict() for _ in range(l1_sets_count)]
    l2_sets: list[dict[int, bool]] = [dict() for _ in range(l2_sets_count)]

    l1_hit_cycles = core.load_hit_cycles(1)
    l2_hit_cycles = core.load_hit_cycles(2)
    miss_onchip_cycles = core.load_miss_onchip_cycles()
    store_issue = core.store_issue_cycles
    # Gap instructions are a blend of non-memory work and always-L1-hit
    # local references (see MemoryTrace.local_ref_fraction).
    local_fraction = trace.local_ref_fraction
    cpi = (
        (1.0 - local_fraction) * core.nonmem_cpi(trace.mix)
        + local_fraction * l1_hit_cycles
    )

    addresses = trace.addresses
    stores = trace.is_store
    gaps = trace.gap_instructions
    n_refs = len(addresses)

    # Request stream accumulators.
    out_gap_cycles: list[float] = []
    out_blocking: list[bool] = []
    out_inst_index: list[int] = []

    energy = EnergyEvents()
    l1d_hits = 0
    l1d_refills = 0
    l2_hits = 0
    l2_refills = 0
    writebacks = 0
    llc_misses = 0

    cycles_acc = 0.0
    instructions = 0
    warm = warmup_instructions <= 0

    # Localize hot callables/values.
    append_gap = out_gap_cycles.append
    append_blocking = out_blocking.append
    append_inst = out_inst_index.append

    for i in range(n_refs):
        gap_instrs = int(gaps[i])
        instructions += gap_instrs + 1
        cycles_acc += gap_instrs * cpi
        if not warm:
            if instructions < warmup_instructions:
                # Warm the caches only: replay the reference with no
                # request/energy accounting.
                line = int(addresses[i]) >> line_shift
                is_store = bool(stores[i])
                l1_set = l1_sets[line & l1_mask]
                l1_tag = line >> l1_bits
                if l1_tag in l1_set:
                    l1_set[l1_tag] = l1_set.pop(l1_tag) or is_store
                else:
                    l2_set = l2_sets[line & l2_mask]
                    l2_tag = line >> l2_bits
                    if l2_tag in l2_set:
                        l2_set[l2_tag] = l2_set.pop(l2_tag)
                    else:
                        if len(l2_set) >= l2_ways:
                            victim_tag = next(iter(l2_set))
                            del l2_set[victim_tag]
                            victim_line = (victim_tag << l2_bits) | (line & l2_mask)
                            v_l1_set = l1_sets[victim_line & l1_mask]
                            v_l1_set.pop(victim_line >> l1_bits, None)
                        l2_set[l2_tag] = False
                    if len(l1_set) >= l1_ways:
                        del l1_set[next(iter(l1_set))]
                    l1_set[l1_tag] = is_store
                continue
            warm = True
            instructions = 0
            cycles_acc = 0.0

        line = int(addresses[i]) >> line_shift
        is_store = bool(stores[i])

        # ---- L1 D lookup ----
        l1_set = l1_sets[line & l1_mask]
        l1_tag = line >> l1_bits
        if l1_tag in l1_set:
            dirty = l1_set.pop(l1_tag)
            l1_set[l1_tag] = dirty or is_store
            l1d_hits += 1
            cycles_acc += store_issue if is_store else l1_hit_cycles
            continue

        # ---- L2 lookup ----
        l2_set = l2_sets[line & l2_mask]
        l2_tag = line >> l2_bits
        l2_hit = l2_tag in l2_set
        if l2_hit:
            l2_set[l2_tag] = l2_set.pop(l2_tag)
            l2_hits += 1
            cycles_acc += store_issue if is_store else l2_hit_cycles
        else:
            # ---- LLC miss: emit a fetch request ----
            llc_misses += 1
            cycles_acc += store_issue if is_store else miss_onchip_cycles
            append_gap(cycles_acc)
            append_blocking(not is_store)
            append_inst(instructions)
            cycles_acc = 0.0
            # Fill L2 (write-allocate); evict + back-invalidate as needed.
            if len(l2_set) >= l2_ways:
                victim_tag = next(iter(l2_set))
                victim_dirty = l2_set.pop(victim_tag)
                victim_line = (victim_tag << l2_bits) | (line & l2_mask)
                # Inclusive hierarchy: purge the victim from L1 D, merging
                # its dirtiness into the writeback decision.
                v_l1_set = l1_sets[victim_line & l1_mask]
                v_l1_tag = victim_line >> l1_bits
                if v_l1_tag in v_l1_set:
                    victim_dirty = v_l1_set.pop(v_l1_tag) or victim_dirty
                if victim_dirty:
                    writebacks += 1
                    append_gap(0.0)
                    append_blocking(False)
                    append_inst(instructions)
            l2_set[l2_tag] = False
            l2_refills += 1

        # ---- Fill L1 D ----
        if len(l1_set) >= l1_ways:
            victim_tag = next(iter(l1_set))
            victim_dirty = l1_set.pop(victim_tag)
            if victim_dirty:
                # Write the dirty line back into L2 (on-chip, no request).
                victim_line = (victim_tag << l1_bits) | (line & l1_mask)
                wb_l2_set = l2_sets[victim_line & l2_mask]
                wb_l2_tag = victim_line >> l2_bits
                if wb_l2_tag in wb_l2_set:
                    wb_l2_set[wb_l2_tag] = True
                # Inclusion guarantees presence; a miss here would mean the
                # line was back-invalidated in the same step, impossible for
                # the line we are about to replace.
        l1_set[l1_tag] = is_store
        l1d_refills += 1

    # ---- Energy bookkeeping ----
    n_instructions = instructions
    n_gap_instructions = n_instructions - n_refs
    implicit_l1_refs = int(n_gap_instructions * local_fraction)
    n_nonmem = n_gap_instructions - implicit_l1_refs
    energy.n_instructions = n_instructions
    energy.n_memory_refs = n_refs + implicit_l1_refs
    energy.alu_fpu_ops = n_nonmem
    fp_fraction = trace.mix.fp_fraction
    energy.regfile_fp_ops = int(n_nonmem * fp_fraction)
    energy.regfile_int_ops = n_nonmem - energy.regfile_fp_ops + energy.n_memory_refs
    # One 256-bit fetch-buffer access per 8 4-byte instructions.
    energy.fetch_buffer_accesses = n_instructions // 8
    # L1 I: Table 2's coefficient is per cache *line*, and one 64-byte line
    # feeds 16 four-byte MIPS instructions, so line fetches = instrs / 16.
    # Refills touch the hot footprint once per phase (a statistical model —
    # code footprints of these benchmarks are far below the 1 MB LLC, so
    # they do not contribute LLC misses).
    energy.l1i_hits = n_instructions // (config.line_bytes // 4)
    energy.l1i_refills = trace.n_phases * (
        trace.icache_footprint_bytes // config.line_bytes
    )
    energy.l1d_hits = l1d_hits + implicit_l1_refs
    energy.l1d_refills = l1d_refills
    energy.l2_hits = l2_hits + energy.l1i_refills  # I-refills hit in L2.
    energy.l2_refills = l2_refills
    energy.llc_misses = llc_misses
    energy.writebacks = writebacks

    return MissTrace(
        gap_cycles=np.asarray(out_gap_cycles, dtype=np.float64),
        is_blocking=np.asarray(out_blocking, dtype=bool),
        instruction_index=np.asarray(out_inst_index, dtype=np.int64),
        total_compute_cycles=cycles_acc,
        n_instructions=n_instructions,
        energy=energy,
        source_name=trace.name,
        source_input=trace.input_name,
    )
