"""End-to-end attack demonstrations (Figure 1(a), Sections 1.1, 3.2).

``run_p1_attack`` compiles a secret through the malicious program P1,
simulates it under a given memory scheme, hands the observable ORAM access
times to the adversary's decoder, and reports how many secret bits were
recovered.  Under ``base_oram`` the recovery is essentially perfect (T
bits in T time); under a static or slot-enforced scheme the timing trace
is input-independent and recovery collapses to chance.

``run_probe_attack`` drives the functional Path ORAM with interleaved
adversary polls of the root bucket, demonstrating the Section 3.2
measurement primitive the timing channel rests on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cache.hierarchy import simulate_hierarchy
from repro.cpu.core import DEFAULT_CORE
from repro.oram.path_oram import PathORAM
from repro.security.adversary import ProbeAdversary, TimingTraceObserver
from repro.sim.timing import run_timing
from repro.workloads.malicious import (
    WAIT_INSTRUCTIONS,
    build_p1_trace,
    decode_p1_timing,
)


@dataclass
class P1AttackResult:
    """Outcome of one malicious-program leak attempt."""

    scheme_name: str
    secret_bits: list[int]
    recovered_bits: list[int]
    observable_periodic: bool

    @property
    def n_bits(self) -> int:
        """Secret length."""
        return len(self.secret_bits)

    @property
    def recovered_fraction(self) -> float:
        """Fraction of secret bits the adversary got right."""
        correct = sum(
            1 for s, r in zip(self.secret_bits, self.recovered_bits) if s == r
        )
        return correct / max(1, self.n_bits)


def run_p1_attack(secret_bits: list[int], scheme, seed: int = 0) -> P1AttackResult:
    """Execute P1 on ``secret_bits`` under ``scheme`` and decode the timing.

    The adversary observes the *start* time of every real-or-dummy memory
    access (Section 4.2 capability (c)).  Against ``base_oram`` the
    inter-access gaps encode the secret directly; against a slot-enforced
    scheme the observable trace is the periodic slot lattice (dummies
    included) and carries nothing about the input.
    """
    from repro.workloads.malicious import TOUCH_INSTRUCTIONS

    trace = build_p1_trace(secret_bits, seed=seed)
    miss_trace = simulate_hierarchy(trace)
    result = run_timing(miss_trace, scheme, record_observable_trace=True)

    observer = TimingTraceObserver()
    for start in result.observable_access_times:
        observer.record(float(start))

    # The decoder models P1's compute arms in cycles.
    cpi = DEFAULT_CORE.nonmem_cpi(trace.mix)
    latency = getattr(scheme, "oram_latency", getattr(scheme, "latency", 0))
    recovered = decode_p1_timing(
        observer.access_times,
        wait_cycles=WAIT_INSTRUCTIONS * cpi,
        n_bits=len(secret_bits),
        access_latency=float(latency),
        touch_cycles=TOUCH_INSTRUCTIONS * cpi,
    )
    return P1AttackResult(
        scheme_name=scheme.name,
        secret_bits=list(secret_bits),
        recovered_bits=recovered,
        observable_periodic=observer.is_strictly_periodic(tolerance=1.0),
    )


@dataclass
class ProbeAttackResult:
    """Outcome of the Section 3.2 root-bucket probe demonstration."""

    accesses_made: int
    accesses_detected: int
    estimated_interval: float | None

    @property
    def detection_rate(self) -> float:
        """Detected / made (1.0 when polling outpaces accesses)."""
        if self.accesses_made == 0:
            return 0.0
        return self.accesses_detected / self.accesses_made


def run_probe_attack(
    oram: PathORAM,
    access_schedule: list[float],
    poll_interval: float,
) -> ProbeAttackResult:
    """Interleave ORAM accesses at given times with adversary polls.

    ``access_schedule`` lists the times at which the ORAM performs a
    (dummy) access; the adversary polls the root bucket every
    ``poll_interval``.  With polling at least as frequent as accesses,
    every access is detected — ciphertext freshness guarantees a change.
    """
    if poll_interval <= 0:
        raise ValueError(f"poll_interval must be positive, got {poll_interval}")
    adversary = ProbeAdversary(oram.memory, bucket_index=0)
    horizon = (max(access_schedule) if access_schedule else 0.0) + poll_interval
    poll_times = np.arange(0.0, horizon + poll_interval, poll_interval)

    detected = 0
    schedule = sorted(access_schedule)
    next_access = 0
    for poll_time in poll_times:
        while next_access < len(schedule) and schedule[next_access] <= poll_time:
            oram.dummy_access()
            next_access += 1
        if adversary.poll(float(poll_time)):
            detected += 1
    return ProbeAttackResult(
        accesses_made=len(schedule),
        accesses_detected=detected,
        estimated_interval=adversary.estimated_rate(),
    )
