"""The user-server-processor protocol (Sections 5, 8, 10).

Models the full interaction: session negotiation, shipping encrypted data,
the server supplying the program and leakage parameters, the processor
checking the parameters against the (optionally user-pinned) leakage limit
L, execution up to Tmax, and early-termination result return.  The
run-once property from :mod:`repro.security.session` plugs in so replays
fail after session termination.

Everything here is an executable model: parties are objects, messages are
method calls, and the observable timing trace is whatever the timing
simulator produced for the chosen scheme.  Tests drive honest runs and the
attacks of Sections 8/8.1 against it.
"""

from __future__ import annotations

import hashlib
import hmac as hmac_module
from dataclasses import dataclass, field

from repro.core.epochs import EpochSchedule
from repro.core.leakage import report_for_dynamic
from repro.core.rates import RateSet
from repro.security.session import (
    ProcessorIdentity,
    ProcessorKeyRegister,
    SealedBlob,
    SessionKeys,
    SessionTerminatedError,
    negotiate_session,
)


class LeakageLimitExceededError(RuntimeError):
    """Processor refused leakage parameters exceeding the user's limit L."""


class BindingError(RuntimeError):
    """HMAC binding check failed (wrong program or tampered parameters)."""


@dataclass(frozen=True)
class LeakageParameters:
    """The server-supplied parameters the processor must vet (Section 10).

    The epoch schedule E and the candidate rates R determine the leakage
    bound; the processor computes ``|E| * lg |R| (+ lg Tmax)`` and refuses
    to run if it exceeds the user's limit.
    """

    rates: RateSet
    schedule: EpochSchedule

    def timing_leakage_bits(self) -> float:
        """ORAM-timing leakage bound these parameters permit."""
        return report_for_dynamic(self.schedule, len(self.rates)).oram_timing_bits


@dataclass(frozen=True)
class UserSubmission:
    """What the user ships: sealed data, leakage limit, optional bindings."""

    sealed_data: SealedBlob
    leakage_limit_bits: float
    hmac_tag: bytes | None = None
    bound_program_hash: bytes | None = None


def program_hash(program_text: str) -> bytes:
    """Certified program hash used for HMAC binding (Section 10)."""
    return hashlib.sha256(program_text.encode()).digest()


def bind_submission(
    key: bytes,
    data: bytes,
    leakage_limit_bits: float,
    bound_program_hash: bytes | None = None,
) -> bytes:
    """HMAC binding of (program hash, data, L) under the session key."""
    mac = hmac_module.new(key, digestmod=hashlib.sha256)
    mac.update(data)
    mac.update(str(leakage_limit_bits).encode())
    if bound_program_hash is not None:
        mac.update(bound_program_hash)
    return mac.digest()


@dataclass
class ExecutionReceipt:
    """What the user gets back: sealed result plus the leakage accounting."""

    sealed_result: SealedBlob
    timing_leakage_bits: float
    termination_leakage_bits: float

    @property
    def total_leakage_bits(self) -> float:
        """Total bound for this execution."""
        return self.timing_leakage_bits + self.termination_leakage_bits


class SecureProcessorProtocol:
    """The processor's protocol engine (Section 5 steps 1-4).

    One instance per physical processor; sessions are serial.  ``run``
    is parameterized by a ``compute`` callable standing in for the actual
    program execution (tests pass simulator invocations or pure
    functions); the protocol layer is agnostic to it.
    """

    def __init__(self, identity: ProcessorIdentity | None = None) -> None:
        self.identity = identity or ProcessorIdentity()
        self._register: ProcessorKeyRegister | None = None
        self._session_keys: SessionKeys | None = None
        self.runs_this_session = 0

    # -- Step 1: session negotiation -----------------------------------

    def open_session(self) -> SessionKeys:
        """Negotiate a fresh session key K (Section 8 exchange)."""
        keys, register = negotiate_session(self.identity)
        self._register = register
        self._session_keys = keys
        self.runs_this_session = 0
        return keys

    def close_session(self) -> None:
        """Terminate the session: the processor forgets K (run-once)."""
        if self._register is not None:
            self._register.forget()
        self._session_keys = None

    # -- Step 2/3: data submission and execution ------------------------

    def seal_for_user(self, data: bytes) -> SealedBlob:
        """User-side helper: encrypt data under the session key."""
        register = self._require_register()
        return register.seal(data)

    def run(
        self,
        submission: UserSubmission,
        program_text: str,
        parameters: LeakageParameters,
        compute,
    ) -> ExecutionReceipt:
        """Vet parameters, decrypt, execute, and return the sealed result.

        Raises :class:`LeakageLimitExceededError` if the server-chosen
        (R, E) allow more timing leakage than the user's L, and
        :class:`BindingError` if the submission pinned a different program
        or the HMAC does not verify.
        """
        register = self._require_register()
        timing_bits = parameters.timing_leakage_bits()
        if timing_bits > submission.leakage_limit_bits:
            raise LeakageLimitExceededError(
                f"parameters allow {timing_bits:.0f} bits, limit is "
                f"{submission.leakage_limit_bits:.0f}"
            )
        data = register.unseal(submission.sealed_data)
        if submission.hmac_tag is not None:
            expected = bind_submission(
                self._session_keys.k,
                data,
                submission.leakage_limit_bits,
                submission.bound_program_hash,
            )
            if not hmac_module.compare_digest(expected, submission.hmac_tag):
                raise BindingError("submission HMAC failed verification")
            if submission.bound_program_hash is not None:
                if submission.bound_program_hash != program_hash(program_text):
                    raise BindingError(
                        "server supplied a program different from the one the "
                        "user certified"
                    )
        result = compute(data)
        self.runs_this_session += 1
        return ExecutionReceipt(
            sealed_result=register.seal(result),
            timing_leakage_bits=timing_bits,
            termination_leakage_bits=62.0,
        )

    def _require_register(self) -> ProcessorKeyRegister:
        if self._register is None or not self._register.holds_key:
            raise SessionTerminatedError("no open session")
        return self._register
