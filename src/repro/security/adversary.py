"""The probe adversary of Section 3.2.

An adversary sharing the DRAM DIMM can tell when a Path ORAM access
happened without any timing side channel on the bus: every access rewrites
a full tree path with probabilistic encryption, every path contains the
root bucket, and buckets sit at fixed addresses — so two reads of the root
bucket differ exactly when at least one access occurred in between.

``ProbeAdversary`` polls a :class:`~repro.oram.backend.UntrustedMemory`
root bucket via ``raw_read`` and reconstructs (a) the binary
access-happened signal per polling interval and (b) an estimate of the
access rate.  Paired with the malicious program P1 it recovers user
secrets through an unprotected controller; against a slot-enforced
controller it sees only the periodic cadence.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ProbeSample:
    """One poll of the root bucket: time and whether it changed."""

    time: float
    changed: bool


class ProbeAdversary:
    """Root-bucket polling adversary (software-only, shared-DIMM).

    Args:
        memory: The untrusted memory to probe (adversarial view).
        bucket_index: Which bucket to poll; the root (0) is on every path,
            so it flips on every access.
    """

    def __init__(self, memory, bucket_index: int = 0) -> None:
        self.memory = memory
        self.bucket_index = bucket_index
        self._last: bytes | None = None
        self.samples: list[ProbeSample] = []

    def poll(self, time: float) -> bool:
        """Read the probed bucket; return True if it changed since last poll."""
        current = self.memory.raw_read(self.bucket_index)
        changed = self._last is not None and current != self._last
        self._last = current
        self.samples.append(ProbeSample(time=time, changed=changed))
        return changed

    def observed_access_intervals(self) -> list[float]:
        """Times between consecutive change observations."""
        change_times = [s.time for s in self.samples if s.changed]
        return [b - a for a, b in zip(change_times, change_times[1:])]

    def estimated_rate(self) -> float | None:
        """Mean interval between observed accesses (None if < 2 events)."""
        intervals = self.observed_access_intervals()
        if not intervals:
            return None
        return sum(intervals) / len(intervals)


@dataclass
class TimingTraceObserver:
    """Idealized adversary that records exact ORAM access start times.

    Models the Section 4.2 capability "when each memory access is made"
    directly; used to feed the P1 decoder and to verify that protected
    schemes emit strictly periodic (input-independent) traces.
    """

    access_times: list[float] = field(default_factory=list)

    def record(self, start_time: float) -> None:
        """Log one observable ORAM access start."""
        self.access_times.append(start_time)

    def intervals(self) -> list[float]:
        """Inter-access intervals."""
        return [
            b - a for a, b in zip(self.access_times, self.access_times[1:])
        ]

    def is_strictly_periodic(self, tolerance: float = 1e-6) -> bool:
        """True if every interval matches the first (one distinct trace)."""
        intervals = self.intervals()
        if len(intervals) < 2:
            return True
        first = intervals[0]
        return all(abs(interval - first) <= tolerance for interval in intervals)

    def distinct_interval_count(self, tolerance: float = 1e-6) -> int:
        """Number of distinct interval values (coarse trace diversity)."""
        distinct: list[float] = []
        for interval in self.intervals():
            if not any(abs(interval - seen) <= tolerance for seen in distinct):
                distinct.append(interval)
        return len(distinct)


def observe_controller_slots(controller_cls, rate: int, latency: int, horizon: float):
    """Enumerate the slot start times a rate-enforcing controller emits.

    Pure arithmetic helper for tests: with rate ``r`` and latency ``OLAT``
    the k-th access starts at ``k*r + (k-1)*OLAT``.
    """
    times = []
    t = rate
    while t <= horizon:
        times.append(float(t))
        t += latency + rate
    return times
