"""Session-key management and the run-once property (Section 8).

The replay-attack fix: the secure processor holds the session key K in a
dedicated register and *forgets* it when the session ends.  Once K is
forgotten, ``encrypt_K(D)`` is computationally undecryptable by anyone but
the user, so the server cannot replay the user's data under fresh leakage
parameters to accumulate ``L`` bits per run.

This module simulates the key lifecycle and the hybrid key exchange of
Section 8 (user sends K' under the processor's public key; processor
replies with K encrypted under K').  The cryptography is simulated with
the same keystream cipher the ORAM uses — the protocol *logic* (who knows
what, when keys are forgotten) is what is being modeled and tested.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field

from repro.oram.encryption import ProbabilisticCipher


class SessionTerminatedError(RuntimeError):
    """Raised when using a session whose key has been forgotten."""


@dataclass
class SealedBlob:
    """Ciphertext tagged with the key fingerprint that sealed it."""

    ciphertext: bytes
    key_fingerprint: bytes


def _fingerprint(key: bytes) -> bytes:
    return hashlib.sha256(b"fp:" + key).digest()[:8]


class ProcessorKeyRegister:
    """The dedicated on-chip register holding the session key K.

    ``forget`` models the register reset at session termination; any later
    decryption attempt with blobs sealed under the forgotten key fails.
    """

    def __init__(self) -> None:
        self._key: bytes | None = None

    @property
    def holds_key(self) -> bool:
        """Whether a live session key is present."""
        return self._key is not None

    def install(self, key: bytes) -> None:
        """Install a fresh session key.

        The register holds at most one live key: installing over a live
        key is rejected so no code path can silently rotate K mid-session
        (which would break the run-once accounting — blobs sealed under
        the old K would look "forgotten" while the session is still
        open).  Call :meth:`forget` first to terminate the old session.
        """
        if not key:
            raise ValueError("key must be non-empty")
        if self._key is not None:
            raise SessionTerminatedError(
                "register already holds a live session key; forget() it before "
                "installing a new one"
            )
        self._key = bytes(key)

    def forget(self) -> None:
        """Reset the register (session termination)."""
        self._key = None

    def seal(self, plaintext: bytes) -> SealedBlob:
        """Encrypt under the live session key."""
        key = self._require()
        cipher = ProbabilisticCipher(key)
        return SealedBlob(cipher.encrypt(plaintext), _fingerprint(key))

    def unseal(self, blob: SealedBlob) -> bytes:
        """Decrypt a blob sealed under the live session key."""
        key = self._require()
        if blob.key_fingerprint != _fingerprint(key):
            raise SessionTerminatedError(
                "blob was sealed under a different (likely forgotten) session key"
            )
        return ProbabilisticCipher(key).decrypt(blob.ciphertext)

    def _require(self) -> bytes:
        if self._key is None:
            raise SessionTerminatedError("no live session key (register was reset)")
        return self._key


@dataclass
class SessionKeys:
    """The user-side view of the Section 8 key exchange."""

    k_prime: bytes
    k: bytes


def negotiate_session(processor: "ProcessorIdentity") -> tuple[SessionKeys, ProcessorKeyRegister]:
    """Run the Section 8 exchange; returns the user's keys and the register.

    1. The user generates random K', encrypts it under the processor's
       public key, and sends it.
    2. The processor decrypts K', generates random K (same length), sends
       ``encrypt_K'(K)`` back, and stores K in its dedicated register.
    """
    k_prime = os.urandom(16)
    to_processor = processor.public_encrypt(k_prime)
    register = ProcessorKeyRegister()
    k_encrypted = processor.accept_session(to_processor, register)
    k = ProbabilisticCipher(k_prime).decrypt(k_encrypted)
    return SessionKeys(k_prime=k_prime, k=k), register


class ProcessorIdentity:
    """The processor's long-lived keypair (simulated asymmetric crypto).

    ``public_encrypt`` stands in for RSA/ECC encryption to the processor:
    it uses a keystream derived from the processor secret, so only a party
    holding ``_secret`` can invert it — capturing the trust relationship
    without implementing real public-key math.
    """

    def __init__(self, seed: bytes | None = None) -> None:
        self._secret = seed if seed is not None else os.urandom(16)

    def public_encrypt(self, plaintext: bytes) -> bytes:
        """Encrypt so only this processor can decrypt."""
        return ProbabilisticCipher(self._secret).encrypt(plaintext)

    def _private_decrypt(self, ciphertext: bytes) -> bytes:
        return ProbabilisticCipher(self._secret).decrypt(ciphertext)

    def accept_session(self, encrypted_k_prime: bytes, register: ProcessorKeyRegister) -> bytes:
        """Processor side of the exchange: install K, return encrypt_K'(K)."""
        k_prime = self._private_decrypt(encrypted_k_prime)
        k = os.urandom(len(k_prime))
        register.install(k)
        return ProbabilisticCipher(k_prime).encrypt(k)
