"""Replay attacks and their prevention (Sections 4.3, 8, 8.1).

Two executable demonstrations:

* ``ReplayAttackSimulation`` — an L-bit-per-run scheme *without* run-once
  protection lets a server accumulate ``N * L`` bits over N replays with
  varied leakage parameters; with the forgotten-session-key scheme the
  second run fails to decrypt and accumulation stops at L.

* ``DeterministicReplayDefense`` — the *broken* scheme of Section 8.1:
  binding (program, data, E, R) with an HMAC and relying on deterministic
  re-execution to produce identical traces.  The model injects
  main-memory latency jitter (bus contention / DoS, which the server
  controls), showing the learner can pick different rates across "replays
  of the same tuple", so traces differ and the replay yields fresh bits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.counters import PerfCounters
from repro.core.leakage import replayed_leakage_bits
from repro.core.learner import AveragingLearner
from repro.core.rates import RateSet
from repro.security.session import (
    ProcessorIdentity,
    SessionTerminatedError,
)
from repro.security.protocol import SecureProcessorProtocol, UserSubmission
from repro.util.rng import make_rng


@dataclass
class ReplayOutcome:
    """Result of a server replay campaign."""

    runs_completed: int
    per_run_bits: float
    protected: bool

    @property
    def total_bits_learned(self) -> float:
        """Leakage accumulated across completed runs."""
        if self.runs_completed == 0:
            return 0.0
        return replayed_leakage_bits(self.per_run_bits, self.runs_completed)


def replay_campaign(
    per_run_bits: float,
    attempts: int,
    run_once_protection: bool,
) -> ReplayOutcome:
    """Account a replay campaign's leakage with/without run-once.

    With protection, only the first run's decryption succeeds; without it,
    every attempt extracts another ``per_run_bits``.
    """
    if attempts <= 0:
        raise ValueError(f"attempts must be positive, got {attempts}")
    runs = 1 if run_once_protection else attempts
    return ReplayOutcome(
        runs_completed=runs,
        per_run_bits=per_run_bits,
        protected=run_once_protection,
    )


def demonstrate_run_once(protocol: SecureProcessorProtocol, data: bytes) -> tuple[bytes, bool]:
    """Exercise the session lifecycle: run once, close, attempt a replay.

    Returns ``(first_result, replay_succeeded)``; with a correct
    implementation the replay always fails.
    """
    protocol.open_session()
    sealed = protocol.seal_for_user(data)

    def echo(payload: bytes) -> bytes:
        return payload

    from repro.core.epochs import sim_schedule
    from repro.core.rates import lg_spaced_rates
    from repro.security.protocol import LeakageParameters

    parameters = LeakageParameters(
        rates=lg_spaced_rates(4), schedule=sim_schedule(growth=4)
    )
    submission = UserSubmission(sealed_data=sealed, leakage_limit_bits=128.0)
    receipt = protocol.run(submission, "echo", parameters, echo)
    protocol.close_session()

    replay_succeeded = True
    try:
        protocol.run(submission, "echo", parameters, echo)
    except SessionTerminatedError:
        replay_succeeded = False
    return receipt.sealed_result.ciphertext, replay_succeeded


# ----------------------------------------------------------------------
# The broken deterministic-replay defense (Section 8.1)
# ----------------------------------------------------------------------

@dataclass
class DeterministicReplayDefense:
    """Model of the broken HMAC-bound deterministic-execution defense.

    The defense assumes that re-running a bound (P, D, E, R) tuple always
    produces the identical timing trace.  That assumption fails because
    main-memory latency is not deterministic: bus contention from honest
    co-tenants (or a deliberate slow-down by the adversary) perturbs
    IPC, which perturbs the per-epoch counters, which can flip the
    learner's rate choice.  ``run`` returns the rate schedule one
    execution produces under a given memory-jitter seed.
    """

    rates: RateSet
    epoch_cycles: float = 100_000.0
    n_epochs: int = 6
    base_gap_cycles: float = 900.0
    accesses_per_epoch: int = 60
    oram_latency: int = 1488

    def run(self, jitter_seed: int, jitter_fraction: float = 0.25) -> list[int]:
        """One 'deterministic' execution under memory-latency jitter.

        The per-epoch offered gap is perturbed multiplicatively by up to
        ``jitter_fraction`` (contention slows the pipeline between
        requests); the learner sees the perturbed counters.
        """
        rng = make_rng(jitter_seed, "replay-jitter")
        learner = AveragingLearner(self.rates, log_discretize=True)
        chosen: list[int] = []
        for _ in range(self.n_epochs):
            jitter = 1.0 + jitter_fraction * (2.0 * rng.random() - 1.0)
            gap = self.base_gap_cycles * jitter
            counters = PerfCounters()
            for _ in range(self.accesses_per_epoch):
                counters.record_real_access(self.oram_latency)
            # Idle cycles implied by the (jittered) gap, as Eq. 1 sees them.
            idle = gap * self.accesses_per_epoch
            busy = self.oram_latency * self.accesses_per_epoch
            epoch_cycles = idle + busy
            decision = learner.decide(counters, epoch_cycles)
            chosen.append(decision.chosen_rate)
        return chosen

    def traces_differ(self, seeds: tuple[int, int] = (1, 2), jitter_fraction: float = 0.25) -> bool:
        """Whether two replays of the bound tuple yield different schedules."""
        return self.run(seeds[0], jitter_fraction) != self.run(seeds[1], jitter_fraction)
