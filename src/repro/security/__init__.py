"""Security machinery: protocols, sessions, adversaries, attack demos."""

from repro.security.adversary import (
    ProbeAdversary,
    ProbeSample,
    TimingTraceObserver,
)
from repro.security.attacks import (
    P1AttackResult,
    ProbeAttackResult,
    run_p1_attack,
    run_probe_attack,
)
from repro.security.protocol import (
    BindingError,
    ExecutionReceipt,
    LeakageLimitExceededError,
    LeakageParameters,
    SecureProcessorProtocol,
    UserSubmission,
    bind_submission,
    program_hash,
)
from repro.security.replay import (
    DeterministicReplayDefense,
    ReplayOutcome,
    demonstrate_run_once,
    replay_campaign,
)
from repro.security.session import (
    ProcessorIdentity,
    ProcessorKeyRegister,
    SealedBlob,
    SessionKeys,
    SessionTerminatedError,
    negotiate_session,
)

__all__ = [
    "ProbeAdversary",
    "ProbeSample",
    "TimingTraceObserver",
    "P1AttackResult",
    "ProbeAttackResult",
    "run_p1_attack",
    "run_probe_attack",
    "BindingError",
    "ExecutionReceipt",
    "LeakageLimitExceededError",
    "LeakageParameters",
    "SecureProcessorProtocol",
    "UserSubmission",
    "bind_submission",
    "program_hash",
    "DeterministicReplayDefense",
    "ReplayOutcome",
    "demonstrate_run_once",
    "replay_campaign",
    "ProcessorIdentity",
    "ProcessorKeyRegister",
    "SealedBlob",
    "SessionKeys",
    "SessionTerminatedError",
    "negotiate_session",
]
