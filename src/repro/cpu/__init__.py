"""In-order core model: ISA latencies, CPI, and trace containers."""

from repro.cpu.core import CoreModel, DEFAULT_CORE
from repro.cpu.isa import (
    CacheLatencies,
    DEFAULT_CACHE_LATENCIES,
    DEFAULT_LATENCIES,
    DEFAULT_MIX,
    InstructionLatencies,
    InstructionMix,
)
from repro.cpu.trace import EnergyEvents, MemoryTrace, MissTrace

__all__ = [
    "CoreModel",
    "DEFAULT_CORE",
    "CacheLatencies",
    "DEFAULT_CACHE_LATENCIES",
    "DEFAULT_LATENCIES",
    "DEFAULT_MIX",
    "InstructionLatencies",
    "InstructionMix",
    "EnergyEvents",
    "MemoryTrace",
    "MissTrace",
]
