"""In-order core CPI model.

The core is single-issue and in-order (Table 1), so its timing between LLC
misses is fully determined by the instruction stream and cache hit
latencies — this is what lets the functional pass precompute compute-cycle
gaps that every timing configuration then replays.  The only concurrency
in the machine is the 8-entry non-blocking write buffer, which the timing
simulator models explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.isa import (
    CacheLatencies,
    DEFAULT_CACHE_LATENCIES,
    DEFAULT_LATENCIES,
    InstructionLatencies,
    InstructionMix,
)


@dataclass(frozen=True)
class CoreModel:
    """Derived per-event cycle costs for one core configuration."""

    latencies: InstructionLatencies = DEFAULT_LATENCIES
    cache_latencies: CacheLatencies = DEFAULT_CACHE_LATENCIES
    #: Issue cost of a store into the write buffer (it drains off the
    #: critical path unless the buffer is full).
    store_issue_cycles: int = 1

    def nonmem_cpi(self, mix: InstructionMix) -> float:
        """Average cycles per non-memory instruction for ``mix``."""
        return mix.base_cpi(self.latencies)

    def load_hit_cycles(self, level: int) -> int:
        """Cycles for a load that hits at cache ``level`` (1 or 2)."""
        if level == 1:
            return self.cache_latencies.load_l1_hit
        if level == 2:
            return self.cache_latencies.load_l2_hit
        raise ValueError(f"level must be 1 or 2, got {level}")

    def load_miss_onchip_cycles(self) -> int:
        """On-chip cycles for a load missing all caches (memory time excluded)."""
        return self.cache_latencies.load_llc_miss_onchip

    def ideal_ipc(self, mix: InstructionMix, memory_fraction: float) -> float:
        """IPC with a perfect memory system (every access an L1 hit).

        Useful for sanity checks: the paper's base_dram IPCs land between
        0.15 and 0.36 for SPEC-like mixes once realistic miss rates apply.
        """
        if not 0.0 <= memory_fraction < 1.0:
            raise ValueError(f"memory_fraction must be in [0,1), got {memory_fraction}")
        cpi = (
            (1.0 - memory_fraction) * self.nonmem_cpi(mix)
            + memory_fraction * self.cache_latencies.load_l1_hit
        )
        return 1.0 / cpi


#: Shared default core model (Table 1 parameters).
DEFAULT_CORE = CoreModel()
