"""Instruction classes and latencies for the in-order core (Table 1).

The paper models an in-order, single-issue MIPS core: 1/4/12 pipeline
stages per integer arith/mult/div instruction, 2/4/10 for floating point,
L1 I hit+miss latency 1+0, L1 D 2+1, L2 10+4.  We treat "pipeline stages
per instruction" as the per-instruction issue cost of a single-issue
machine, which is how SESC's simple core model behaves.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass(frozen=True)
class InstructionLatencies:
    """Issue cost (cycles) per instruction class."""

    int_arith: int = 1
    int_mult: int = 4
    int_div: int = 12
    fp_arith: int = 2
    fp_mult: int = 4
    fp_div: int = 10
    branch: int = 1
    #: Issue cost of a load/store; the cache-hit latency is added separately.
    memory_issue: int = 1


@dataclass(frozen=True)
class CacheLatencies:
    """Hit and miss-detection latencies per cache level (Table 1)."""

    l1i_hit: int = 1
    l1i_miss_penalty: int = 0
    l1d_hit: int = 2
    l1d_miss_penalty: int = 1
    l2_hit: int = 10
    l2_miss_penalty: int = 4

    @property
    def load_l1_hit(self) -> int:
        """Total latency of a load that hits L1 D."""
        return self.l1d_hit

    @property
    def load_l2_hit(self) -> int:
        """Total latency of a load that misses L1 D and hits L2."""
        return self.l1d_hit + self.l1d_miss_penalty + self.l2_hit

    @property
    def load_llc_miss_onchip(self) -> int:
        """On-chip portion of a load that misses everywhere.

        The off-chip (DRAM/ORAM) service time is added by the timing
        simulator; this is just the lookup/miss-detection pipeline cost.
        """
        return (
            self.l1d_hit
            + self.l1d_miss_penalty
            + self.l2_hit
            + self.l2_miss_penalty
        )


@dataclass(frozen=True)
class InstructionMix:
    """Fractional instruction mix of the *non-memory* instructions.

    Memory operations are described separately by the workload trace; the
    mix determines the core's base CPI between memory references and the
    ALU/FPU/register-file energy per instruction.
    """

    int_arith: float = 0.70
    int_mult: float = 0.05
    int_div: float = 0.01
    fp_arith: float = 0.04
    fp_mult: float = 0.03
    fp_div: float = 0.01
    branch: float = 0.16

    def __post_init__(self) -> None:
        total = sum(getattr(self, field.name) for field in fields(self))
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"instruction mix must sum to 1.0, got {total}")

    @property
    def fp_fraction(self) -> float:
        """Fraction of non-memory instructions that are floating point."""
        return self.fp_arith + self.fp_mult + self.fp_div

    def base_cpi(self, latencies: InstructionLatencies | None = None) -> float:
        """Average cycles per non-memory instruction under this mix."""
        if latencies is None:
            latencies = InstructionLatencies()
        return (
            self.int_arith * latencies.int_arith
            + self.int_mult * latencies.int_mult
            + self.int_div * latencies.int_div
            + self.fp_arith * latencies.fp_arith
            + self.fp_mult * latencies.fp_mult
            + self.fp_div * latencies.fp_div
            + self.branch * latencies.branch
        )


#: Default latencies used everywhere (Table 1 values).
DEFAULT_LATENCIES = InstructionLatencies()
DEFAULT_CACHE_LATENCIES = CacheLatencies()
#: A generic SPEC-int-flavored mix (mostly integer with light FP).
DEFAULT_MIX = InstructionMix()
