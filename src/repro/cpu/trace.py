"""Trace containers exchanged between workloads, caches, and the simulator.

``MemoryTrace`` is what a workload generator produces: the sequence of data
memory references (byte address, load/store) with the number of non-memory
instructions executed between consecutive references, plus the instruction
mix that determines CPI and energy.  ``MissTrace`` is what the functional
cache hierarchy reduces it to: the sequence of LLC-level memory requests
with the compute-cycle gaps between them — the only thing the event-driven
timing simulator needs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.cpu.isa import DEFAULT_MIX, InstructionMix


@dataclass
class MemoryTrace:
    """Data-reference trace of one benchmark run.

    Attributes:
        name: Benchmark name (e.g. ``"mcf"``).
        input_name: Workload input label (e.g. ``"rivers"``), for
            multi-input benchmarks like Figure 2's perlbench/astar.
        addresses: Byte address of each data reference (uint64).
        is_store: True where the reference is a store.
        gap_instructions: Non-memory instructions retired since the
            previous reference (int32, first entry counts from t=0).
        mix: Non-memory instruction mix for CPI/energy.
        local_ref_fraction: Fraction of *gap* instructions that are
            stack/local memory references guaranteed to hit L1 D.  These
            are folded into the CPI and L1 energy statistically instead of
            being emitted individually, which keeps traces ~5-10x smaller
            without changing LLC behaviour (they can never reach the LLC).
        icache_footprint_bytes: Approximate hot code footprint; used to
            model L1 I refill energy at phase transitions.
        n_phases: Number of program phases (each phase re-touches the
            instruction footprint once).
    """

    name: str
    input_name: str
    addresses: np.ndarray
    is_store: np.ndarray
    gap_instructions: np.ndarray
    mix: InstructionMix = field(default_factory=lambda: DEFAULT_MIX)
    local_ref_fraction: float = 0.20
    icache_footprint_bytes: int = 64 * 1024
    n_phases: int = 1

    def __post_init__(self) -> None:
        # Canonical array backing: the vectorized kernels index these with
        # array ops and rely on fixed dtypes/contiguity, so coerce once at
        # construction instead of per consumer.  No-op (no copy) when the
        # arrays already match.
        self.addresses = np.ascontiguousarray(self.addresses, dtype=np.uint64)
        self.is_store = np.ascontiguousarray(self.is_store, dtype=bool)
        self.gap_instructions = np.ascontiguousarray(
            self.gap_instructions, dtype=np.int64
        )
        n = len(self.addresses)
        if len(self.is_store) != n or len(self.gap_instructions) != n:
            raise ValueError(
                "addresses, is_store, gap_instructions must have equal length "
                f"(got {n}, {len(self.is_store)}, {len(self.gap_instructions)})"
            )

    @property
    def n_references(self) -> int:
        """Number of data memory references."""
        return len(self.addresses)

    @property
    def n_instructions(self) -> int:
        """Total instructions: memory references plus the gaps between them."""
        return int(self.gap_instructions.sum()) + self.n_references

    def content_digest(self) -> str:
        """Stable hex digest of the full trace content.

        Hashes the reference arrays and every behavioural parameter, so two
        traces that merely share a name and length hash differently.  Used
        as the cache key for externally built traces (the old
        ``(name, input, n_references)`` key conflated distinct traces).
        """
        # __post_init__ is the single canonicalization point (contiguous
        # uint64/bool/int64), so the arrays hash as-is.
        hasher = hashlib.sha256()
        hasher.update(self.addresses.tobytes())
        hasher.update(self.is_store.tobytes())
        hasher.update(self.gap_instructions.tobytes())
        hasher.update(
            repr((
                self.name,
                self.input_name,
                self.mix,
                self.local_ref_fraction,
                self.icache_footprint_bytes,
                self.n_phases,
            )).encode()
        )
        return hasher.hexdigest()

    def describe(self) -> str:
        """One-line trace summary."""
        refs = self.n_references
        instrs = self.n_instructions
        mem_fraction = refs / max(1, instrs)
        return (
            f"{self.name}/{self.input_name}: {instrs} instructions, "
            f"{refs} refs ({mem_fraction:.1%} memory)"
        )


@dataclass
class MissTrace:
    """LLC-level request stream distilled from a :class:`MemoryTrace`.

    Attributes:
        gap_cycles: Compute cycles (instruction issue + cache hit
            latencies) between the completion of the previous request and
            the issue of this one (float64).
        is_blocking: True where the core must stall for the response (load
            misses); False for store-miss fills and dirty writebacks, which
            drain through the non-blocking write buffer.
        instruction_index: Cumulative retired-instruction count at each
            request issue (int64) — used for IPC windows and Figure 2.
        total_compute_cycles: Compute cycles after the last request (tail).
        n_instructions: Total instructions in the run.
        energy: Event counts for the power model.
        source: The originating memory trace (for labels).
    """

    gap_cycles: np.ndarray
    is_blocking: np.ndarray
    instruction_index: np.ndarray
    total_compute_cycles: float
    n_instructions: int
    energy: "EnergyEvents"
    source_name: str = ""
    source_input: str = ""

    def __post_init__(self) -> None:
        # Canonical array backing, mirroring MemoryTrace: downstream
        # kernels and byte-equivalence checks rely on these exact dtypes.
        self.gap_cycles = np.ascontiguousarray(self.gap_cycles, dtype=np.float64)
        self.is_blocking = np.ascontiguousarray(self.is_blocking, dtype=bool)
        self.instruction_index = np.ascontiguousarray(
            self.instruction_index, dtype=np.int64
        )

    def checksum(self) -> str:
        """Hex digest over every field of the trace.

        Byte-exact: two MissTraces agree on this checksum iff their
        request arrays are bit-identical and their scalar accounting is
        equal — the equivalence contract between the scalar reference
        pass and the vectorized kernel, as verified by ``repro perf``.
        """
        hasher = hashlib.sha256()
        hasher.update(self.gap_cycles.tobytes())
        hasher.update(self.is_blocking.tobytes())
        hasher.update(self.instruction_index.tobytes())
        hasher.update(repr((
            self.total_compute_cycles,
            self.n_instructions,
            self.energy,
            self.source_name,
            self.source_input,
        )).encode())
        return hasher.hexdigest()

    @property
    def n_requests(self) -> int:
        """Number of LLC-level memory requests (misses + writebacks)."""
        return len(self.gap_cycles)

    @property
    def n_blocking(self) -> int:
        """Number of blocking (load-miss) requests."""
        return int(self.is_blocking.sum())

    def mean_instructions_per_request(self) -> float:
        """Average instructions between LLC requests (cf. Figure 2's y-axis)."""
        if self.n_requests == 0:
            return float(self.n_instructions)
        return self.n_instructions / self.n_requests


@dataclass
class EnergyEvents:
    """Counts of energy-bearing microarchitectural events (Table 2 rows)."""

    n_instructions: int = 0
    n_memory_refs: int = 0
    alu_fpu_ops: int = 0
    regfile_int_ops: int = 0
    regfile_fp_ops: int = 0
    fetch_buffer_accesses: int = 0
    l1i_hits: int = 0
    l1i_refills: int = 0
    l1d_hits: int = 0
    l1d_refills: int = 0
    l2_hits: int = 0
    l2_refills: int = 0
    llc_misses: int = 0
    writebacks: int = 0
