"""Scripted chaos scenarios: end-to-end fault drills with pass/fail checks.

Each scenario builds a tiny real sweep, injects one class of fault
through :mod:`repro.faults.plan`, and verifies the recovery contract the
repository promises: **fault-injected runs produce byte-identical
ResultSet digests to fault-free runs**, recovery counters move, and no
layer crashes.  ``repro faults --scenario worker-crash`` runs them from
the shell; CI runs the same entry points as its chaos step.

Scenarios (see ``docs/operations.md`` "Failure modes and recovery"):

- ``worker-crash``     kill a pool worker mid-batch; pool rebuilds and
  retries the lost cells.
- ``corrupt-artifact`` rot every cached trace/result on disk; the cache
  quarantines and the engine recomputes.
- ``torn-write``       tear a result write in flight (crash between
  write and fsync); the next run quarantines the stub.
- ``daemon-restart``   journal queued jobs, "crash", resume into a new
  daemon with dedup intact.
- ``client-retry``     refuse the client's first connects; retries with
  backoff land, and a truly dead address raises ``ServiceUnavailable``.
- ``corrupt-import``   tear a trace import mid-write; the read path
  quarantines the torn entry and a re-import heals it digest-identical.
"""

from __future__ import annotations

import asyncio
import socket
import tempfile
from pathlib import Path

from repro.faults import counters
from repro.faults.plan import FaultPlan, FaultSpec

#: Sweep shape shared by every scenario: 4 cells, 2 functional passes,
#: small enough that the full suite runs in seconds.
_BENCHMARKS = ("mcf", "libquantum")
_SCHEMES = ("base_dram", "static:300")
_N_INSTRUCTIONS = 20_000


def _chaos_spec(name: str = "chaos", seeds: tuple[int, ...] = (0,)):
    from repro.api.spec import ExperimentSpec

    return ExperimentSpec(
        name=name, benchmarks=_BENCHMARKS, schemes=_SCHEMES, seeds=seeds,
        n_instructions=_N_INSTRUCTIONS,
    )


def _check(checks: list, label: str, ok: bool, detail: str = "") -> None:
    checks.append({"check": label, "ok": bool(ok), "detail": detail})


def _report(name: str, checks: list) -> dict:
    return {"scenario": name, "ok": all(c["ok"] for c in checks), "checks": checks}


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------

def scenario_worker_crash(workdir: Path) -> dict:
    """Kill a pool worker at its first cell; the sweep must still match
    the serial fault-free digest with zero poisoned cells."""
    from repro.api.backends import ProcessPoolBackend, SerialBackend
    from repro.api.engine import Engine

    spec = _chaos_spec()
    baseline = Engine(backend=SerialBackend()).run(spec)
    kill = FaultSpec(kind="kill", site="worker-cell", at=1)
    plan = FaultPlan(faults=(kill,), token_dir=str(workdir / "tokens-worker"))
    before = counters.snapshot()
    with plan.activated():
        chaotic = Engine(backend=ProcessPoolBackend(max_workers=2)).run(spec)
    delta = counters.delta(before)

    checks: list = []
    _check(checks, "digest matches fault-free run",
           chaotic.digest() == baseline.digest())
    _check(checks, "worker retries recorded",
           delta.get("worker_retries", 0) >= 1, f"delta={delta}")
    _check(checks, "pool was rebuilt", delta.get("pool_rebuilds", 0) >= 1)
    # The kill fires (and counts) inside the dying worker, so the
    # parent's counters never see it — the claimed token is the
    # cross-process evidence.
    _check(checks, "fault actually fired", plan.fired_count(kill) >= 1)
    _check(checks, "no cells poisoned", "cells_poisoned" not in chaotic.meta,
           f"meta={chaotic.meta}")
    return _report("worker-crash", checks)


def scenario_corrupt_artifact(workdir: Path) -> dict:
    """Rot every cached artifact on disk; the second run must
    quarantine all of them and still reproduce the digest."""
    from repro.api.cache import ExperimentCache
    from repro.api.engine import Engine
    from repro.api.execution import reset_local_sims

    root = workdir / "cache-corrupt"
    baseline = Engine(cache=ExperimentCache(root)).run(spec := _chaos_spec())

    cache = ExperimentCache(root)
    results = sorted(cache.results.root.glob("*.json"))
    traces = sorted(cache.traces.root.glob("*.pkl"))
    for path in results:
        path.write_text('{"benchmark": "mcf", "truncated')
    for path in traces:
        path.write_bytes(path.read_bytes()[:16])

    reset_local_sims()  # force disk reads: no warm in-process traces
    before = counters.snapshot()
    second = Engine(cache=ExperimentCache(root)).run(spec)
    delta = counters.delta(before)
    quarantined = (
        list((cache.results.root / "quarantine").glob("*"))
        + list((cache.traces.root / "quarantine").glob("*"))
    )

    checks: list = []
    _check(checks, "digest matches fault-free run",
           second.digest() == baseline.digest())
    _check(checks, "every rotten artifact quarantined",
           delta.get("artifacts_quarantined", 0) >= len(results) + len(traces),
           f"delta={delta}, corrupted={len(results) + len(traces)}")
    _check(checks, "quarantine evidence preserved on disk",
           len(quarantined) >= len(results) + len(traces))
    _check(checks, "all cells recomputed (no hits from rot)",
           second.meta["cache_hits"] == 0, f"meta={second.meta}")
    return _report("corrupt-artifact", checks)


def scenario_torn_write(workdir: Path) -> dict:
    """Tear one result write mid-flight; the next run must quarantine
    the stub, recompute exactly that cell, and match the digest."""
    from repro.api.cache import ExperimentCache
    from repro.api.engine import Engine
    from repro.api.execution import reset_local_sims

    root = workdir / "cache-torn"
    spec = _chaos_spec()
    plan = FaultPlan(
        faults=(FaultSpec(kind="corrupt", site="cache-write-result", at=1),),
        token_dir=str(workdir / "tokens-torn"),
    )
    with plan.activated():
        first = Engine(cache=ExperimentCache(root)).run(spec)

    reset_local_sims()
    before = counters.snapshot()
    second = Engine(cache=ExperimentCache(root)).run(spec)
    delta = counters.delta(before)

    checks: list = []
    _check(checks, "digest matches fault-free run",
           second.digest() == first.digest())
    _check(checks, "torn stub quarantined",
           delta.get("artifacts_quarantined", 0) >= 1, f"delta={delta}")
    _check(checks, "exactly the torn cell recomputed",
           second.meta["cells_run"] == 1
           and second.meta["cache_hits"] == spec.n_cells - 1,
           f"meta={second.meta}")
    return _report("torn-write", checks)


def scenario_daemon_restart(workdir: Path) -> dict:
    """Simulate a daemon crash with journaled-but-unfinished jobs, then
    resume into a fresh daemon: interrupted jobs re-run, duplicates
    collapse, finished jobs stay finished."""
    from repro.api.cache import ExperimentCache
    from repro.service.daemon import SweepService
    from repro.service.jobs import spec_digest
    from repro.service.journal import JobJournal

    root = workdir / "cache-daemon"
    root.mkdir(parents=True, exist_ok=True)

    # Phase 1: a "crashed" daemon's journal — two interrupted
    # submissions of one spec, one job that already finished, and a
    # torn trailing line (crash mid-append).
    journal = JobJournal.for_cache_root(root)
    pending = _chaos_spec(name="resume-me")
    finished = _chaos_spec(name="already-done", seeds=(1,))
    journal.record_submitted("j-000001", pending.to_dict(), spec_digest(pending))
    journal.record_submitted("j-000002", pending.to_dict(), spec_digest(pending))
    journal.record_submitted("j-000003", finished.to_dict(), spec_digest(finished))
    journal.record_state("j-000003", "done")
    with open(journal.path, "a", encoding="utf-8") as handle:
        handle.write('{"op": "submit", "job_id": "j-0000')  # torn append

    before = counters.snapshot()

    async def _restart() -> tuple[list, dict]:
        service = SweepService(cache=ExperimentCache(root), max_concurrency=1)
        resumed = await service.resume()
        await service.drain()
        snap = service.metrics_snapshot()
        states = [job.state for job in resumed]
        await service.shutdown()
        return states, snap

    states, snap = asyncio.run(_restart())
    delta = counters.delta(before)

    checks: list = []
    _check(checks, "exactly one interrupted job resumed",
           len(states) == 1 and snap["jobs_resumed"] == 1,
           f"states={states}, jobs_resumed={snap['jobs_resumed']}")
    _check(checks, "resumed job ran to done", states == ["done"])
    _check(checks, "duplicate interrupted submission deduplicated",
           snap["jobs_deduplicated"] == 1)
    _check(checks, "finished job not re-run", snap["jobs_submitted"] == 2)
    _check(checks, "torn journal line skipped, not fatal",
           delta.get("journal_lines_skipped", 0) >= 1, f"delta={delta}")
    return _report("daemon-restart", checks)


def scenario_client_retry(workdir: Path) -> dict:
    """Refuse the client's first two connects (daemon mid-restart); the
    third lands.  A truly dead address raises ``ServiceUnavailable``."""
    from repro.service.client import ServiceClient, ServiceUnavailable
    from repro.service.hosting import ThreadedService

    checks: list = []
    plan = FaultPlan(
        faults=(FaultSpec(kind="refuse", site="client-connect", at=1, count=2),),
        token_dir=str(workdir / "tokens-client"),
    )
    with ThreadedService(cache=workdir / "cache-client") as hosted:
        client = hosted.client()
        client.retry_backoff_s = 0.01
        before = counters.snapshot()
        with plan.activated():
            health = client.healthz()
        delta = counters.delta(before)
        _check(checks, "request survived two refused connects",
               bool(health), f"health={health}")
        _check(checks, "both retries counted",
               delta.get("client_retries", 0) == 2, f"delta={delta}")

    # A port nothing listens on: bind-then-close guarantees it was free.
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    dead_port = probe.getsockname()[1]
    probe.close()
    dead = ServiceClient(("tcp", "127.0.0.1", dead_port),
                         timeout=1.0, connect_retries=1, retry_backoff_s=0.01)
    try:
        dead.healthz()
        _check(checks, "dead address raises ServiceUnavailable", False,
               "healthz unexpectedly succeeded")
    except ServiceUnavailable as error:
        _check(checks, "dead address raises ServiceUnavailable",
               error.attempts == 2, f"attempts={error.attempts}")
    return _report("client-retry", checks)


def scenario_corrupt_import(workdir: Path) -> dict:
    """Tear a trace import mid-write; the torn entry must land under its
    true digest, quarantine on read, and re-import digest-identical."""
    from repro.ingest.store import IngestStore
    from repro.ingest.formats import write_text_trace
    from repro.workloads.registry import build_trace

    trace = build_trace(_BENCHMARKS[0], seed=0, n_instructions=_N_INSTRUCTIONS)
    source = workdir / "import-me.trace"
    write_text_trace(trace, source)
    expected = trace.content_digest()

    baseline_store = IngestStore(workdir / "ingest-baseline")
    baseline_digest = baseline_store.import_trace(source)

    tear = FaultSpec(kind="corrupt", site="ingest-write-trace", at=1)
    plan = FaultPlan(faults=(tear,), token_dir=str(workdir / "tokens-import"))
    store = IngestStore(workdir / "ingest-faulty")
    with plan.activated():
        torn_digest = store.import_trace(source)
    before = counters.snapshot()
    loaded_torn = store.load(torn_digest)
    delta = counters.delta(before)
    quarantined = list((store.root / "quarantine").glob("*"))

    healed_digest = store.import_trace(source)
    healed = store.load(healed_digest)

    checks: list = []
    _check(checks, "fault actually fired", plan.fired_count(tear) >= 1)
    _check(checks, "torn import landed under its true digest",
           torn_digest == expected == baseline_digest,
           f"torn={torn_digest[:12]}, expected={expected[:12]}")
    _check(checks, "torn entry reads as a miss", loaded_torn is None)
    _check(checks, "torn entry quarantined",
           delta.get("artifacts_quarantined", 0) >= 1 and len(quarantined) >= 1,
           f"delta={delta}, quarantined={len(quarantined)}")
    _check(checks, "re-import heals digest-identical",
           healed_digest == expected
           and healed is not None
           and healed.content_digest() == expected)
    return _report("corrupt-import", checks)


# ----------------------------------------------------------------------
# Registry / runner
# ----------------------------------------------------------------------

SCENARIOS = {
    "worker-crash": scenario_worker_crash,
    "corrupt-artifact": scenario_corrupt_artifact,
    "torn-write": scenario_torn_write,
    "daemon-restart": scenario_daemon_restart,
    "client-retry": scenario_client_retry,
    "corrupt-import": scenario_corrupt_import,
}

SCENARIO_NAMES = tuple(SCENARIOS)


def run_scenario(name: str, workdir: str | Path | None = None) -> dict:
    """Run one scenario in an isolated working directory."""
    if name not in SCENARIOS:
        raise KeyError(f"unknown scenario {name!r}; known: {', '.join(SCENARIO_NAMES)}")
    if workdir is None:
        workdir = tempfile.mkdtemp(prefix=f"repro-chaos-{name}-")
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    return SCENARIOS[name](workdir)


def run_scenarios(names=None, workdir: str | Path | None = None) -> list[dict]:
    """Run several scenarios (all of them by default)."""
    return [run_scenario(name, workdir) for name in (names or SCENARIO_NAMES)]
