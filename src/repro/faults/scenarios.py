"""Scripted chaos scenarios: end-to-end fault drills with pass/fail checks.

Each scenario builds a tiny real sweep, injects one class of fault
through :mod:`repro.faults.plan`, and verifies the recovery contract the
repository promises: **fault-injected runs produce byte-identical
ResultSet digests to fault-free runs**, recovery counters move, and no
layer crashes.  ``repro faults --scenario worker-crash`` runs them from
the shell; CI runs the same entry points as its chaos step.

Scenarios (see ``docs/operations.md`` "Failure modes and recovery"):

- ``worker-crash``     kill a pool worker mid-batch; pool rebuilds and
  retries the lost cells.
- ``corrupt-artifact`` rot every cached trace/result on disk; the cache
  quarantines and the engine recomputes.
- ``torn-write``       tear a result write in flight (crash between
  write and fsync); the next run quarantines the stub.
- ``daemon-restart``   journal queued jobs, "crash", resume into a new
  daemon with dedup intact.
- ``client-retry``     refuse the client's first connects; retries with
  backoff land, and a truly dead address raises ``ServiceUnavailable``.
- ``corrupt-import``   tear a trace import mid-write; the read path
  quarantines the torn entry and a re-import heals it digest-identical.
- ``worker-kill-dist`` SIGKILL distributed queue workers mid-sweep —
  first a lease-holding subset (survivors and respawns finish the
  board), then *every* worker at random, followed by a cold restart
  that must complete with zero recomputation of cached cells.
"""

from __future__ import annotations

import asyncio
import random
import signal
import socket
import tempfile
import time
from pathlib import Path

from repro.faults import counters
from repro.faults.plan import FaultPlan, FaultSpec

#: Sweep shape shared by every scenario: 4 cells, 2 functional passes,
#: small enough that the full suite runs in seconds.
_BENCHMARKS = ("mcf", "libquantum")
_SCHEMES = ("base_dram", "static:300")
_N_INSTRUCTIONS = 20_000


def _chaos_spec(name: str = "chaos", seeds: tuple[int, ...] = (0,)):
    from repro.api.spec import ExperimentSpec

    return ExperimentSpec(
        name=name, benchmarks=_BENCHMARKS, schemes=_SCHEMES, seeds=seeds,
        n_instructions=_N_INSTRUCTIONS,
    )


def _check(checks: list, label: str, ok: bool, detail: str = "") -> None:
    checks.append({"check": label, "ok": bool(ok), "detail": detail})


def _report(name: str, checks: list) -> dict:
    return {"scenario": name, "ok": all(c["ok"] for c in checks), "checks": checks}


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------

def scenario_worker_crash(workdir: Path) -> dict:
    """Kill a pool worker at its first cell; the sweep must still match
    the serial fault-free digest with zero poisoned cells."""
    from repro.api.backends import ProcessPoolBackend, SerialBackend
    from repro.api.engine import Engine

    spec = _chaos_spec()
    baseline = Engine(backend=SerialBackend()).run(spec)
    kill = FaultSpec(kind="kill", site="worker-cell", at=1)
    plan = FaultPlan(faults=(kill,), token_dir=str(workdir / "tokens-worker"))
    before = counters.snapshot()
    with plan.activated():
        chaotic = Engine(backend=ProcessPoolBackend(max_workers=2)).run(spec)
    delta = counters.delta(before)

    checks: list = []
    _check(checks, "digest matches fault-free run",
           chaotic.digest() == baseline.digest())
    _check(checks, "worker retries recorded",
           delta.get("worker_retries", 0) >= 1, f"delta={delta}")
    _check(checks, "pool was rebuilt", delta.get("pool_rebuilds", 0) >= 1)
    # The kill fires (and counts) inside the dying worker, so the
    # parent's counters never see it — the claimed token is the
    # cross-process evidence.
    _check(checks, "fault actually fired", plan.fired_count(kill) >= 1)
    _check(checks, "no cells poisoned", "cells_poisoned" not in chaotic.meta,
           f"meta={chaotic.meta}")
    return _report("worker-crash", checks)


def scenario_corrupt_artifact(workdir: Path) -> dict:
    """Rot every cached artifact on disk; the second run must
    quarantine all of them and still reproduce the digest."""
    from repro.api.cache import ExperimentCache
    from repro.api.engine import Engine
    from repro.api.execution import reset_local_sims

    root = workdir / "cache-corrupt"
    baseline = Engine(cache=ExperimentCache(root)).run(spec := _chaos_spec())

    cache = ExperimentCache(root)
    results = sorted(cache.results.root.glob("*.json"))
    traces = sorted(cache.traces.root.glob("*.pkl"))
    for path in results:
        path.write_text('{"benchmark": "mcf", "truncated')
    for path in traces:
        path.write_bytes(path.read_bytes()[:16])

    reset_local_sims()  # force disk reads: no warm in-process traces
    before = counters.snapshot()
    second = Engine(cache=ExperimentCache(root)).run(spec)
    delta = counters.delta(before)
    quarantined = (
        list((cache.results.root / "quarantine").glob("*"))
        + list((cache.traces.root / "quarantine").glob("*"))
    )

    checks: list = []
    _check(checks, "digest matches fault-free run",
           second.digest() == baseline.digest())
    _check(checks, "every rotten artifact quarantined",
           delta.get("artifacts_quarantined", 0) >= len(results) + len(traces),
           f"delta={delta}, corrupted={len(results) + len(traces)}")
    _check(checks, "quarantine evidence preserved on disk",
           len(quarantined) >= len(results) + len(traces))
    _check(checks, "all cells recomputed (no hits from rot)",
           second.meta["cache_hits"] == 0, f"meta={second.meta}")
    return _report("corrupt-artifact", checks)


def scenario_torn_write(workdir: Path) -> dict:
    """Tear one result write mid-flight; the next run must quarantine
    the stub, recompute exactly that cell, and match the digest."""
    from repro.api.cache import ExperimentCache
    from repro.api.engine import Engine
    from repro.api.execution import reset_local_sims

    root = workdir / "cache-torn"
    spec = _chaos_spec()
    plan = FaultPlan(
        faults=(FaultSpec(kind="corrupt", site="cache-write-result", at=1),),
        token_dir=str(workdir / "tokens-torn"),
    )
    with plan.activated():
        first = Engine(cache=ExperimentCache(root)).run(spec)

    reset_local_sims()
    before = counters.snapshot()
    second = Engine(cache=ExperimentCache(root)).run(spec)
    delta = counters.delta(before)

    checks: list = []
    _check(checks, "digest matches fault-free run",
           second.digest() == first.digest())
    _check(checks, "torn stub quarantined",
           delta.get("artifacts_quarantined", 0) >= 1, f"delta={delta}")
    _check(checks, "exactly the torn cell recomputed",
           second.meta["cells_run"] == 1
           and second.meta["cache_hits"] == spec.n_cells - 1,
           f"meta={second.meta}")
    return _report("torn-write", checks)


def scenario_daemon_restart(workdir: Path) -> dict:
    """Simulate a daemon crash with journaled-but-unfinished jobs, then
    resume into a fresh daemon: interrupted jobs re-run, duplicates
    collapse, finished jobs stay finished."""
    from repro.api.cache import ExperimentCache
    from repro.service.daemon import SweepService
    from repro.service.jobs import spec_digest
    from repro.service.journal import JobJournal

    root = workdir / "cache-daemon"
    root.mkdir(parents=True, exist_ok=True)

    # Phase 1: a "crashed" daemon's journal — two interrupted
    # submissions of one spec, one job that already finished, and a
    # torn trailing line (crash mid-append).
    journal = JobJournal.for_cache_root(root)
    pending = _chaos_spec(name="resume-me")
    finished = _chaos_spec(name="already-done", seeds=(1,))
    journal.record_submitted("j-000001", pending.to_dict(), spec_digest(pending))
    journal.record_submitted("j-000002", pending.to_dict(), spec_digest(pending))
    journal.record_submitted("j-000003", finished.to_dict(), spec_digest(finished))
    journal.record_state("j-000003", "done")
    with open(journal.path, "a", encoding="utf-8") as handle:
        handle.write('{"op": "submit", "job_id": "j-0000')  # torn append

    before = counters.snapshot()

    async def _restart() -> tuple[list, dict]:
        service = SweepService(cache=ExperimentCache(root), max_concurrency=1)
        resumed = await service.resume()
        await service.drain()
        snap = service.metrics_snapshot()
        states = [job.state for job in resumed]
        await service.shutdown()
        return states, snap

    states, snap = asyncio.run(_restart())
    delta = counters.delta(before)

    checks: list = []
    _check(checks, "exactly one interrupted job resumed",
           len(states) == 1 and snap["jobs_resumed"] == 1,
           f"states={states}, jobs_resumed={snap['jobs_resumed']}")
    _check(checks, "resumed job ran to done", states == ["done"])
    _check(checks, "duplicate interrupted submission deduplicated",
           snap["jobs_deduplicated"] == 1)
    _check(checks, "finished job not re-run", snap["jobs_submitted"] == 2)
    _check(checks, "torn journal line skipped, not fatal",
           delta.get("journal_lines_skipped", 0) >= 1, f"delta={delta}")
    return _report("daemon-restart", checks)


def scenario_client_retry(workdir: Path) -> dict:
    """Refuse the client's first two connects (daemon mid-restart); the
    third lands.  A truly dead address raises ``ServiceUnavailable``."""
    from repro.service.client import ServiceClient, ServiceUnavailable
    from repro.service.hosting import ThreadedService

    checks: list = []
    plan = FaultPlan(
        faults=(FaultSpec(kind="refuse", site="client-connect", at=1, count=2),),
        token_dir=str(workdir / "tokens-client"),
    )
    with ThreadedService(cache=workdir / "cache-client") as hosted:
        client = hosted.client()
        client.retry_backoff_s = 0.01
        before = counters.snapshot()
        with plan.activated():
            health = client.healthz()
        delta = counters.delta(before)
        _check(checks, "request survived two refused connects",
               bool(health), f"health={health}")
        _check(checks, "both retries counted",
               delta.get("client_retries", 0) == 2, f"delta={delta}")

    # A port nothing listens on: bind-then-close guarantees it was free.
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    dead_port = probe.getsockname()[1]
    probe.close()
    dead = ServiceClient(("tcp", "127.0.0.1", dead_port),
                         timeout=1.0, connect_retries=1, retry_backoff_s=0.01)
    try:
        dead.healthz()
        _check(checks, "dead address raises ServiceUnavailable", False,
               "healthz unexpectedly succeeded")
    except ServiceUnavailable as error:
        _check(checks, "dead address raises ServiceUnavailable",
               error.attempts == 2, f"attempts={error.attempts}")
    return _report("client-retry", checks)


def scenario_corrupt_import(workdir: Path) -> dict:
    """Tear a trace import mid-write; the torn entry must land under its
    true digest, quarantine on read, and re-import digest-identical."""
    from repro.ingest.store import IngestStore
    from repro.ingest.formats import write_text_trace
    from repro.workloads.registry import build_trace

    trace = build_trace(_BENCHMARKS[0], seed=0, n_instructions=_N_INSTRUCTIONS)
    source = workdir / "import-me.trace"
    write_text_trace(trace, source)
    expected = trace.content_digest()

    baseline_store = IngestStore(workdir / "ingest-baseline")
    baseline_digest = baseline_store.import_trace(source)

    tear = FaultSpec(kind="corrupt", site="ingest-write-trace", at=1)
    plan = FaultPlan(faults=(tear,), token_dir=str(workdir / "tokens-import"))
    store = IngestStore(workdir / "ingest-faulty")
    with plan.activated():
        torn_digest = store.import_trace(source)
    before = counters.snapshot()
    loaded_torn = store.load(torn_digest)
    delta = counters.delta(before)
    quarantined = list((store.root / "quarantine").glob("*"))

    healed_digest = store.import_trace(source)
    healed = store.load(healed_digest)

    checks: list = []
    _check(checks, "fault actually fired", plan.fired_count(tear) >= 1)
    _check(checks, "torn import landed under its true digest",
           torn_digest == expected == baseline_digest,
           f"torn={torn_digest[:12]}, expected={expected[:12]}")
    _check(checks, "torn entry reads as a miss", loaded_torn is None)
    _check(checks, "torn entry quarantined",
           delta.get("artifacts_quarantined", 0) >= 1 and len(quarantined) >= 1,
           f"delta={delta}, quarantined={len(quarantined)}")
    _check(checks, "re-import heals digest-identical",
           healed_digest == expected
           and healed is not None
           and healed.content_digest() == expected)
    return _report("corrupt-import", checks)


def scenario_worker_kill_dist(workdir: Path) -> dict:
    """SIGKILL distributed queue workers mid-sweep; the board must still
    complete byte-identical to serial, and a total massacre plus cold
    restart must recompute zero cached cells.

    Two acts:

    1. **Deterministic partial kill.**  Three queue workers drain the
       board under a fault plan whose tokens live under the shared
       cache root (:meth:`FaultPlan.for_cache_root` — any worker, any
       CWD, same ledger): the first two workers to arm ``dist-cell``
       die holding leases.  The coordinator reaps, requeues, respawns;
       the digest must match the fault-free serial run with nothing
       poisoned.
    2. **Total massacre + cold restart.**  A fresh board, three
       workers, and as soon as the first result lands every worker is
       SIGKILLed in random order.  A cold engine restart on the same
       cache must finish the sweep with ``cache_hits`` exactly equal to
       the records the dead fleet persisted — at-least-once execution,
       exactly-once results, zero recomputation.
    """
    from repro.api.backends import SerialBackend
    from repro.api.cache import ExperimentCache
    from repro.api.engine import Engine
    from repro.dist.backend import WorkQueueBackend, spawn_worker_process
    from repro.dist.queue import WorkQueue

    spec = _chaos_spec(name="dist-chaos", seeds=(0, 1))  # 8 cells, 4 tasks
    baseline = Engine(
        backend=SerialBackend(), cache=ExperimentCache(workdir / "cache-serial")
    ).run(spec)
    checks: list = []

    # -- Act 1: kill two lease-holding workers, deterministically -------
    cache_a = ExperimentCache(workdir / "cache-dist-a")
    kill = FaultSpec(kind="kill", site="dist-cell", at=1, count=2)
    plan = FaultPlan.for_cache_root(cache_a.root, faults=(kill,))
    backend = WorkQueueBackend(
        workers=3, lease_ttl_s=0.6, poll_s=0.02, wait_timeout_s=180.0
    )
    with plan.activated():
        chaotic = Engine(backend=backend, cache=cache_a).run(spec)

    queue_a = backend.queue
    failed_markers = list((queue_a.root / "failed").glob("*"))
    _check(checks, "partial kill: digest matches fault-free serial run",
           chaotic.digest() == baseline.digest())
    _check(checks, "partial kill: both kill faults fired (shared token ledger)",
           plan.fired_count(kill) == 2, f"fired={plan.fired_count(kill)}")
    _check(checks, "partial kill: expired leases reaped and requeued",
           len(failed_markers) >= 1, f"failed markers={len(failed_markers)}")
    _check(checks, "partial kill: board finished, nothing poisoned",
           queue_a.finished() and "cells_poisoned" not in chaotic.meta,
           f"meta={chaotic.meta}, stats={queue_a.stats()}")

    # -- Act 2: massacre every worker at random, then cold-restart ------
    cache_b = ExperimentCache(workdir / "cache-dist-b")
    cells = list(spec.cells())
    queue_b = WorkQueue.for_cells(cache_b.root, cells, lease_ttl_s=0.6)
    procs = [
        spawn_worker_process(
            cache_b.root, queue_b.root.name, f"victim-{i}",
            lease_ttl_s=0.6, max_attempts=3, log_dir=queue_b.root / "logs",
        )
        for i in range(3)
    ]
    results_dir = cache_b.results.root
    deadline = time.monotonic() + 120.0
    while time.monotonic() < deadline:
        if list(results_dir.glob("*.json")) or all(
            proc.poll() is not None for proc in procs
        ):
            break
        time.sleep(0.01)
    rng = random.Random(0xD157)
    rng.shuffle(procs)
    for proc in procs:  # the massacre: no warning, no cleanup
        if proc.poll() is None:
            proc.send_signal(signal.SIGKILL)
    for proc in procs:
        proc.wait(timeout=30.0)
    persisted = len(list(results_dir.glob("*.json")))

    restarted = Engine(
        backend=WorkQueueBackend(
            workers=2, lease_ttl_s=0.6, poll_s=0.02, wait_timeout_s=180.0
        ),
        cache=cache_b,
    ).run(spec)

    _check(checks, "massacre: at least one result persisted before the kill",
           persisted >= 1, f"persisted={persisted}")
    _check(checks, "cold restart: digest matches fault-free serial run",
           restarted.digest() == baseline.digest())
    _check(checks, "cold restart: zero recomputation of cached cells",
           restarted.meta["cache_hits"] == persisted
           and restarted.meta["cells_run"] == spec.n_cells - persisted,
           f"meta={restarted.meta}, persisted={persisted}")
    _check(checks, "cold restart: nothing poisoned",
           "cells_poisoned" not in restarted.meta, f"meta={restarted.meta}")
    return _report("worker-kill-dist", checks)


# ----------------------------------------------------------------------
# Registry / runner
# ----------------------------------------------------------------------

SCENARIOS = {
    "worker-crash": scenario_worker_crash,
    "corrupt-artifact": scenario_corrupt_artifact,
    "torn-write": scenario_torn_write,
    "daemon-restart": scenario_daemon_restart,
    "client-retry": scenario_client_retry,
    "corrupt-import": scenario_corrupt_import,
    "worker-kill-dist": scenario_worker_kill_dist,
}

SCENARIO_NAMES = tuple(SCENARIOS)


def run_scenario(name: str, workdir: str | Path | None = None) -> dict:
    """Run one scenario in an isolated working directory."""
    if name not in SCENARIOS:
        raise KeyError(f"unknown scenario {name!r}; known: {', '.join(SCENARIO_NAMES)}")
    if workdir is None:
        workdir = tempfile.mkdtemp(prefix=f"repro-chaos-{name}-")
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    return SCENARIOS[name](workdir)


def run_scenarios(names=None, workdir: str | Path | None = None) -> list[dict]:
    """Run several scenarios (all of them by default)."""
    return [run_scenario(name, workdir) for name in (names or SCENARIO_NAMES)]
