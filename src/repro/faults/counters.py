"""Process-global recovery counters.

Every layer that survives a fault — the pool backend retrying a crashed
worker, the cache quarantining a corrupt artifact, the client retrying a
refused connection — records the event here, in one monotonic,
thread-safe counter table.  The sweep daemon folds a prefixed snapshot
into its ``/metrics`` document (``recovery_*`` fields), and the chaos
scenarios (:mod:`repro.faults.scenarios`) difference snapshots around a
run to prove recovery actually happened.

Counters are process-global (not per-engine) deliberately: recovery can
happen below any object a caller holds — inside a pool worker's cache
write, inside a module-level ``sim_for_cell`` — and the operator's
question is "did *this process* retry/quarantine anything", exactly like
the ``/dev/shm`` leak accounting.

>>> from repro.faults import counters
>>> before = counters.snapshot()
>>> counters.bump("worker_retries")
>>> counters.snapshot()["worker_retries"] - before["worker_retries"]
1
"""

from __future__ import annotations

import threading

#: Every recovery counter, in render order.  All monotonic.
RECOVERY_COUNTER_NAMES = (
    "worker_retries",         # crashed batches re-dispatched to a fresh pool
    "pool_rebuilds",          # ProcessPoolExecutor instances re-created after a break
    "cells_poisoned",         # cells quarantined after repeated worker crashes
    "artifacts_quarantined",  # corrupt cache artifacts moved to quarantine/
    "client_retries",         # ServiceClient connect attempts that were retried
    "journal_lines_skipped",  # unparseable job-journal lines ignored on replay
    "faults_injected",        # fault-plan firings (chaos runs only; 0 in production)
    "leases_claimed",         # work-queue tasks claimed via O_EXCL lease creation
    "leases_expired",         # leases reaped after their TTL passed unrenewed
    "tasks_requeued",         # queue tasks returned to the pool behind a backoff
    "tasks_poisoned",         # queue tasks quarantined after max failed claims
)

_LOCK = threading.Lock()
_COUNTS: dict[str, int] = dict.fromkeys(RECOVERY_COUNTER_NAMES, 0)


def bump(name: str, amount: int = 1) -> None:
    """Increment one counter (must be a known name, amount >= 0)."""
    if name not in _COUNTS:
        raise KeyError(f"unknown recovery counter: {name!r}")
    if amount < 0:
        raise ValueError(f"recovery counters only increase, got {amount}")
    with _LOCK:
        _COUNTS[name] += amount


def value(name: str) -> int:
    """Current value of one counter."""
    with _LOCK:
        return _COUNTS[name]


def snapshot() -> dict[str, int]:
    """Copy of every counter (stable key order)."""
    with _LOCK:
        return {name: _COUNTS[name] for name in RECOVERY_COUNTER_NAMES}


def delta(before: dict[str, int]) -> dict[str, int]:
    """Per-counter increase since a prior :func:`snapshot`."""
    now = snapshot()
    return {name: now[name] - before.get(name, 0) for name in RECOVERY_COUNTER_NAMES}


def reset() -> None:
    """Zero every counter.  Test isolation only — production code must
    never call this (it would break the monotonic-scrape contract)."""
    with _LOCK:
        for name in _COUNTS:
            _COUNTS[name] = 0
