"""Deterministic, seed-free fault plans and their injection hooks.

A :class:`FaultPlan` is a declarative list of :class:`FaultSpec` entries
— *kill the worker at its K-th cell*, *corrupt the next trace artifact
written*, *refuse the next two client connections*, *delay a site* —
plus a token directory that makes firing decisions deterministic
**across processes**: each spec may fire at most ``count`` times total,
claimed by atomically creating token files, so a retried worker that
re-arms the same site does not die forever.

Plans propagate two ways:

- :meth:`FaultPlan.install` — process-global, for in-process sites like
  the service client's connect path.
- :meth:`FaultPlan.activate` — via the ``REPRO_FAULT_PLAN`` environment
  variable, which pool workers inherit on fork/spawn.  The
  :meth:`FaultPlan.activated` context manager does both and always
  cleans up.

Production code never imports this module's hooks conditionally: the
hooks (:func:`fault_point`, :func:`corrupt_bytes`) are no-ops costing a
dict lookup when no plan is active, which is always outside a chaos run.

>>> from repro.faults.plan import FaultPlan, FaultSpec
>>> plan = FaultPlan(faults=(FaultSpec(kind="refuse", site="client-connect"),),
...                  token_dir="/tmp/tokens")
>>> FaultPlan.from_json(plan.to_json()) == plan
True
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

from repro.faults import counters

#: Environment variable carrying the active plan into pool workers.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Fault kinds: kill the process, corrupt a payload being written,
#: sleep at a site, refuse (raise ConnectionRefusedError) at a site.
FAULT_KINDS = ("kill", "corrupt", "delay", "refuse")

#: Exit code of fault-killed workers (recognizable in core-dump triage).
KILL_EXIT_CODE = 23

#: Per-process arming counters, keyed by site name.
_SITE_COUNTS: dict[str, int] = {}

#: The plan installed in this process (wins over the environment).
_INSTALLED: "FaultPlan | None" = None

#: Cache of the last environment plan parse: (raw json, plan).
_ENV_CACHE: tuple[str, "FaultPlan"] | None = None


@dataclass(frozen=True)
class FaultSpec:
    """One injectable fault.

    Args:
        kind: One of :data:`FAULT_KINDS`.
        site: Injection-site name (e.g. ``"worker-cell"``,
            ``"cache-write-trace"``, ``"client-connect"``).
        at: Fire from the ``at``-th arming call at the site onward
            (1-based, per process) — "kill the worker at cell K".
        count: Total firings allowed across *all* processes (claimed
            through the plan's token directory).
        delay_s: Sleep duration for ``kind="delay"``.
    """

    kind: str
    site: str
    at: int = 1
    count: int = 1
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"kind must be one of {FAULT_KINDS}, got {self.kind!r}")
        if not self.site:
            raise ValueError("site must be a non-empty string")
        if self.at < 1:
            raise ValueError(f"at is 1-based, got {self.at}")
        if self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")
        if self.delay_s < 0:
            raise ValueError(f"delay_s cannot be negative, got {self.delay_s}")

    @property
    def token_stem(self) -> str:
        """Filename stem identifying this spec's firing tokens."""
        return f"{self.kind}-{self.site}-at{self.at}"


@dataclass(frozen=True)
class FaultPlan:
    """A set of faults plus the shared token directory that caps them."""

    faults: tuple[FaultSpec, ...] = ()
    token_dir: str = ""
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.token_dir:
            raise ValueError("a FaultPlan needs a token_dir for cross-process state")
        # Absolutize eagerly: the plan travels to workers through the
        # environment, and a relative token_dir would resolve against
        # *their* CWDs — distributed workers launched from other
        # directories (or hosts) would then each keep a private ledger
        # and every one of them would fire a count=1 fault.
        object.__setattr__(self, "token_dir", os.path.abspath(self.token_dir))
        object.__setattr__(self, "faults", tuple(self.faults))

    @classmethod
    def for_cache_root(
        cls, cache_root: "str | os.PathLike[str]",
        faults: tuple[FaultSpec, ...] = (), seed: int = 0,
    ) -> "FaultPlan":
        """A plan whose firing-cap tokens live under the shared cache.

        The cache root is the one directory every worker in a
        distributed sweep can already see, so rooting the token ledger
        there (``<cache>/fault-tokens/``) makes cross-process firing
        caps hold regardless of each worker's launch directory or host.
        """
        return cls(
            faults=faults,
            token_dir=str(Path(cache_root) / "fault-tokens"),
            seed=seed,
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_json(self) -> str:
        """Compact JSON for the environment hand-off."""
        return json.dumps({
            "seed": self.seed,
            "token_dir": self.token_dir,
            "faults": [
                {"kind": f.kind, "site": f.site, "at": f.at,
                 "count": f.count, "delay_s": f.delay_s}
                for f in self.faults
            ],
        }, sort_keys=True)

    @classmethod
    def from_json(cls, payload: str) -> "FaultPlan":
        data = json.loads(payload)
        return cls(
            faults=tuple(FaultSpec(**entry) for entry in data["faults"]),
            token_dir=data["token_dir"],
            seed=int(data.get("seed", 0)),
        )

    # ------------------------------------------------------------------
    # Activation
    # ------------------------------------------------------------------

    def install(self) -> None:
        """Make this plan active for the current process only."""
        global _INSTALLED
        _INSTALLED = self

    def uninstall(self) -> None:
        global _INSTALLED
        if _INSTALLED is self:
            _INSTALLED = None

    def activate(self) -> None:
        """Publish the plan to the environment (inherited by workers)."""
        os.environ[FAULT_PLAN_ENV] = self.to_json()

    def deactivate(self) -> None:
        if os.environ.get(FAULT_PLAN_ENV) == self.to_json():
            del os.environ[FAULT_PLAN_ENV]

    @contextmanager
    def activated(self):
        """Install in-process *and* publish to the environment; always
        cleans up both and this process's site counters on exit."""
        Path(self.token_dir).mkdir(parents=True, exist_ok=True)
        self.install()
        self.activate()
        try:
            yield self
        finally:
            self.uninstall()
            self.deactivate()
            reset_site_counts()

    # ------------------------------------------------------------------
    # Firing bookkeeping
    # ------------------------------------------------------------------

    def claim(self, spec: FaultSpec) -> bool:
        """Atomically claim one of ``spec.count`` firing slots.

        Token files in ``token_dir`` are the cross-process ledger:
        ``O_CREAT | O_EXCL`` creation either wins a slot or loses the
        race, so a kill fault with ``count=1`` fires in exactly one
        worker ever — the retried batch runs clean.
        """
        directory = Path(self.token_dir)
        try:
            directory.mkdir(parents=True, exist_ok=True)
        except OSError:
            return False
        for slot in range(spec.count):
            token = directory / f"{spec.token_stem}.{slot}"
            try:
                fd = os.open(token, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            except OSError:
                return False
            os.close(fd)
            return True
        return False

    def fired_count(self, spec: FaultSpec) -> int:
        """How many of ``spec``'s slots have been claimed so far."""
        directory = Path(self.token_dir)
        return sum(
            1 for slot in range(spec.count)
            if (directory / f"{spec.token_stem}.{slot}").exists()
        )


def active_plan() -> FaultPlan | None:
    """The plan governing this process, if any.

    The in-process installed plan wins; otherwise the environment is
    consulted (the worker path).  Returns None — the production fast
    path — when neither is set.
    """
    global _ENV_CACHE
    if _INSTALLED is not None:
        return _INSTALLED
    raw = os.environ.get(FAULT_PLAN_ENV)
    if not raw:
        return None
    if _ENV_CACHE is None or _ENV_CACHE[0] != raw:
        try:
            _ENV_CACHE = (raw, FaultPlan.from_json(raw))
        except (ValueError, KeyError, TypeError):
            return None
    return _ENV_CACHE[1]


def reset_site_counts() -> None:
    """Drop this process's arming counters (chaos-run isolation)."""
    _SITE_COUNTS.clear()


def _arm(site: str) -> int:
    _SITE_COUNTS[site] = _SITE_COUNTS.get(site, 0) + 1
    return _SITE_COUNTS[site]


def fault_point(site: str) -> None:
    """Arm an injection site; fires any matching kill/delay/refuse fault.

    No-op without an active plan.  ``kill`` exits the process abruptly
    (``os._exit`` — no cleanup, exactly like a segfault); ``delay``
    sleeps; ``refuse`` raises :class:`ConnectionRefusedError`.
    """
    plan = active_plan()
    if plan is None:
        return
    armed = _arm(site)
    for spec in plan.faults:
        if spec.site != site or spec.kind == "corrupt" or armed < spec.at:
            continue
        if not plan.claim(spec):
            continue
        counters.bump("faults_injected")
        if spec.kind == "kill":
            os._exit(KILL_EXIT_CODE)
        elif spec.kind == "delay":
            time.sleep(spec.delay_s)
        elif spec.kind == "refuse":
            raise ConnectionRefusedError(f"fault injected: connection refused at {site}")


def corrupt_bytes(site: str, payload: bytes) -> bytes:
    """Arm a write site; returns a torn payload if a corrupt fault fires.

    The corruption model is a torn write: the first half of the payload
    only — what a crash between ``write`` and ``fsync`` could persist.
    """
    plan = active_plan()
    if plan is None:
        return payload
    armed = _arm(site)
    for spec in plan.faults:
        if spec.site != site or spec.kind != "corrupt" or armed < spec.at:
            continue
        if not plan.claim(spec):
            continue
        counters.bump("faults_injected")
        return payload[: len(payload) // 2]
    return payload
