"""Deterministic fault injection and the recovery substrate around it.

This package is the robustness layer ROADMAP item 5 (multi-host sweeps)
stands on.  It has three parts:

- :mod:`repro.faults.plan` — declarative :class:`FaultPlan`/:class:`FaultSpec`
  chaos plans (kill-worker-at-cell-K, corrupt-artifact, delay,
  refuse-connection) injected through cheap no-op-by-default hooks at
  named sites in pool workers, the persistent cache, and the service
  client; token files make firing deterministic across processes.
- :mod:`repro.faults.counters` — process-global monotonic recovery
  counters (worker retries, pool rebuilds, poisoned cells, quarantined
  artifacts, client retries) surfaced as ``recovery_*`` fields on the
  sweep daemon's ``/metrics`` document.
- :mod:`repro.faults.scenarios` — scripted end-to-end chaos scenarios
  behind ``repro faults``: each activates a plan, runs the real stack,
  and verifies recovery left :class:`~repro.api.records.ResultSet`
  digests byte-identical to a fault-free run.

The recovery behaviors themselves live where the failures happen:
:mod:`repro.api.backends` (pool rebuild + retry + poison quarantine),
:mod:`repro.api.cache` (artifact quarantine, fsync-before-replace),
:mod:`repro.service` (job journal + restart resume, client retry).
"""

from repro.faults import counters
from repro.faults.plan import (
    FAULT_KINDS,
    FAULT_PLAN_ENV,
    FaultPlan,
    FaultSpec,
    active_plan,
    corrupt_bytes,
    fault_point,
    reset_site_counts,
)

__all__ = [
    "FAULT_KINDS",
    "FAULT_PLAN_ENV",
    "FaultPlan",
    "FaultSpec",
    "active_plan",
    "corrupt_bytes",
    "counters",
    "fault_point",
    "reset_site_counts",
]
