"""Frontier sweep execution: design-space grid in, Pareto report out.

:func:`run_frontier` composes the pieces the rest of the repository
already provides — grid expansion (:mod:`repro.core.scheme`), the
declarative engine with its pluggable backends and persistent
content-addressed cache (:mod:`repro.api`), and the Pareto analysis
(:mod:`repro.analysis.frontier`) — into one call that sweeps hundreds of
``(|R|, growth, learner)`` configurations across the workload suite with
multi-seed replication.

Cost model: expanding the grid multiplies only the cheap *timing replay*
axis.  A sweep of S schemes over B benchmarks and K seeds costs
``B * K`` functional cache passes plus ``B * K * S`` replays — the
two-phase invariant (DESIGN.md) the engine's trace cache enforces.  With
a persistent cache the sweep *verifies* the invariant: the number of new
trace entries after the run must not exceed ``B * K``, and the result
meta records the proof (``functional_passes`` vs ``expected_passes``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.analysis.frontier import FrontierReport, frontier_from_resultset
from repro.api.backends import ExecutionBackend, ProcessPoolBackend, SerialBackend
from repro.api.cache import ExperimentCache
from repro.api.engine import Engine
from repro.api.records import ResultSet
from repro.api.spec import ExperimentSpec
from repro.core.scheme import DEFAULT_DYNAMIC_GRID, parse_scheme_grid

#: Benchmarks the default frontier sweeps: one per memory-behaviour class
#: (pathological pointer chase, memory-bound streaming, compute-bound,
#: input-sensitive mixed) so the aggregate frontier is not dominated by a
#: single workload personality.
DEFAULT_FRONTIER_BENCHMARKS: tuple[str, ...] = (
    "mcf",
    "libquantum",
    "h264ref",
    "astar/rivers",
)

#: Zero-leakage comparison anchors (the paper's static strawmen, §9.1.6).
DEFAULT_STATIC_ANCHORS: tuple[int, ...] = (300, 500, 1300)


@dataclass(frozen=True)
class FrontierConfig:
    """What to sweep: the design-space grid and the measurement lattice.

    Attributes:
        grid: A ``grid:dynamic:...`` spec string (``"grid:dynamic"``
            resolves to :data:`~repro.core.scheme.DEFAULT_DYNAMIC_GRID`,
            112 configurations).
        benchmarks: Workload entries (``"name"`` / ``"name/input"``).
        seeds: Workload seeds; slowdowns average across them.
        n_instructions: Post-warmup budget per run.
        budget_bits: Optional leakage budget; grid points whose
            ``|E| * lg |R|`` bound exceeds it are pruned *before*
            execution (intersected with any budget already in the grid).
        static_anchors: Static rates added as zero-leakage frontier
            anchors; empty tuple to sweep the dynamic family alone.
    """

    grid: str = DEFAULT_DYNAMIC_GRID
    benchmarks: tuple[str, ...] = DEFAULT_FRONTIER_BENCHMARKS
    seeds: tuple[int, ...] = (0,)
    n_instructions: int = 200_000
    budget_bits: float | None = None
    static_anchors: tuple[int, ...] = DEFAULT_STATIC_ANCHORS

    def schemes(self) -> tuple[str, ...]:
        """Baseline + anchors + the budget-pruned grid expansion."""
        grid = parse_scheme_grid(self.grid)
        if self.budget_bits is not None:
            budget = (
                self.budget_bits
                if grid.budget_bits is None
                else min(grid.budget_bits, self.budget_bits)
            )
            grid = replace(grid, budget_bits=budget)
        anchors = tuple(f"static:{rate}" for rate in self.static_anchors)
        return ("base_dram",) + anchors + grid.expand()

    def spec(self) -> ExperimentSpec:
        """The concrete experiment spec the engine executes."""
        return ExperimentSpec(
            name=f"frontier: {self.grid}",
            benchmarks=tuple(self.benchmarks),
            schemes=self.schemes(),
            seeds=tuple(self.seeds),
            n_instructions=self.n_instructions,
        )

    @property
    def n_candidates(self) -> int:
        """Frontier candidates swept (baseline excluded)."""
        return len(self.schemes()) - 1


@dataclass
class FrontierSweepResult:
    """Everything one frontier sweep produced.

    ``meta`` extends the engine's session diagnostics with the
    functional-pass proof: ``expected_passes`` (benchmarks x seeds),
    ``functional_passes`` (new persistent trace entries, when a cache
    was attached), and ``passes_verified`` (the invariant held).
    """

    config: FrontierConfig
    results: ResultSet
    report: FrontierReport
    meta: dict = field(default_factory=dict)

    def render(self, per_benchmark: bool = False) -> str:
        """The report's tables plus a one-line sweep summary."""
        lines = [self.report.render(per_benchmark=per_benchmark), ""]
        meta = self.meta
        summary = (
            f"[{meta.get('backend', '?')}] {meta.get('cells', '?')} cells "
            f"([{self.config.n_candidates} configurations + baseline] x "
            f"{len(self.config.benchmarks)} benchmarks x "
            f"{len(self.config.seeds)} seeds): "
            f"{meta.get('cache_hits', 0)} cached, {meta.get('cells_run', 0)} run"
        )
        if "functional_passes" in meta:
            summary += (
                f"; functional passes {meta['functional_passes']}"
                f"/{meta['expected_passes']} "
                f"({'verified' if meta['passes_verified'] else 'VIOLATED'})"
            )
        lines.append(summary)
        return "\n".join(lines)


def run_frontier(
    config: FrontierConfig | None = None,
    engine: Engine | None = None,
    parallel: bool = True,
    workers: int | None = None,
    cache_dir: str | Path | None = None,
    use_cache: bool = True,
) -> FrontierSweepResult:
    """Sweep the design space and compute its Pareto frontiers.

    Args:
        config: What to sweep (default :class:`FrontierConfig`).
        engine: Pre-built engine; overrides ``parallel``/``workers``/
            ``cache_dir``.
        parallel: Shard cells across a process pool (the default — a
            grid sweep is hundreds of independent replays).
        workers: Pool size (None: ``os.cpu_count()``).
        cache_dir: Root a persistent trace/result cache there; also
            enables the functional-pass verification in ``meta``.
        use_cache: Read cached results (False re-measures but still
            shares traces).
    """
    config = config or FrontierConfig()
    if engine is None:
        backend: ExecutionBackend = (
            ProcessPoolBackend(max_workers=workers) if parallel else SerialBackend()
        )
        cache = ExperimentCache(cache_dir) if cache_dir is not None else None
        engine = Engine(backend=backend, cache=cache)

    spec = config.spec()
    traces_before = (
        engine.cache.traces.entry_count() if engine.cache is not None else None
    )
    results = engine.run(spec, use_cache=use_cache)
    meta = dict(results.meta)
    expected = len(spec.benchmarks) * len(spec.seeds)
    meta["expected_passes"] = expected
    if traces_before is not None:
        fresh_passes = engine.cache.traces.entry_count() - traces_before
        meta["functional_passes"] = fresh_passes
        meta["passes_verified"] = fresh_passes <= expected

    report = frontier_from_resultset(results)
    report.meta = dict(meta)
    return FrontierSweepResult(
        config=config, results=results, report=report, meta=meta
    )
