"""Leakage–efficiency frontier sweeps over the dynamic design space.

The paper samples a handful of points from the (rate set, epoch
schedule, learner) lattice; this subsystem sweeps the whole space and
computes the Pareto frontier the samples were drawn from:

* grid grammar (``grid:dynamic:{rates=2..8}x{epochs=2..9}:...``) —
  :mod:`repro.core.scheme`;
* sweep execution with multi-seed replication, process-pool sharding,
  and a verified one-functional-pass-per-benchmark invariant —
  :mod:`repro.frontier.sweep` (this package);
* exact Pareto sets, dominated-configuration pruning, knee points, and
  JSON/CSV export — :mod:`repro.analysis.frontier`.

Quickstart::

    from repro.frontier import FrontierConfig, run_frontier

    sweep = run_frontier(FrontierConfig(seeds=(0, 1, 2)), parallel=True)
    print(sweep.report.render())
    sweep.report.save_csv("frontier.csv")

or from the shell: ``repro frontier --grid dynamic --seeds 0,1,2``.
"""

from repro.frontier.sweep import (
    DEFAULT_FRONTIER_BENCHMARKS,
    DEFAULT_STATIC_ANCHORS,
    FrontierConfig,
    FrontierSweepResult,
    run_frontier,
)

__all__ = [
    "DEFAULT_FRONTIER_BENCHMARKS",
    "DEFAULT_STATIC_ANCHORS",
    "FrontierConfig",
    "FrontierSweepResult",
    "run_frontier",
]
