#!/usr/bin/env python3
"""Scenario: one ORAM bank, many mutually distrusting cloud tenants.

The paper models one secure processor; the deployment it motivates is a
cloud server whose ORAM bank is multiplexed across many client sessions.
This walkthrough runs that service end to end:

1. Eight tenants negotiate sessions and share one batched ORAM bank,
   each with its own trace slice and leakage budget.
2. The batched scheduler packs each round into a single vectorized
   ``access_batch`` call; per-tenant p50/p95/p99 latency SLOs, fairness,
   and leakage accounting come back in a :class:`TenancyReport`.
3. The shared-bank results are digest-checked against each tenant
   running *alone* on a private bank — tenants cannot corrupt (or even
   perturb) one another's values, under any interleaving.
4. A tight leakage budget exhausts mid-run: "terminate" tenants lose
   their remaining requests and their session keys are forgotten
   (run-once, Section 8); "degrade" tenants keep serving with leakage
   frozen at the budget.
5. A weighted-fair run gives one premium tenant 4x the bank share.

Usage::

    python examples/multi_tenant_service.py
"""

from repro.tenancy import (
    TenancyConfig,
    run_tenancy,
    serial_tenant_digests,
    with_overrides,
)


def main() -> None:
    print("=== Multi-tenant ORAM service ===\n")

    config = TenancyConfig(
        n_tenants=8,
        blocks_per_tenant=64,
        requests_per_tenant=96,
        scheduler="batched",
        scheme_spec="dynamic:4x4",
        seed=7,
    )
    report = run_tenancy(config)
    print("1. Eight tenants share one batched bank:\n")
    print(report.render())

    print("\n2. Serial-equivalence check (shared bank vs private banks)...")
    serial = serial_tenant_digests(config)
    assert all(t.digest == serial[t.tenant_id] for t in report.tenants)
    print(
        f"   all {len(serial)} tenant digests identical — isolation holds under "
        "the shared schedule."
    )

    print("\n3. A 6-bit leakage budget with scheme dynamic:4x4 (lg|R|=2 per epoch):")
    for policy in ("terminate", "degrade"):
        budget_run = run_tenancy(
            with_overrides(
                config,
                budget_bits=6.0,
                exhaustion_policy=policy,
                requests_per_tenant=4096,
                mean_gap_slots=0.0,
            )
        )
        tenant = budget_run.tenants[0]
        print(
            f"   {policy:9s}: {tenant.requests_serviced}/{tenant.requests_total} "
            f"requests served, {tenant.expended_leakage_bits:.1f}/"
            f"{tenant.budget_bits:.0f} bits spent, state="
            f"{'terminated' if tenant.terminated else 'degraded'}"
        )

    print("\n4. Weighted-fair: tenant 0 buys a 4x share:")
    weighted = run_tenancy(
        with_overrides(
            config,
            scheduler="weighted_fair",
            weights=(4.0,) + (1.0,) * (config.n_tenants - 1),
            mean_gap_slots=0.0,
        )
    )
    premium = weighted.tenants[0]
    standard = weighted.tenants[1]
    print(
        f"   premium mean latency {premium.latency_mean_slots:.1f} slots vs "
        f"standard {standard.latency_mean_slots:.1f} "
        f"(fairness ratio {weighted.fairness_ratio:.2f})"
    )
    assert premium.latency_mean_slots < standard.latency_mean_slots

    print("\nDone: shared service, per-tenant SLOs, budgets enforced.")


if __name__ == "__main__":
    main()
