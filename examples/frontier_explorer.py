#!/usr/bin/env python3
"""Scenario: explore the leakage–efficiency design space, end to end.

The paper evaluates a handful of (|R|, epoch growth) samples; this walk
sweeps a whole grid of them and asks the design question directly: *for
a given leakage budget, which configuration should I ship?*

Steps (docs/tradeoffs.md is the narrated version):

1. expand a ``grid:`` spec into concrete scheme strings;
2. sweep it — with the static zero-leakage anchors — over two
   benchmarks with a couple of seeds;
3. print the exact Pareto frontier (leaked bits vs slowdown) and the
   knee configuration per benchmark;
4. re-run under a 16-bit leakage budget and watch the grid shrink.

Usage::

    python examples/frontier_explorer.py [n_instructions]
"""

import sys

from repro.core.scheme import expand_scheme_grid
from repro.frontier import FrontierConfig, run_frontier

GRID = "grid:dynamic:{rates=2..6}x{epochs=2..6}:{learner=avg,threshold}"


def main() -> None:
    n_instructions = int(sys.argv[1]) if len(sys.argv) > 1 else 150_000

    schemes = expand_scheme_grid(GRID)
    print(f"grid {GRID}\nexpands to {len(schemes)} configurations, e.g. "
          f"{schemes[0]}, {schemes[1]}, ..., {schemes[-1]}\n")

    config = FrontierConfig(
        grid=GRID,
        benchmarks=("mcf", "h264ref"),
        seeds=(0, 1),
        n_instructions=n_instructions,
    )
    sweep = run_frontier(config, parallel=False)
    print(sweep.render(per_benchmark=True))

    # The same sweep under a 16-bit ORAM-timing budget: every
    # configuration whose |E| * lg |R| bound exceeds the budget is
    # pruned before anything runs, and the cache makes the re-analysis
    # free (the cells that survive were already measured above).
    budget = 16.0
    budgeted = run_frontier(
        FrontierConfig(
            grid=GRID,
            benchmarks=config.benchmarks,
            seeds=config.seeds,
            n_instructions=n_instructions,
            budget_bits=budget,
        ),
        parallel=False,
    )
    print(f"\nunder a {budget:.0f}-bit budget the grid shrinks "
          f"{config.n_candidates} -> {budgeted.config.n_candidates} candidates;")
    knee = budgeted.report.aggregate.knee
    print(f"aggregate knee within budget: {knee.scheme_spec} "
          f"({knee.leakage_bits:.0f} bits, {knee.slowdown:.2f}x base_dram)")


if __name__ == "__main__":
    main()
