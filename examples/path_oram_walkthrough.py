#!/usr/bin/env python3
"""Scenario: the Path ORAM substrate, inside out.

A guided tour of the machinery underneath the timing scheme (Section 3):

* a functional Path ORAM serving reads/writes with path accesses,
* the invariant (every block on its mapped path or in the stash),
* stash occupancy behaviour,
* recursive position maps and their access-pattern cost,
* Merkle integrity verification catching DRAM tampering,
* the derived cost constants (1488 cycles / 24.2 KB / 984 nJ per access).

Usage::

    python examples/path_oram_walkthrough.py
"""

from repro.oram.config import ORAMConfig, PAPER_ORAM_CONFIG, TreeGeometry
from repro.oram.integrity import TamperDetectedError, VerifiedPathORAM
from repro.oram.path_oram import PathORAM
from repro.oram.recursion import RecursivePathORAM
from repro.oram.timing import PAPER_ORAM_TIMING, derive_timing
from repro.util.units import KB


def functional_tour() -> None:
    print("--- Functional Path ORAM ---")
    geometry = TreeGeometry(levels=7, blocks_per_bucket=4, block_bytes=64)
    oram = PathORAM(geometry, n_blocks=128, seed=42)
    print(f"  tree: {geometry.describe()}")

    for address in range(64):
        oram.write(address, f"block-{address}".encode())
    assert oram.read(17)[:8] == b"block-17"
    oram.check_invariant()
    print(
        f"  wrote+read 64 blocks; invariant holds; "
        f"stash peak = {oram.stats.stash_peak} blocks; "
        f"buckets touched = {oram.stats.buckets_touched}"
    )
    leaf_before = oram.position_map.lookup(17)
    oram.read(17)
    leaf_after = oram.position_map.lookup(17)
    print(
        f"  block 17 remapped on access: leaf {leaf_before} -> {leaf_after} "
        f"(the critical security step)\n"
    )


def recursion_tour() -> None:
    print("--- Recursive position maps ---")
    config = ORAMConfig(
        capacity_bytes=64 * KB, blocks_per_bucket=4,
        recursion_levels=2, recursive_block_bytes=32,
    )
    oram = RecursivePathORAM(config, n_blocks=64, seed=3)
    oram.write(5, b"hello recursion")
    assert oram.read(5)[:15] == b"hello recursion"
    print(
        f"  {oram.levels} ORAM trees (data + 2 posmaps); each logical access "
        f"touches {oram.stats.paths_per_access:.0f} physical paths\n"
    )


def integrity_tour() -> None:
    print("--- Integrity verification (Merkle extension) ---")
    geometry = TreeGeometry(levels=5, blocks_per_bucket=4, block_bytes=64)
    oram = VerifiedPathORAM(PathORAM(geometry, n_blocks=16, seed=9))
    oram.write(3, b"important data")
    raw = bytearray(oram.oram.memory.raw_read(0))
    raw[8] ^= 0x01  # adversary flips one ciphertext bit in the root
    oram.oram.memory.write(0, bytes(raw))
    try:
        oram.read(3)
        print("  !! tamper went undetected")
    except TamperDetectedError as error:
        print(f"  DRAM tamper detected on next access: {error}\n")


def cost_tour() -> None:
    print("--- Derived access costs (paper configuration) ---")
    print(f"  {PAPER_ORAM_CONFIG.describe()}")
    derived = derive_timing(PAPER_ORAM_CONFIG)
    print(f"  derived : {derived.describe()}")
    print(f"  paper   : {PAPER_ORAM_TIMING.describe()}")


def main() -> None:
    print("=== Path ORAM walkthrough ===\n")
    functional_tour()
    recursion_tour()
    integrity_tour()
    cost_tour()


if __name__ == "__main__":
    main()
