#!/usr/bin/env python3
"""Scenario: the ORAM timing channel, attacked and then suppressed.

Three acts, following Sections 1.1 and 3.2 of the paper:

1. **The probe primitive** — an adversary sharing the DRAM DIMM polls the
   Path ORAM root bucket's ciphertext and detects every access (the
   Section 3.2 measurement that makes the timing channel software-visible).
2. **The leak** — the malicious program P1 (Figure 1a) modulates *when*
   it misses the LLC to exfiltrate the user's secret; under base_oram the
   adversary decodes the secret from access timing alone.
3. **The fix** — under a slot-enforced scheme the observable trace is a
   strictly periodic lattice of (real or dummy) accesses, independent of
   the secret; the decoder collapses to chance.

Usage::

    python examples/timing_attack_demo.py
"""

from repro.core.scheme import scheme_from_spec
from repro.oram.config import TreeGeometry
from repro.oram.path_oram import PathORAM
from repro.security.attacks import run_p1_attack, run_probe_attack
from repro.util.rng import make_rng


def act_one_probe() -> None:
    print("--- Act 1: measuring ORAM timing via the root bucket (S3.2) ---")
    geometry = TreeGeometry(levels=6, blocks_per_bucket=4, block_bytes=64)
    oram = PathORAM(geometry, n_blocks=32, seed=7)
    schedule = [float(500 * (k + 1)) for k in range(20)]  # accesses every 500
    outcome = run_probe_attack(oram, schedule, poll_interval=250.0)
    print(
        f"  ORAM made {outcome.accesses_made} accesses; the polling adversary "
        f"detected {outcome.accesses_detected} "
        f"({outcome.detection_rate:.0%}) and estimates one access every "
        f"{outcome.estimated_interval:.0f} time units.\n"
    )


def act_two_leak() -> None:
    print("--- Act 2: P1 leaks the secret through base_oram (Fig 1a) ---")
    rng = make_rng(2024, "demo-secret")
    secret = [int(b) for b in rng.integers(0, 2, size=32)]
    result = run_p1_attack(secret, scheme_from_spec("base_oram"))
    print(f"  secret    : {''.join(map(str, result.secret_bits))}")
    print(f"  recovered : {''.join(map(str, result.recovered_bits))}")
    print(
        f"  adversary recovered {result.recovered_fraction:.0%} of "
        f"{result.n_bits} bits - T bits in T time.\n"
    )


def act_three_fix() -> None:
    print("--- Act 3: a slot-enforced rate suppresses the channel ---")
    rng = make_rng(2024, "demo-secret")
    secret = [int(b) for b in rng.integers(0, 2, size=32)]
    result = run_p1_attack(secret, scheme_from_spec("static:300"))
    agreement = result.recovered_fraction
    print(
        f"  observable trace strictly periodic: {result.observable_periodic}"
    )
    print(
        f"  decoder agreement: {agreement:.0%} (chance-level; the trace "
        f"carries 0 bits about the input)"
    )
    print(
        "  The dynamic scheme generalizes this: up to |R|^|E| periodic\n"
        "  traces instead of one, leaking at most |E|*lg|R| bits while\n"
        "  recovering most of base_oram's performance."
    )


def main() -> None:
    print("=== The ORAM timing channel: attack and suppression ===\n")
    act_one_probe()
    act_two_leak()
    act_three_fix()


if __name__ == "__main__":
    main()
