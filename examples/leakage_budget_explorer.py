#!/usr/bin/env python3
"""Scenario: choosing leakage parameters under a user-specified budget.

The paper's central trade-off (Sections 2, 9.5): a larger |R| or more
frequent epochs buy efficiency but leak more bits.  This explorer sweeps
(|R|, epoch growth) configurations, computes each one's provable leakage
bound, measures average performance/power over a benchmark mix, and
reports which configurations fit a given bit budget — the decision a user
setting L per session (Section 10) actually faces.

The whole sweep — 12 dynamic configurations plus 2 baselines over 3
benchmarks — is one declarative spec; the engine shares each benchmark's
functional cache pass across all 14 schemes automatically.

Usage::

    python examples/leakage_budget_explorer.py [budget_bits]
"""

import sys
from statistics import mean

from repro import Engine, ExperimentSpec
from repro.core.epochs import paper_schedule
from repro.core.leakage import report_for_dynamic

BENCHMARKS = ("mcf", "gobmk", "h264ref")
CONFIGS = [(n_rates, growth) for n_rates in (2, 4, 8, 16) for growth in (2, 4, 16)]


def main() -> None:
    budget = float(sys.argv[1]) if len(sys.argv) > 1 else 32.0
    print(f"=== Dynamic configurations under a {budget:.0f}-bit ORAM-timing budget ===\n")

    spec = ExperimentSpec(
        benchmarks=BENCHMARKS,
        schemes=("base_dram", "base_oram")
        + tuple(f"dynamic:{n_rates}x{growth}" for n_rates, growth in CONFIGS),
        n_instructions=400_000,
    )
    results = Engine().run(spec)

    oracle = mean(results.overhead(name, "base_oram") for name in BENCHMARKS)
    print(f"(base_oram oracle: {oracle:.2f}x base_dram, unbounded leakage)\n")

    header = f"{'config':>16} {'leak bits':>10} {'perf (x)':>9} {'power (W)':>10}  fits?"
    print(header)
    print("-" * len(header))

    for n_rates, growth in CONFIGS:
        scheme = f"dynamic:{n_rates}x{growth}"
        # Leakage is computed at *paper scale* - it depends only on
        # |R| and |E|, never on the simulation.
        bits = report_for_dynamic(
            paper_schedule(growth=growth), n_rates
        ).oram_timing_bits
        perf = mean(results.overhead(name, scheme) for name in BENCHMARKS)
        power = results.mean_power(scheme)
        name = results.select(scheme=scheme)[0].scheme_name
        verdict = "yes" if bits <= budget else "no"
        print(f"{name:>16} {bits:>10.0f} {perf:>9.2f} {power:>10.3f}  {verdict}")

    print(
        "\nReading the table: moving down within a |R| block (sparser epochs)"
        "\ncuts leakage at a small performance cost (Fig 8b); shrinking |R|"
        "\ncuts leakage but strands workloads between candidate rates (Fig 8a)."
    )


if __name__ == "__main__":
    main()
