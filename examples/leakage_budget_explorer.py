#!/usr/bin/env python3
"""Scenario: choosing leakage parameters under a user-specified budget.

The paper's central trade-off (Sections 2, 9.5): a larger |R| or more
frequent epochs buy efficiency but leak more bits.  This explorer sweeps
(|R|, epoch growth) configurations, computes each one's provable leakage
bound, measures average performance/power over a benchmark mix, and
reports which configurations fit a given bit budget — the decision a user
setting L per session (Section 10) actually faces.

Usage::

    python examples/leakage_budget_explorer.py [budget_bits]
"""

import sys
from statistics import mean

from repro import SecureProcessorSim, SimConfig, dynamic
from repro.core.epochs import paper_schedule
from repro.core.leakage import report_for_dynamic
from repro.core.scheme import BaseDramScheme, BaseOramScheme
from repro.sim.result import performance_overhead

BENCHMARKS = ["mcf", "gobmk", "h264ref"]


def main() -> None:
    budget = float(sys.argv[1]) if len(sys.argv) > 1 else 32.0
    print(f"=== Dynamic configurations under a {budget:.0f}-bit ORAM-timing budget ===\n")

    sim = SecureProcessorSim(SimConfig(n_instructions=400_000))
    baselines = {
        name: sim.run(name, BaseDramScheme(), record_requests=False)
        for name in BENCHMARKS
    }
    oracle = mean(
        performance_overhead(sim.run(name, BaseOramScheme(), record_requests=False),
                             baselines[name])
        for name in BENCHMARKS
    )
    print(f"(base_oram oracle: {oracle:.2f}x base_dram, unbounded leakage)\n")

    header = f"{'config':>16} {'leak bits':>10} {'perf (x)':>9} {'power (W)':>10}  fits?"
    print(header)
    print("-" * len(header))

    for n_rates in (2, 4, 8, 16):
        for growth in (2, 4, 16):
            scheme = dynamic(n_rates, growth)
            # Leakage is computed at *paper scale* - it depends only on
            # |R| and |E|, never on the simulation.
            bits = report_for_dynamic(
                paper_schedule(growth=growth), n_rates
            ).oram_timing_bits
            perf = mean(
                performance_overhead(
                    sim.run(name, scheme, record_requests=False), baselines[name]
                )
                for name in BENCHMARKS
            )
            power = mean(
                sim.run(name, scheme, record_requests=False).power_watts
                for name in BENCHMARKS
            )
            verdict = "yes" if bits <= budget else "no"
            print(
                f"{scheme.name:>16} {bits:>10.0f} {perf:>9.2f} {power:>10.3f}  {verdict}"
            )

    print(
        "\nReading the table: moving down within a |R| block (sparser epochs)"
        "\ncuts leakage at a small performance cost (Fig 8b); shrinking |R|"
        "\ncuts leakage but strands workloads between candidate rates (Fig 8a)."
    )


if __name__ == "__main__":
    main()
