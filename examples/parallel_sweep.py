#!/usr/bin/env python3
"""Scenario: a large scheme sweep, sharded across cores and cached.

The production-scale workflow the declarative API exists for: one spec
describing a benchmarks x schemes x seeds lattice, executed twice —

1. on the :class:`ProcessPoolBackend`, which shards the independent
   (benchmark, scheme, seed) cells across worker processes, and
2. again with a warm persistent cache, where every cell is a hit and
   nothing runs at all.

Both ResultSets are identical row-for-row (deterministic per-cell
seeding), and both match what the serial backend would produce — the
property the test suite asserts byte-for-byte.

Usage::

    python examples/parallel_sweep.py [cache_dir]
"""

import sys
import tempfile
import time

from repro import Engine, ExperimentSpec, ProcessPoolBackend, SerialBackend


def main() -> None:
    cache_dir = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(prefix="repro-cache-")

    spec = ExperimentSpec(
        name="parallel sweep demo",
        benchmarks=("mcf", "libquantum", "h264ref", "astar/rivers"),
        schemes=("base_dram", "base_oram", "static:300", "static:1300",
                 "dynamic:4x4", "dynamic:4x16"),
        seeds=(0, 1),
        n_instructions=200_000,
    )
    print(f"spec: {len(spec.benchmarks)} benchmarks x {len(spec.schemes)} schemes "
          f"x {len(spec.seeds)} seeds = {spec.n_cells} cells\n")

    pool_engine = Engine(ProcessPoolBackend(), cache=cache_dir)
    start = time.perf_counter()
    parallel = pool_engine.run(spec)
    cold = time.perf_counter() - start
    print(f"process pool, cold cache: {cold:.1f}s "
          f"({parallel.meta['cells_run']} cells run)")

    start = time.perf_counter()
    warm = pool_engine.run(spec)
    hot = time.perf_counter() - start
    print(f"process pool, warm cache: {hot:.2f}s "
          f"({warm.meta['cache_hits']} hits, {warm.meta['cells_run']} run)")

    serial = Engine(SerialBackend()).run(spec)
    print(f"serial backend matches pool: {serial.records == parallel.records}")
    print(f"warm cache matches cold run: {warm.records == parallel.records}\n")

    print(parallel.render())
    print(f"\nresults cached under {cache_dir}; rerun this script to see "
          f"every cell hit.")


if __name__ == "__main__":
    main()
