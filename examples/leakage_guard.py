#!/usr/bin/env python3
"""Scenario: enforcing the leakage limit in hardware (Section 2.1).

The paper's evaluation bounds leakage *by construction* (pick E and R so
|E|*lg|R| <= L).  Section 2.1 also sketches the enforcement alternative:
"track the number of traces using hardware mechanisms, and shut down the
chip if leakage exceeds L".  This example runs a bursty program under a
monitored controller with a deliberately tiny budget and shows both
enforcement styles:

* **strict** — the guard trips and the chip halts;
* **lenient** — the guard pins the current rate, so the program keeps
  running but all later epoch decisions repeat (repeating is free only
  because no *new* decision is revealed — the monitor still refuses to
  authorize changes).

Usage::

    python examples/leakage_guard.py
"""

from repro.core.controller import TimingProtectedController
from repro.core.epochs import EpochSchedule
from repro.core.learner import AveragingLearner
from repro.core.monitor import (
    LeakageBudgetExceededError,
    LeakageMonitor,
    MonitoredLearner,
)
from repro.core.rates import PAPER_RATES


def drive(controller: TimingProtectedController, horizon: float) -> None:
    """A program alternating memory-bound bursts and quiet stretches."""
    time = 0.0
    toggle = True
    while time < horizon:
        gap = 300.0 if toggle else 20_000.0
        for _ in range(20):
            time = controller.serve(time + gap)
        toggle = not toggle
    controller.finalize(horizon)


def build(strict: bool):
    monitor = LeakageMonitor(limit_bits=6.0, n_rates=len(PAPER_RATES), strict=strict)
    learner = MonitoredLearner(AveragingLearner(PAPER_RATES), monitor, 10_000)
    controller = TimingProtectedController(
        oram_latency=1488,
        initial_rate=10_000,
        schedule=EpochSchedule(first_epoch_cycles=1 << 14, growth=2,
                               tmax_cycles=1 << 40),
        learner=learner,
    )
    return monitor, controller


def main() -> None:
    print("=== Hardware leakage guard (budget: 6 bits, lg|R| = 2) ===\n")

    print("--- strict mode: shut down on overrun ---")
    monitor, controller = build(strict=True)
    try:
        drive(controller, horizon=5_000_000.0)
        print("  program finished within budget")
    except LeakageBudgetExceededError as error:
        print(f"  CHIP HALTED after {monitor.epochs_authorized} rate decisions: {error}")

    print("\n--- lenient mode: pin the rate, keep running ---")
    monitor, controller = build(strict=False)
    drive(controller, horizon=5_000_000.0)
    rates = [record.rate for record in controller.epochs]
    print(f"  rate decisions charged: {monitor.epochs_authorized} "
          f"({monitor.consumed_bits:.0f} of {monitor.limit_bits:.0f} bits)")
    print(f"  rate trajectory: {rates}")
    print(f"  epochs after the budget ran out reuse one pinned rate: "
          f"{len(set(rates[monitor.epochs_authorized + 1:])) <= 1}")


if __name__ == "__main__":
    main()
