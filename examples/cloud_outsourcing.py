#!/usr/bin/env python3
"""Scenario: outsourcing private computation to an untrusted cloud.

This walks the paper's motivating use case (Sections 1, 5, 8) end to end:

1. The user negotiates a session key with a remote secure processor.
2. The user ships encrypted data with a leakage limit L bound by HMAC.
3. The server proposes leakage parameters (R, E); the processor *refuses*
   parameter sets that exceed L, and runs otherwise.
4. The session closes, the processor forgets the key, and the server's
   replay attempt fails — capping total leakage at L rather than N*L.

Usage::

    python examples/cloud_outsourcing.py
"""

from repro.core.epochs import paper_schedule
from repro.core.rates import lg_spaced_rates
from repro.security.protocol import (
    LeakageLimitExceededError,
    LeakageParameters,
    SecureProcessorProtocol,
    UserSubmission,
    bind_submission,
    program_hash,
)
from repro.security.replay import replay_campaign
from repro.security.session import SessionTerminatedError


def the_program(data: bytes) -> bytes:
    """Stand-in computation: word count of the user's document."""
    return str(len(data.split())).encode()


def main() -> None:
    print("=== Cloud outsourcing with a leakage budget ===\n")

    processor = SecureProcessorProtocol()
    keys = processor.open_session()
    print(f"1. Session opened; user and processor share K ({len(keys.k) * 8} bits).")

    document = b"the quick brown fox jumps over the lazy dog " * 40
    leakage_limit = 32.0  # the user's L
    sealed = processor.seal_for_user(document)
    tag = bind_submission(keys.k, document, leakage_limit, program_hash("wordcount"))
    submission = UserSubmission(
        sealed_data=sealed,
        leakage_limit_bits=leakage_limit,
        hmac_tag=tag,
        bound_program_hash=program_hash("wordcount"),
    )
    print(f"2. User ships {len(document)} encrypted bytes, L = {leakage_limit:.0f} bits.")

    greedy = LeakageParameters(lg_spaced_rates(16), paper_schedule(growth=2))
    print(
        f"\n3a. Server proposes R16/E2 "
        f"(would leak {greedy.timing_leakage_bits():.0f} bits)..."
    )
    try:
        processor.run(submission, "wordcount", greedy, the_program)
    except LeakageLimitExceededError as error:
        print(f"    REFUSED: {error}")

    honest = LeakageParameters(lg_spaced_rates(4), paper_schedule(growth=4))
    print(
        f"3b. Server proposes R4/E4 "
        f"(leaks <= {honest.timing_leakage_bits():.0f} bits)..."
    )
    receipt = processor.run(submission, "wordcount", honest, the_program)
    answer = processor._require_register().unseal(receipt.sealed_result)
    print(f"    ACCEPTED: result = {answer.decode()} words")
    print(
        f"    leakage this run: {receipt.timing_leakage_bits:.0f} (ORAM timing) "
        f"+ {receipt.termination_leakage_bits:.0f} (termination) bits"
    )

    processor.close_session()
    print("\n4. Session closed; processor forgot K.")
    try:
        processor.run(submission, "wordcount", honest, the_program)
    except SessionTerminatedError:
        print("   Server replay attempt: FAILED (run-once, Section 8).")

    unprotected = replay_campaign(32.0, attempts=8, run_once_protection=False)
    protected = replay_campaign(32.0, attempts=8, run_once_protection=True)
    print(
        f"\n   Accounting over 8 attempted replays: "
        f"{unprotected.total_bits_learned:.0f} bits without run-once vs "
        f"{protected.total_bits_learned:.0f} bits with it."
    )


if __name__ == "__main__":
    main()
