#!/usr/bin/env python3
"""Scenario: million-access stash statistics on the batched ORAM engine.

Path ORAM's whole bargain is that the stash — the on-chip overflow store
— stays tiny with overwhelming probability, for an adequate Z.  The
paper (following Ren et al., ISCA 2013) provisions Z = 3 plus background
eviction and takes the bound on faith from the literature; the batched
array engine (:mod:`repro.oram.engine`) is fast enough to *measure* it
directly: this script replays a million uniform accesses per
configuration and prints the exact occupancy tail P[stash > k] across
Z in {2, 3, 4}, plus the functional validation of the derived per-access
timing constants.

Things to observe in the output:

* Z = 4 and Z = 3: bounded tails — the P[>k] column collapses to zero
  within a few dozen blocks and the peak sits far from the tree size.
* Z = 2: the heavy tail (and at deeper trees, outright divergence —
  flagged in the verdict column) that rules small Z out without help.
* The timing validation table: measured functional traffic reproduces
  the derived bytes/latency/energy constants with 0% error.

Usage::

    python examples/stash_scaling.py                  # 1M accesses/cell
    python examples/stash_scaling.py --accesses 50000 # quick look
"""

import argparse

from repro.analysis.stash_scaling import run_stash_scaling, validate_timing


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--accesses", type=int, default=1_000_000,
        help="accesses per (Z, levels) cell (default 1000000)",
    )
    parser.add_argument(
        "--levels", type=int, nargs="+", default=[11],
        help="tree depths to sweep (default: 11)",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    print("=== Stash scaling on the batched Path ORAM engine ===\n")
    report = run_stash_scaling(
        z_values=(2, 3, 4),
        levels_values=tuple(args.levels),
        n_accesses=args.accesses,
        seed=args.seed,
    )
    print(report.render())

    for levels in args.levels:
        z4 = report.cell(4, levels)
        z2 = report.cell(2, levels)
        print(
            f"\n  levels={levels}: Z=4 peak {z4.stash_peak} blocks over "
            f"{z4.n_accesses:,} accesses (P[>32] = {z4.tail(32):.1e}); "
            f"Z=2 {'DIVERGED' if z2.diverged else f'peak {z2.stash_peak}'}"
        )

    print("\n=== Functional validation of the derived timing constants ===\n")
    print(validate_timing(seed=args.seed).render())


if __name__ == "__main__":
    main()
