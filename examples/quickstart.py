#!/usr/bin/env python3
"""Quickstart: simulate one benchmark under the paper's schemes.

Runs mcf (the paper's most memory-bound benchmark) under base_dram,
base_oram, static_300, and the dynamic R4/E4 scheme, then prints the
performance/power comparison and the leakage accounting — the smallest
end-to-end tour of the library.

Usage::

    python examples/quickstart.py [benchmark]
"""

import sys

from repro import (
    BaseDramScheme,
    BaseOramScheme,
    SecureProcessorSim,
    SimConfig,
    StaticScheme,
    dynamic,
    performance_overhead,
)


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "mcf"
    print(f"=== Secure processor simulation: {benchmark} ===\n")

    sim = SecureProcessorSim(SimConfig(n_instructions=500_000))
    schemes = [BaseDramScheme(), BaseOramScheme(), StaticScheme(300), dynamic(4, 4)]

    baseline = None
    for scheme in schemes:
        result = sim.run(benchmark, scheme, record_requests=False)
        if baseline is None:
            baseline = result
        overhead = performance_overhead(result, baseline)
        leakage = scheme.leakage()
        leak_text = (
            "unbounded"
            if leakage.oram_timing_bits == float("inf")
            else f"{leakage.oram_timing_bits:.0f} bits"
        )
        print(
            f"{scheme.name:>16}: {overhead:5.2f}x slowdown, "
            f"{result.power_watts:.3f} W, ORAM-timing leakage {leak_text}"
        )
        if result.epochs and len(result.epochs) > 1:
            rates = [record.rate for record in result.epochs]
            print(f"{'':>16}  learned rates per epoch: {rates}")

    print(
        "\nThe dynamic scheme tracks base_oram's performance while bounding"
        "\ntiming-channel leakage to |E| * lg |R| bits (Sections 2 and 6)."
    )


if __name__ == "__main__":
    main()
