#!/usr/bin/env python3
"""Quickstart: simulate one benchmark under the paper's schemes.

Runs mcf (the paper's most memory-bound benchmark) under base_dram,
base_oram, static_300, and the dynamic R4/E4 scheme through the
declarative experiment API, then prints the performance/power comparison
and the leakage accounting — the smallest end-to-end tour of the library.

One spec describes the whole comparison; the engine runs it (serially
here — pass ``ProcessPoolBackend()`` for a pool, or a cache directory to
make repeated runs free) and returns a uniform, queryable ResultSet.

Usage::

    python examples/quickstart.py [benchmark]
"""

import sys

from repro import Engine, ExperimentSpec


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "mcf"
    print(f"=== Secure processor simulation: {benchmark} ===\n")

    spec = ExperimentSpec(
        benchmarks=(benchmark,),
        schemes=("base_dram", "base_oram", "static:300", "dynamic:4x4"),
        n_instructions=500_000,
    )
    results = Engine().run(spec)

    for scheme in spec.schemes:
        record = results.get(benchmark, scheme)
        overhead = results.overhead(benchmark, scheme)
        leak = record.oram_timing_leakage_bits
        leak_text = "unbounded" if leak == float("inf") else f"{leak:.0f} bits"
        print(
            f"{record.scheme_name:>16}: {overhead:5.2f}x slowdown, "
            f"{record.power_watts:.3f} W, ORAM-timing leakage {leak_text}"
        )
        if len(record.epoch_rates) > 1:
            print(f"{'':>16}  learned rates per epoch: {list(record.epoch_rates)}")

    print(
        "\nThe dynamic scheme tracks base_oram's performance while bounding"
        "\ntiming-channel leakage to |E| * lg |R| bits (Sections 2 and 6)."
    )


if __name__ == "__main__":
    main()
